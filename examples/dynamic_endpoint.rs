//! A *dynamic* RDF endpoint: continuous updates + queries, comparing the
//! maintenance cost of Sat (incremental saturation) against Ref (no
//! maintenance at all) — the scenario of the paper's introduction, where
//! endpoints "may or may not be saturated" and keeping saturations current
//! is the cost Ref avoids.
//!
//! ```sh
//! cargo run --release --example dynamic_endpoint
//! ```

use rdfref::datagen::lubm::{generate, LubmConfig, LubmDataset, UB};
use rdfref::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let ds = generate(&LubmConfig::scale(2));
    println!(
        "endpoint starts with {} explicit triples (LUBM-like scale 2)\n",
        ds.graph.len()
    );

    let mut q_graph = ds.graph.clone();
    let query = parse_select(
        &format!(
            "PREFIX ub: <{UB}> SELECT ?x WHERE {{ ?x a ub:Person . ?x ub:memberOf <{}> }}",
            LubmDataset::department_iri(0, 0)
        ),
        q_graph.dictionary_mut(),
    )
    .expect("query parses");

    let mut db = MaintainedDatabase::new(q_graph);
    let opts = AnswerOptions::default();

    // Interleave: 20 rounds of (insert a few members, ask the query twice —
    // once via maintained Sat, once via Ref/GCov). Track cumulative costs.
    let mut sat_time = Duration::ZERO;
    let mut ref_time = Duration::ZERO;
    let mut maintenance_time = Duration::ZERO;
    let mut last_counts = (0usize, 0usize);
    for round in 0..20 {
        // A new person joins department (0,0) every round.
        let person = Term::iri(format!("http://dynamic.example.org/member{round}"));
        let t1 = db.intern_triple(
            &person,
            &Term::iri(format!("{UB}memberOf")),
            &Term::iri(LubmDataset::department_iri(0, 0)),
        );
        let t2 = db.intern_triple(
            &person,
            &Term::iri(rdfref::model::vocab::RDF_TYPE),
            &Term::iri(format!("{UB}GraduateStudent")),
        );
        let start = Instant::now();
        db.insert(&[t1, t2]);
        maintenance_time += start.elapsed();

        let start = Instant::now();
        let sat = db
            .query(&query)
            .strategy(Strategy::Saturation)
            .options(opts.clone())
            .run()
            .expect("Sat answers");
        sat_time += start.elapsed();

        let start = Instant::now();
        let gcv = db
            .query(&query)
            .strategy(Strategy::RefGCov)
            .options(opts.clone())
            .run()
            .expect("Ref answers");
        ref_time += start.elapsed();

        assert_eq!(sat.rows(), gcv.rows(), "round {round} diverged");
        last_counts = (sat.len(), gcv.len());
    }

    println!("after 20 rounds of updates + queries:");
    println!(
        "  answers now                 : {} (both strategies agree)",
        last_counts.0
    );
    println!("  Sat: incremental maintenance: {maintenance_time:?} total");
    println!("  Sat: query evaluation       : {sat_time:?} total (includes store rebuilds)");
    println!("  Ref: query answering        : {ref_time:?} total (no maintenance ever)");

    // Deleting everything we added brings the endpoint back exactly.
    let mut to_delete = Vec::new();
    for round in 0..20 {
        let person = Term::iri(format!("http://dynamic.example.org/member{round}"));
        to_delete.push(db.intern_triple(
            &person,
            &Term::iri(format!("{UB}memberOf")),
            &Term::iri(LubmDataset::department_iri(0, 0)),
        ));
        to_delete.push(db.intern_triple(
            &person,
            &Term::iri(rdfref::model::vocab::RDF_TYPE),
            &Term::iri(format!("{UB}GraduateStudent")),
        ));
    }
    let start = Instant::now();
    let removed = db.delete(&to_delete);
    println!(
        "\nDRed deletion of all 40 update triples removed {removed} triples in {:?}",
        start.elapsed()
    );
    assert_eq!(db.saturated(), &saturate(db.explicit()));
    println!("maintained saturation verified against from-scratch saturation ✓");
}
