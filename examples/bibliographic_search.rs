//! A bibliographic-search scenario on DBLP-like data: skewed authorship,
//! incomplete-system comparison, and live updates with incremental
//! saturation maintenance.
//!
//! ```sh
//! cargo run --release --example bibliographic_search
//! ```

use rdfref::datagen::biblio::{generate, BiblioConfig};
use rdfref::model::dictionary::ID_RDF_TYPE;
use rdfref::prelude::*;
use rdfref::query::ast::Atom;

fn main() {
    let ds = generate(&BiblioConfig::default());
    println!(
        "DBLP-like dataset: {} triples, {} authors, {} publications\n",
        ds.graph.len(),
        400,
        2000
    );
    let v = &ds.vocab;
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::default();

    // "Everything created by the most prolific author" — creator is a
    // super-property; only author/editor edges are asserted.
    let top_author = ds
        .graph
        .dictionary()
        .id_of_iri("http://bib.example.org/author/0")
        .expect("author 0 exists");
    let q_creator = Cq::new(
        vec![Var::new("p")],
        vec![
            Atom::new(Var::new("p"), ID_RDF_TYPE, v.publication),
            Atom::new(Var::new("p"), v.creator, top_author),
        ],
    )
    .unwrap();

    println!("=== works created by the top author ===");
    let sat = db
        .query(&q_creator)
        .strategy(Strategy::Saturation)
        .options(opts.clone())
        .run()
        .unwrap();
    let gcv = db
        .query(&q_creator)
        .strategy(Strategy::RefGCov)
        .options(opts.clone())
        .run()
        .unwrap();
    assert_eq!(sat.rows(), gcv.rows());
    println!(
        "complete answer  : {} works (Sat {:?}, Ref/GCov {:?}, cover {})",
        sat.len(),
        sat.explain.wall,
        gcv.explain.wall,
        gcv.explain.cover.as_ref().unwrap()
    );

    // What deployed systems with incomplete reformulation would return.
    for (label, profile) in [
        (
            "hierarchies only",
            IncompletenessProfile::hierarchies_only(),
        ),
        ("subclass only", IncompletenessProfile::subclass_only()),
        ("no reasoning", IncompletenessProfile::none()),
    ] {
        let partial = db
            .query(&q_creator)
            .strategy(Strategy::RefIncomplete(profile))
            .options(opts.clone())
            .run()
            .unwrap();
        println!(
            "{label:<17}: {} works ({} missing)",
            partial.len(),
            sat.len() - partial.len()
        );
    }

    // Live updates: a Sat-based deployment must maintain the saturation.
    println!("\n=== live updates (Sat maintenance vs Ref) ===");
    let mut reasoner = IncrementalReasoner::new(ds.graph.clone());
    let new_pub = Term::iri("http://bib.example.org/pub/new");
    let t_type = reasoner.intern_triple(
        &new_pub,
        &Term::iri(rdfref::model::vocab::RDF_TYPE),
        &Term::iri("http://bib.example.org/schema#JournalArticle"),
    );
    let t_author = reasoner.intern_triple(
        &new_pub,
        &Term::iri("http://bib.example.org/schema#author"),
        &Term::iri("http://bib.example.org/author/0"),
    );
    let start = std::time::Instant::now();
    let added = reasoner.insert(&[t_type, t_author]);
    println!(
        "inserted 2 explicit triples → saturation grew by {added} triples in {:?}",
        start.elapsed()
    );

    // Ref needs no maintenance: just re-prepare and re-ask.
    let db2 = Database::builder().build(reasoner.explicit().clone());
    let after = db2
        .query(&q_creator)
        .strategy(Strategy::RefGCov)
        .options(opts.clone())
        .run()
        .unwrap();
    println!(
        "re-asking via Ref: {} works (one more than before: {})",
        after.len(),
        after.len() == sat.len() + 1
    );

    // Deleting the insertion brings everything back.
    let start = std::time::Instant::now();
    let removed = reasoner.delete(&[t_type, t_author]);
    println!(
        "deleted them again → DRed removed {removed} triples in {:?}",
        start.elapsed()
    );
    assert_eq!(reasoner.saturated(), &saturate(reasoner.explicit()));
    println!("maintained saturation verified against from-scratch saturation ✓");
}
