//! Demo step 1: pick an RDF graph and visualize its statistics (value
//! distributions for subject, property and object) — for all four synthetic
//! datasets.
//!
//! ```sh
//! cargo run --release --example endpoint_statistics
//! ```

use rdfref::datagen::{biblio, geo, insee, lubm};
use rdfref::model::Graph;
use rdfref::storage::stats::ValueDistribution;
use rdfref::storage::{Stats, Store};

fn describe(name: &str, graph: &Graph) {
    let store = Store::from_graph(graph);
    let stats = Stats::compute(&store);
    let dist = ValueDistribution::compute(&store, 5);
    let dict = graph.dictionary();
    println!("=== {name} ===");
    println!(
        "triples {}  |  distinct subjects {}  properties {}  objects {}  classes {}",
        stats.total,
        stats.distinct_subjects,
        stats.distinct_properties,
        stats.distinct_objects,
        stats.distinct_classes()
    );
    println!("top properties:");
    for (p, n) in stats.top_properties(5) {
        println!("  {:>8}  {}", n, dict.term(p));
    }
    println!("top classes:");
    for (c, n) in stats.top_classes(5) {
        println!("  {:>8}  {}", n, dict.term(c));
    }
    println!("top subjects:");
    for (s, n) in dist.top_subjects.iter().take(3) {
        println!("  {:>8}  {}", n, dict.term(*s));
    }
    println!("top objects:");
    for (o, n) in dist.top_objects.iter().take(3) {
        println!("  {:>8}  {}", n, dict.term(*o));
    }
    println!();
}

fn main() {
    let lubm = lubm::generate(&lubm::LubmConfig::scale(1));
    describe("LUBM-like (universities)", &lubm.graph);

    let dblp = biblio::generate(&biblio::BiblioConfig::default());
    describe("DBLP-like (bibliography, Zipf-skewed authors)", &dblp.graph);

    let ign = geo::generate(&geo::GeoConfig::default());
    describe("IGN-like (deep administrative hierarchy)", &ign.graph);

    let insee = insee::generate(&insee::InseeConfig::default());
    describe("INSEE-like (wide flat code lists)", &insee.graph);
}
