//! Quickstart: the paper's running example (§3, Figure 2), answered with
//! every strategy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rdfref::prelude::*;

fn main() {
    // The RDF graph of Figure 2: a book, its author, and four RDFS
    // constraints. Note that the data triples never say that doi1 is a
    // Publication, that doi1 has an author, or that _:b1 is a Person —
    // those are implicit.
    let mut graph = rdfref::model::parser::parse_turtle(
        r#"
        @prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix ex:   <http://example.org/> .

        # data
        ex:doi1 rdf:type ex:Book ;
                ex:writtenBy _:b1 ;
                ex:hasTitle "El Aleph" ;
                ex:publishedIn "1949" .
        _:b1 ex:hasName "J. L. Borges" .

        # constraints
        ex:Book rdfs:subClassOf ex:Publication .        # books are publications
        ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .  # writing means authoring
        ex:writtenBy rdfs:domain ex:Book .
        ex:writtenBy rdfs:range ex:Person .
    "#,
    )
    .expect("the example graph parses");

    // The paper's §3 query: "names of authors of books somehow connected to
    // the literal 1949". Evaluated naively on the explicit triples it
    // returns nothing — ex:hasAuthor is never asserted.
    let q = parse_select(
        r#"
        PREFIX ex: <http://example.org/>
        SELECT ?name WHERE {
            ?x ex:hasAuthor ?a .
            ?a ex:hasName ?name .
            ?x ?p "1949"
        }"#,
        graph.dictionary_mut(),
    )
    .expect("the query parses");

    let db = Database::builder().build(graph);
    let opts = AnswerOptions::default();

    println!("=== query ===");
    println!(
        "{}\n",
        rdfref::query::display::cq_to_string(&q, db.graph().dictionary())
    );

    for strategy in [
        Strategy::Saturation,
        Strategy::RefUcq,
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::Datalog,
    ] {
        let answer = db
            .query(&q)
            .strategy(strategy.clone())
            .options(opts.clone())
            .run()
            .expect("answering succeeds");
        println!("=== {} ===", strategy.name());
        for row in answer.decoded(db.graph().dictionary()) {
            let rendered: Vec<String> = row.iter().map(|t| t.to_string()).collect();
            println!("  answer: {}", rendered.join(", "));
        }
        println!("{}", answer.explain);
    }

    // Incomplete reformulation (Virtuoso/AllegroGraph-style) misses the
    // answer entirely: it needs the subPropertyOf constraint.
    let partial = db
        .query(&q)
        .strategy(Strategy::RefIncomplete(
            IncompletenessProfile::subclass_only(),
        ))
        .options(opts.clone())
        .run()
        .expect("incomplete answering runs");
    println!(
        "=== Ref/incomplete (subclass only) ===\n  answers: {} (missed {})",
        partial.len(),
        1 - partial.len()
    );
}
