//! A university-portal scenario on LUBM-like data — including the paper's
//! Example 1, with the UCQ / SCQ / paper-cover / GCov comparison.
//!
//! ```sh
//! cargo run --release --example university_portal
//! ```

use rdfref::datagen::lubm::{generate, LubmConfig};
use rdfref::datagen::queries;
use rdfref::prelude::*;
use std::time::Instant;

fn main() {
    let scale: usize = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!("generating LUBM-like dataset (scale {scale})…");
    let ds = generate(&LubmConfig::scale(scale));
    println!("  {} triples\n", ds.graph.len());

    let example1 = queries::example1(&ds, 0).expect("workload is well-formed");
    let db = Database::builder().build(ds.graph.clone());
    // Keep the UCQ attempt from consuming the machine: the point of
    // Example 1 is that it is infeasible.
    let opts = AnswerOptions::new().with_limits(ReformulationLimits::new().with_max_cqs(50_000));

    println!("=== the paper's Example 1 query ===");
    println!(
        "{}\n",
        rdfref::query::display::cq_to_string(&example1, db.graph().dictionary())
    );

    // Reference answer via saturation.
    let start = Instant::now();
    let reference = db
        .query(&example1)
        .strategy(Strategy::Saturation)
        .options(opts.clone())
        .run()
        .expect("Sat works");
    println!(
        "Sat              : {:>6} answers in {:?} ({} triples materialized)\n",
        reference.len(),
        start.elapsed(),
        reference.explain.saturation_added
    );

    // (i) UCQ: typically fails by reformulation size.
    match db
        .query(&example1)
        .strategy(Strategy::RefUcq)
        .options(opts.clone())
        .run()
    {
        Ok(a) => println!(
            "Ref/UCQ          : {:>6} answers in {:?} ({} CQs)",
            a.len(),
            a.explain.wall,
            a.explain.reformulation_cqs
        ),
        Err(e) => println!("Ref/UCQ          : FAILED — {e}"),
    }

    // (ii) SCQ: feasible but slow (huge intermediate results).
    let scq = db
        .query(&example1)
        .strategy(Strategy::RefScq)
        .options(opts.clone())
        .run()
        .expect("SCQ works");
    assert_eq!(scq.rows(), reference.rows());
    println!(
        "Ref/SCQ          : {:>6} answers in {:?} (peak intermediate {} rows)",
        scq.len(),
        scq.explain.wall,
        scq.explain.metrics.peak_intermediate
    );

    // (iii) The paper's hand-picked cover {{t1,t3},{t3,t5},{t2,t4},{t4,t6}}.
    let paper_cover = queries::example1_paper_cover().expect("workload is well-formed");
    let jucq = db
        .query(&example1)
        .strategy(Strategy::RefJucq(paper_cover.clone()))
        .options(opts.clone())
        .run()
        .expect("paper cover works");
    assert_eq!(jucq.rows(), reference.rows());
    println!(
        "Ref/JUCQ {paper_cover}: {:>6} answers in {:?} (peak {} rows)",
        jucq.len(),
        jucq.explain.wall,
        jucq.explain.metrics.peak_intermediate
    );

    // (iv) GCov finds a good cover automatically.
    let gcv = db
        .query(&example1)
        .strategy(Strategy::RefGCov)
        .options(opts.clone())
        .run()
        .expect("GCov works");
    assert_eq!(gcv.rows(), reference.rows());
    println!(
        "Ref/GCov         : {:>6} answers in {:?} (cover {}, explored {} covers)\n",
        gcv.len(),
        gcv.explain.wall,
        gcv.explain.cover.as_ref().unwrap(),
        gcv.explain.explored.len()
    );

    // The rest of the portal workload.
    println!("=== LUBM query mix (Sat vs GCov) ===");
    println!(
        "{:<5} {:>8} {:>12} {:>12}   description",
        "query", "answers", "Sat", "Ref/GCov"
    );
    for nq in queries::lubm_mix(&ds).expect("workload is well-formed") {
        let sat = db
            .query(&nq.cq)
            .strategy(Strategy::Saturation)
            .options(opts.clone())
            .run()
            .expect(nq.name);
        let gcv = db
            .query(&nq.cq)
            .strategy(Strategy::RefGCov)
            .options(opts.clone())
            .run()
            .expect(nq.name);
        assert_eq!(sat.rows(), gcv.rows(), "{} diverged", nq.name);
        println!(
            "{:<5} {:>8} {:>12?} {:>12?}   {}",
            nq.name,
            sat.len(),
            sat.explain.wall,
            gcv.explain.wall,
            nq.description
        );
    }
}
