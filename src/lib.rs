//! # rdfref — reformulation-based query answering in RDF
//!
//! A from-scratch Rust implementation of the system demonstrated in
//! *"Reformulation-based query answering in RDF: alternatives and
//! performance"* (Bursztyn, Goasdoué, Manolescu — VLDB 2015), built on the
//! cost-based JUCQ reformulation framework of their EDBT 2015 paper.
//!
//! ## What's inside
//!
//! | crate | role |
//! |-------|------|
//! | [`model`] | RDF terms, dictionary encoding, graphs, RDFS schema, N-Triples/Turtle-lite parsing |
//! | [`query`] | BGP/CQ queries, UCQ/SCQ/JUCQ algebra, query covers, SPARQL-subset parser |
//! | [`storage`] | RDBMS-style triple store: indexes, statistics, executor, textbook cost model |
//! | [`reasoning`] | Saturation (Sat): semi-naive RDFS fixpoint, incremental maintenance (DRed) |
//! | [`datalog`] | The Dat technique: semi-naive Datalog engine + RDF encoding |
//! | [`core`] | **The paper's contribution**: 13-rule CQ→UCQ reformulation, SCQ, cover-induced JUCQs, greedy cost-based cover selection (GCov), the answering facade |
//! | [`datagen`] | LUBM-like / DBLP-like / INSEE-like / IGN-like synthetic workloads |
//!
//! ## Quickstart
//!
//! ```
//! use rdfref::prelude::*;
//!
//! // An RDF graph mixing data and RDFS constraints (the paper's Figure 2).
//! let mut graph = rdfref::model::parser::parse_turtle(r#"
//!     @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!     @prefix ex: <http://example.org/> .
//!     ex:Book rdfs:subClassOf ex:Publication .
//!     ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
//!     ex:writtenBy rdfs:domain ex:Book .
//!     ex:writtenBy rdfs:range ex:Person .
//!     ex:doi1 a ex:Book ;
//!             ex:writtenBy _:b1 ;
//!             ex:hasTitle "El Aleph" ;
//!             ex:publishedIn 1949 .
//!     _:b1 ex:hasName "J. L. Borges" .
//! "#).unwrap();
//!
//! // The paper's §3 query: names of authors of things connected to 1949.
//! let q = parse_select(r#"
//!     PREFIX ex: <http://example.org/>
//!     SELECT ?name WHERE {
//!         ?x ex:hasAuthor ?a .
//!         ?a ex:hasName ?name .
//!         ?x ?p 1949
//!     }"#, graph.dictionary_mut()).unwrap();
//!
//! let db = Database::builder().build(graph);
//! // Reformulation (cost-based cover) finds the answer WITHOUT saturating:
//! let ans = db.query(&q).strategy(Strategy::RefGCov).run().unwrap();
//! assert_eq!(ans.len(), 1);
//! // …and agrees with saturation-based answering:
//! let sat = db.query(&q).strategy(Strategy::Saturation).run().unwrap();
//! assert_eq!(ans.rows(), sat.rows());
//! ```

#![forbid(unsafe_code)]

pub use rdfref_core as core;
pub use rdfref_datagen as datagen;
pub use rdfref_datalog as datalog;
pub use rdfref_model as model;
pub use rdfref_query as query;
pub use rdfref_reasoning as reasoning;
pub use rdfref_storage as storage;

/// The most commonly used items, re-exported.
pub mod prelude {
    pub use rdfref_core::answer::{AnswerOptions, Database, QueryAnswer, Strategy};
    pub use rdfref_core::cache::{CacheCounters, PlanCache};
    pub use rdfref_core::engine::{QueryEngine, QueryRequest};
    pub use rdfref_core::gcov::{gcov, GcovOptions};
    pub use rdfref_core::incomplete::IncompletenessProfile;
    pub use rdfref_core::maintained::MaintainedDatabase;
    pub use rdfref_core::reformulate::{
        reformulate_jucq, reformulate_scq, reformulate_ucq, ReformulationLimits, RewriteContext,
    };
    pub use rdfref_core::serving::{
        BatchReport, BatchTicket, ServingDatabase, ShardConfig, ShardedServingDatabase, Snapshot,
        UpdateBatch,
    };
    pub use rdfref_core::SnapshotInfo;
    pub use rdfref_core::{EngineBuilder, MetricsRegistry, Obs};
    pub use rdfref_model::{Dictionary, Graph, Schema, Term, TermId, Triple};
    pub use rdfref_query::{parse_select, Cover, Cq, Var};
    pub use rdfref_reasoning::{saturate, IncrementalReasoner};
    pub use rdfref_storage::{JoinAlgorithm, Parallelism, DEFAULT_MORSEL_SIZE};
}
