//! Differential equivalence harness for the WCOJ (leapfrog triejoin)
//! executor.
//!
//! For every generated scenario — a random RDFS schema, instance data, and
//! a join-shaped BGP (chains, stars, triangles) — answering with the join
//! algorithm forced to `Wcoj` or left to `Auto` must compute exactly the
//! same certain answers as the bind-join path, for every strategy and for
//! both dictionary encodings. The classic bind-join database is the
//! oracle; nothing here assumes the WCOJ path is right, only that it must
//! agree with the path already proven by `tests/properties.rs` and
//! `tests/interval_equivalence.rs`. The interval × Wcoj corner pins the
//! `Auto` × `RangeScan` interaction: a `type ∈ [lo,hi)` range atom
//! participates as one bounded trie level instead of a union.
//!
//! Run with `--features strict-invariants` to additionally exercise the
//! store/scan debug assertions on every case.

use proptest::prelude::*;
use rdfref::core::answer::{AnswerOptions, Database, Strategy as QStrategy};
use rdfref::core::incomplete::IncompletenessProfile;
use rdfref::core::JoinAlgorithm;
use rdfref::model::dictionary::ID_RDF_TYPE;
use rdfref::model::{DictEncoding, EncodedTriple, Graph, Term, TermId};
use rdfref::query::ast::{Atom, Cq, PTerm};
use rdfref::query::{Cover, Var};

const N_CLASSES: usize = 6;
const N_PROPS: usize = 3;
const N_INDS: usize = 8;

/// Join-shaped query skeletons. Each `usize` picks a property (mod pool);
/// the optional index pins one endpoint to a constant individual.
#[derive(Debug, Clone)]
enum QueryShape {
    /// x0 -p0- x1 -p1- x2 … (acyclic; bind join's home turf).
    Chain(Vec<usize>, Option<usize>),
    /// hub -p_i- leaf_i for each i, plus an optional `hub a C` atom
    /// (the cost model's hub rule).
    Star(Vec<usize>, Option<usize>),
    /// x -p0- y, y -p1- z, x -p2- z (cyclic; WCOJ's home turf).
    Triangle(usize, usize, usize),
}

#[derive(Debug, Clone)]
struct Scenario {
    /// parents[i] is the superclass of class i+1 (mod i+1): a random forest.
    class_parents: Vec<usize>,
    /// Subproperty edges (a ⊑ b).
    subprops: Vec<(usize, usize)>,
    type_facts: Vec<(usize, usize)>,
    prop_facts: Vec<(usize, usize, usize)>,
    shape: QueryShape,
}

fn shape_strategy() -> impl Strategy<Value = QueryShape> {
    prop_oneof![
        (
            proptest::collection::vec(0usize..N_PROPS, 1..4),
            proptest::option::of(0usize..N_INDS),
        )
            .prop_map(|(ps, c)| QueryShape::Chain(ps, c)),
        (
            proptest::collection::vec(0usize..N_PROPS, 2..4),
            proptest::option::of(0usize..N_CLASSES),
        )
            .prop_map(|(ps, c)| QueryShape::Star(ps, c)),
        (0usize..N_PROPS, 0usize..N_PROPS, 0usize..N_PROPS)
            .prop_map(|(a, b, c)| QueryShape::Triangle(a, b, c)),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(0usize..N_CLASSES, N_CLASSES - 1),
        proptest::collection::vec((0usize..N_PROPS, 0usize..N_PROPS), 0..3),
        proptest::collection::vec((0usize..N_INDS, 0usize..N_CLASSES), 0..10),
        proptest::collection::vec((0usize..N_INDS, 0usize..N_PROPS, 0usize..N_INDS), 4..24),
        shape_strategy(),
    )
        .prop_map(
            |(class_parents, subprops, type_facts, prop_facts, shape)| Scenario {
                class_parents,
                subprops,
                type_facts,
                prop_facts,
                shape,
            },
        )
}

fn build(scenario: &Scenario) -> (Graph, Cq) {
    let mut graph = Graph::new();
    let d = graph.dictionary_mut();
    let classes: Vec<TermId> = (0..N_CLASSES)
        .map(|i| d.intern(&Term::iri(format!("http://w/C{i}"))))
        .collect();
    let properties: Vec<TermId> = (0..N_PROPS)
        .map(|i| d.intern(&Term::iri(format!("http://w/p{i}"))))
        .collect();
    let individuals: Vec<TermId> = (0..N_INDS)
        .map(|i| d.intern(&Term::iri(format!("http://w/i{i}"))))
        .collect();
    let sc = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBCLASSOF));
    let sp = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBPROPERTYOF));
    for (i, &p) in scenario.class_parents.iter().enumerate() {
        graph.insert_encoded(EncodedTriple::new(classes[i + 1], sc, classes[p % (i + 1)]));
    }
    for &(a, b) in &scenario.subprops {
        if a != b {
            graph.insert_encoded(EncodedTriple::new(properties[a], sp, properties[b]));
        }
    }
    for &(i, c) in &scenario.type_facts {
        graph.insert_encoded(EncodedTriple::new(individuals[i], ID_RDF_TYPE, classes[c]));
    }
    for &(s, p, o) in &scenario.prop_facts {
        graph.insert_encoded(EncodedTriple::new(
            individuals[s],
            properties[p],
            individuals[o],
        ));
    }

    let v = |n: String| PTerm::Var(Var::new(n));
    let body: Vec<Atom> = match &scenario.shape {
        QueryShape::Chain(props, last_const) => props
            .iter()
            .enumerate()
            .map(|(i, &p)| Atom {
                s: v(format!("x{i}")),
                p: PTerm::Const(properties[p]),
                o: if i + 1 == props.len() {
                    match last_const {
                        Some(c) => PTerm::Const(individuals[*c]),
                        None => v(format!("x{}", i + 1)),
                    }
                } else {
                    v(format!("x{}", i + 1))
                },
            })
            .collect(),
        QueryShape::Star(props, type_class) => {
            let mut atoms: Vec<Atom> = props
                .iter()
                .enumerate()
                .map(|(i, &p)| Atom {
                    s: v("hub".to_string()),
                    p: PTerm::Const(properties[p]),
                    o: v(format!("leaf{i}")),
                })
                .collect();
            if let Some(c) = type_class {
                atoms.push(Atom {
                    s: v("hub".to_string()),
                    p: PTerm::Const(ID_RDF_TYPE),
                    o: PTerm::Const(classes[*c]),
                });
            }
            atoms
        }
        QueryShape::Triangle(a, b, c) => vec![
            Atom {
                s: v("x".to_string()),
                p: PTerm::Const(properties[*a]),
                o: v("y".to_string()),
            },
            Atom {
                s: v("y".to_string()),
                p: PTerm::Const(properties[*b]),
                o: v("z".to_string()),
            },
            Atom {
                s: v("x".to_string()),
                p: PTerm::Const(properties[*c]),
                o: v("z".to_string()),
            },
        ],
    };
    let mut head: Vec<Var> = Vec::new();
    for atom in &body {
        for var in atom.vars() {
            if !head.contains(var) {
                head.push(var.clone());
            }
        }
    }
    let cq = Cq::new_unchecked(head.into_iter().map(PTerm::Var).collect(), body);
    (graph, cq)
}

fn all_strategies(cq: &Cq) -> Vec<QStrategy> {
    let mut out = vec![
        QStrategy::Saturation,
        QStrategy::RefUcq,
        QStrategy::RefScq,
        QStrategy::RefGCov,
        QStrategy::RefIncomplete(IncompletenessProfile::complete()),
        QStrategy::Datalog,
        QStrategy::DatalogMagic,
    ];
    if cq.size() >= 2 {
        let n = cq.size();
        out.push(QStrategy::RefJucq(
            Cover::new(vec![(0..n / 2 + 1).collect(), (n / 2..n).collect()], n).unwrap(),
        ));
    }
    out
}

/// The core differential check: for every strategy, every join algorithm ×
/// encoding combination must be row-set-identical (compared sorted) to the
/// classic bind-join oracle.
fn check(graph: Graph, cq: &Cq, label: &str) -> Result<(), TestCaseError> {
    let classic = Database::builder().build(graph.clone());
    let interval = Database::builder()
        .encoding(DictEncoding::Interval)
        .build(graph);
    let algorithms = [
        JoinAlgorithm::BindJoin,
        JoinAlgorithm::Wcoj,
        JoinAlgorithm::Auto,
    ];
    for strategy in all_strategies(cq) {
        let mut want = classic
            .run_query(
                cq,
                &strategy,
                &AnswerOptions::default().with_join_algorithm(JoinAlgorithm::BindJoin),
            )
            .unwrap_or_else(|e| panic!("{label}/oracle/{}: {e}", strategy.name()))
            .rows()
            .to_vec();
        want.sort();
        for (enc_name, db) in [("classic", &classic), ("interval", &interval)] {
            for algo in algorithms {
                let opts = AnswerOptions::default().with_join_algorithm(algo);
                let mut got = db
                    .run_query(cq, &strategy, &opts)
                    .unwrap_or_else(|e| {
                        panic!("{label}/{enc_name}/{algo:?}/{}: {e}", strategy.name())
                    })
                    .rows()
                    .to_vec();
                got.sort();
                prop_assert_eq!(
                    &got,
                    &want,
                    "{}: {}/{:?} diverged from the bind-join oracle under {}",
                    label,
                    enc_name,
                    algo,
                    strategy.name()
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// WCOJ and Auto are answer-invariant over chains, stars and triangles,
    /// for every strategy and both encodings.
    #[test]
    fn wcoj_equals_bind_join_oracle(scenario in scenario_strategy()) {
        let (graph, cq) = build(&scenario);
        check(graph, &cq, &format!("{:?}", scenario.shape))?;
    }
}

/// The stressor dataset's triangle: planted answers only, and the cost
/// model routes `Auto` to WCOJ on the cyclic body and to bind join on the
/// acyclic path control.
#[test]
fn stressor_triangle_and_auto_verdicts() {
    use rdfref::datagen::wcoj::{generate, wcoj_mix, WcojConfig};
    let ds = generate(&WcojConfig {
        hubs: 4,
        spokes: 12,
        likes_per_hub: 3,
        triangles: 5,
    });
    let mix = wcoj_mix(&ds).unwrap();
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::default().with_join_algorithm(JoinAlgorithm::Auto);

    let triangle = db.run_query(&mix[0].cq, &QStrategy::RefUcq, &opts).unwrap();
    assert_eq!(
        triangle.len(),
        5,
        "answers are exactly the planted triangles"
    );
    let phys = triangle.explain.physical.as_ref().expect("physical plan");
    assert_eq!(phys.algorithm, "wcoj");
    assert!(phys.reason.contains("cyclic"), "{}", phys.reason);
    assert_eq!(phys.var_order.len(), 3);
    assert_eq!(phys.atoms.len(), 3);

    let path = db.run_query(&mix[2].cq, &QStrategy::RefUcq, &opts).unwrap();
    let phys = path.explain.physical.as_ref().expect("physical plan");
    assert_eq!(phys.algorithm, "bind join");
    assert!(
        phys.reason.contains("fewer than 3 atoms"),
        "{}",
        phys.reason
    );

    // Forced WCOJ matches forced bind join on the whole mix.
    for nq in &mix {
        for strategy in [QStrategy::RefUcq, QStrategy::RefGCov, QStrategy::Saturation] {
            let mut want = db
                .run_query(
                    &nq.cq,
                    &strategy,
                    &AnswerOptions::default().with_join_algorithm(JoinAlgorithm::BindJoin),
                )
                .unwrap()
                .rows()
                .to_vec();
            want.sort();
            let mut got = db
                .run_query(
                    &nq.cq,
                    &strategy,
                    &AnswerOptions::default().with_join_algorithm(JoinAlgorithm::Wcoj),
                )
                .unwrap()
                .rows()
                .to_vec();
            got.sort();
            assert_eq!(got, want, "{}/{}", nq.name, strategy.name());
        }
    }
}

/// Plan-cache isolation: the same query answered under both algorithms on
/// one database (cache on) must not serve one algorithm's cached plan to
/// the other — the algorithm tag is part of the cache key.
#[test]
fn plan_cache_keys_are_algorithm_tagged() {
    use rdfref::datagen::wcoj::{generate, WcojConfig};
    let ds = generate(&WcojConfig {
        hubs: 3,
        spokes: 8,
        likes_per_hub: 2,
        triangles: 4,
    });
    let mix = rdfref::datagen::wcoj::wcoj_mix(&ds).unwrap();
    let db = Database::builder().build(ds.graph.clone());
    // Interleave cached runs under different algorithms; answers must stay
    // stable run over run (a wrongly-shared plan would flip them).
    let mut reference: Option<Vec<Vec<TermId>>> = None;
    for _ in 0..3 {
        for algo in [
            JoinAlgorithm::BindJoin,
            JoinAlgorithm::Wcoj,
            JoinAlgorithm::Auto,
        ] {
            let mut rows = db
                .run_query(
                    &mix[0].cq,
                    &QStrategy::RefUcq,
                    &AnswerOptions::default().with_join_algorithm(algo),
                )
                .unwrap()
                .rows()
                .to_vec();
            rows.sort();
            match &reference {
                Some(want) => assert_eq!(&rows, want, "{algo:?}"),
                None => reference = Some(rows),
            }
        }
    }
}
