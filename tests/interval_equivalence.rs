//! Differential equivalence harness for interval dictionary encoding.
//!
//! For every generated scenario — schema hierarchy (deep chains, random
//! trees, DAGs with multiple inheritance and even cycles), instance data and
//! BGP query — an interval-encoded database must compute exactly the same
//! certain answers as a classic one, for every answering strategy. The
//! classic database is the oracle; nothing here assumes the interval path is
//! right, only that it must agree with the path that is already proven by
//! `tests/properties.rs` and `tests/strategy_equivalence.rs`.
//!
//! Run with `--features strict-invariants` to additionally exercise the
//! store/scan/encoder debug assertions on every case.

use proptest::prelude::*;
use rdfref::core::answer::{AnswerOptions, Database, Strategy as QStrategy};
use rdfref::core::incomplete::IncompletenessProfile;
use rdfref::model::dictionary::ID_RDF_TYPE;
use rdfref::model::{DictEncoding, EncodedTriple, Graph, Term, TermId};
use rdfref::query::ast::{Atom, Cq, PTerm};
use rdfref::query::{Cover, Var};

const N_CLASSES: usize = 8;
const N_PROPS: usize = 4;
const N_INDS: usize = 7;

struct Pools {
    graph: Graph,
    classes: Vec<TermId>,
    properties: Vec<TermId>,
    individuals: Vec<TermId>,
    sc: TermId,
    sp: TermId,
    dom: TermId,
    rng: TermId,
}

fn pools() -> Pools {
    let mut graph = Graph::new();
    let d = graph.dictionary_mut();
    let classes: Vec<TermId> = (0..N_CLASSES)
        .map(|i| d.intern(&Term::iri(format!("http://t/C{i}"))))
        .collect();
    let properties: Vec<TermId> = (0..N_PROPS)
        .map(|i| d.intern(&Term::iri(format!("http://t/p{i}"))))
        .collect();
    let individuals: Vec<TermId> = (0..N_INDS)
        .map(|i| d.intern(&Term::iri(format!("http://t/i{i}"))))
        .collect();
    let sc = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBCLASSOF));
    let sp = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBPROPERTYOF));
    let dom = d.intern(&Term::iri(rdfref::model::vocab::RDFS_DOMAIN));
    let rng = d.intern(&Term::iri(rdfref::model::vocab::RDFS_RANGE));
    Pools {
        graph,
        classes,
        properties,
        individuals,
        sc,
        sp,
        dom,
        rng,
    }
}

/// Shape of the class hierarchy. Chains and trees are fully coverable by the
/// interval encoder; DAGs force the multiple-inheritance union fallback.
#[derive(Debug, Clone)]
enum Shape {
    /// C0 ⊑ C1 ⊑ … ⊑ Ck — the reformulation-explosion case intervals target.
    Chain(usize),
    /// parents[i] is the parent of class i+1 (always < i+1): a random forest.
    Tree(Vec<usize>),
    /// Arbitrary subclass edges: multiple inheritance, diamonds, cycles.
    Dag(Vec<(usize, usize)>),
}

impl Shape {
    fn edges(&self) -> Vec<(usize, usize)> {
        match self {
            Shape::Chain(len) => (0..*len).map(|i| (i, i + 1)).collect(),
            Shape::Tree(parents) => parents
                .iter()
                .enumerate()
                .map(|(i, &p)| (i + 1, p % (i + 1)))
                .collect(),
            Shape::Dag(edges) => edges.clone(),
        }
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    shape: Shape,
    subprop: Vec<(usize, usize)>,
    domains: Vec<(usize, usize)>,
    ranges: Vec<(usize, usize)>,
    type_facts: Vec<(usize, usize)>,
    prop_facts: Vec<(usize, usize, usize)>,
    query_atoms: Vec<QAtom>,
}

#[derive(Debug, Clone)]
enum QAtom {
    /// subject var, class constant (Ok) or variable (Err).
    Type(u8, Result<usize, u8>),
    /// subject, property, object — each a constant index (Ok) or var (Err).
    Prop(Result<usize, u8>, Result<usize, u8>, Result<usize, u8>),
}

fn const_or_var(consts: std::ops::Range<usize>) -> impl Strategy<Value = Result<usize, u8>> {
    prop_oneof![
        3 => consts.prop_map(Ok::<usize, u8>),
        1 => (0u8..3).prop_map(Err::<usize, u8>),
    ]
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (2usize..N_CLASSES).prop_map(Shape::Chain),
        proptest::collection::vec(0usize..N_CLASSES, N_CLASSES - 1).prop_map(Shape::Tree),
        proptest::collection::vec((0usize..N_CLASSES, 0usize..N_CLASSES), 0..8)
            .prop_map(Shape::Dag),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let type_atom = (0u8..3, const_or_var(0..N_CLASSES)).prop_map(|(s, c)| QAtom::Type(s, c));
    let prop_atom = (
        const_or_var(0..N_INDS),
        const_or_var(0..N_PROPS),
        const_or_var(0..N_INDS),
    )
        .prop_map(|(s, p, o)| QAtom::Prop(s, p, o));
    let atom = prop_oneof![3 => type_atom, 2 => prop_atom];
    (
        shape_strategy(),
        proptest::collection::vec((0usize..N_PROPS, 0usize..N_PROPS), 0..4),
        proptest::collection::vec((0usize..N_PROPS, 0usize..N_CLASSES), 0..3),
        proptest::collection::vec((0usize..N_PROPS, 0usize..N_CLASSES), 0..3),
        proptest::collection::vec((0usize..N_INDS, 0usize..N_CLASSES), 0..8),
        proptest::collection::vec((0usize..N_INDS, 0usize..N_PROPS, 0usize..N_INDS), 0..10),
        proptest::collection::vec(atom, 1..3),
    )
        .prop_map(
            |(shape, subprop, domains, ranges, type_facts, prop_facts, query_atoms)| Scenario {
                shape,
                subprop,
                domains,
                ranges,
                type_facts,
                prop_facts,
                query_atoms,
            },
        )
}

fn build(scenario: &Scenario) -> (Graph, Cq) {
    let Pools {
        mut graph,
        classes,
        properties,
        individuals,
        sc,
        sp,
        dom,
        rng,
    } = pools();
    for (a, b) in scenario.shape.edges() {
        if a != b {
            graph.insert_encoded(EncodedTriple::new(classes[a], sc, classes[b]));
        }
    }
    for &(a, b) in &scenario.subprop {
        if a != b {
            graph.insert_encoded(EncodedTriple::new(properties[a], sp, properties[b]));
        }
    }
    for &(p, c) in &scenario.domains {
        graph.insert_encoded(EncodedTriple::new(properties[p], dom, classes[c]));
    }
    for &(p, c) in &scenario.ranges {
        graph.insert_encoded(EncodedTriple::new(properties[p], rng, classes[c]));
    }
    for &(i, c) in &scenario.type_facts {
        graph.insert_encoded(EncodedTriple::new(individuals[i], ID_RDF_TYPE, classes[c]));
    }
    for &(s, p, o) in &scenario.prop_facts {
        graph.insert_encoded(EncodedTriple::new(
            individuals[s],
            properties[p],
            individuals[o],
        ));
    }

    let var = |v: u8| PTerm::Var(Var::new(format!("v{v}")));
    let pick = |pool: &[TermId], t: &Result<usize, u8>| match t {
        Ok(i) => PTerm::Const(pool[*i % pool.len()]),
        Err(v) => var(*v),
    };
    let body: Vec<Atom> = scenario
        .query_atoms
        .iter()
        .map(|a| match a {
            QAtom::Type(s, c) => Atom {
                s: var(*s),
                p: PTerm::Const(ID_RDF_TYPE),
                o: pick(&classes, c),
            },
            QAtom::Prop(s, p, o) => Atom {
                s: pick(&individuals, s),
                p: pick(&properties, p),
                o: pick(&individuals, o),
            },
        })
        .collect();
    let mut head: Vec<Var> = Vec::new();
    for atom in &body {
        for v in atom.vars() {
            if !head.contains(v) {
                head.push(v.clone());
            }
        }
    }
    let cq = Cq::new_unchecked(head.into_iter().map(PTerm::Var).collect(), body);
    (graph, cq)
}

fn all_strategies(cq: &Cq) -> Vec<QStrategy> {
    let mut out = vec![
        QStrategy::Saturation,
        QStrategy::RefUcq,
        QStrategy::RefScq,
        QStrategy::RefGCov,
        QStrategy::RefIncomplete(IncompletenessProfile::complete()),
        QStrategy::Datalog,
        QStrategy::DatalogMagic,
    ];
    if cq.size() >= 2 {
        let n = cq.size();
        out.push(QStrategy::RefJucq(
            Cover::new(vec![(0..n / 2 + 1).collect(), (n / 2..n).collect()], n).unwrap(),
        ));
    }
    out
}

/// The core differential check: interval answers must be set-equal to
/// classic answers, per strategy, and both self-consistent against Sat.
fn check(graph: Graph, cq: &Cq, label: &str) -> Result<(), TestCaseError> {
    let classic = Database::builder().build(graph.clone());
    let interval = Database::builder()
        .encoding(DictEncoding::Interval)
        .build(graph);
    let opts = AnswerOptions::default();
    for strategy in all_strategies(cq) {
        let want = classic
            .run_query(cq, &strategy, &opts)
            .unwrap_or_else(|e| panic!("{label}/classic/{}: {e}", strategy.name()))
            .rows()
            .to_vec();
        let got = interval
            .run_query(cq, &strategy, &opts)
            .unwrap_or_else(|e| panic!("{label}/interval/{}: {e}", strategy.name()))
            .rows()
            .to_vec();
        prop_assert_eq!(
            &got,
            &want,
            "{}: interval diverged from classic under {}",
            label,
            strategy.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Interval encoding is answer-invariant over chains, trees and DAGs,
    /// for every strategy.
    #[test]
    fn interval_equals_classic(scenario in scenario_strategy()) {
        let (graph, cq) = build(&scenario);
        check(graph, &cq, &format!("{:?}", scenario.shape))?;
    }
}

/// Deep chain: the headline case. The encoder must actually cover the chain
/// (one range atom replaces the N-way union) and agree with classic.
#[test]
fn deep_chain_is_covered_and_equivalent() {
    let mut graph = Graph::new();
    let d = graph.dictionary_mut();
    let classes: Vec<TermId> = (0..40)
        .map(|i| d.intern(&Term::iri(format!("http://t/D{i}"))))
        .collect();
    let inds: Vec<TermId> = (0..20)
        .map(|i| d.intern(&Term::iri(format!("http://t/x{i}"))))
        .collect();
    let sc = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBCLASSOF));
    for w in classes.windows(2) {
        graph.insert_encoded(EncodedTriple::new(w[0], sc, w[1]));
    }
    // Each individual typed at a different depth of the chain.
    for (i, &ind) in inds.iter().enumerate() {
        graph.insert_encoded(EncodedTriple::new(ind, ID_RDF_TYPE, classes[i * 2]));
    }
    let root = *classes.last().unwrap();
    let cq = Cq::new_unchecked(
        vec![PTerm::Var(Var::new("x"))],
        vec![Atom {
            s: PTerm::Var(Var::new("x")),
            p: PTerm::Const(ID_RDF_TYPE),
            o: PTerm::Const(root),
        }],
    );

    let interval = Database::builder()
        .encoding(DictEncoding::Interval)
        .build(graph.clone());
    let enc = interval
        .encoder()
        .expect("interval database must build an encoder");
    let (lo, hi) = enc
        .class_range(root)
        .expect("a pure chain root must be interval-covered");
    assert_eq!(
        (hi.0 - lo.0) as usize,
        classes.len(),
        "range spans the chain"
    );

    check(graph, &cq, "deep-chain").unwrap();
}

/// Multiple inheritance: the offending subtree must fall back to unions but
/// still answer identically.
#[test]
fn diamond_falls_back_and_stays_equivalent() {
    let mut graph = Graph::new();
    let d = graph.dictionary_mut();
    let [a, b, c, top] =
        ["A", "B", "C", "Top"].map(|n| d.intern(&Term::iri(format!("http://t/{n}"))));
    let inds: Vec<TermId> = (0..4)
        .map(|i| d.intern(&Term::iri(format!("http://t/y{i}"))))
        .collect();
    let sc = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBCLASSOF));
    // Diamond: A ⊑ B, A ⊑ C, B ⊑ Top, C ⊑ Top.
    for (x, y) in [(a, b), (a, c), (b, top), (c, top)] {
        graph.insert_encoded(EncodedTriple::new(x, sc, y));
    }
    for (i, &ind) in inds.iter().enumerate() {
        let cls = [a, b, c, top][i];
        graph.insert_encoded(EncodedTriple::new(ind, ID_RDF_TYPE, cls));
    }
    let type_q = |cls: TermId| {
        Cq::new_unchecked(
            vec![PTerm::Var(Var::new("x"))],
            vec![Atom {
                s: PTerm::Var(Var::new("x")),
                p: PTerm::Const(ID_RDF_TYPE),
                o: PTerm::Const(cls),
            }],
        )
    };

    // A attaches under its primary parent B, so Top's subtree {Top,B,A,C}
    // equals its closure — Top stays covered. The secondary parent C is the
    // fallback node: A is a subclass of C but lives outside C's subtree.
    let interval = Database::builder()
        .encoding(DictEncoding::Interval)
        .build(graph.clone());
    let enc = interval.encoder().unwrap();
    assert!(enc.class_range(top).is_some(), "diamond top stays covered");
    assert!(
        enc.class_range(c).is_none(),
        "secondary parent must fall back to unions (A lies outside its subtree)"
    );

    check(graph.clone(), &type_q(top), "diamond/top").unwrap();
    check(graph, &type_q(c), "diamond/secondary").unwrap();
}

/// Property hierarchies: a subproperty chain must answer identically with
/// and without interval encoding (exercises prop_range + R4/R2/R3 paths).
#[test]
fn subproperty_chain_equivalent() {
    let mut graph = Graph::new();
    let d = graph.dictionary_mut();
    let props: Vec<TermId> = (0..10)
        .map(|i| d.intern(&Term::iri(format!("http://t/q{i}"))))
        .collect();
    let cls = d.intern(&Term::iri("http://t/K"));
    let inds: Vec<TermId> = (0..8)
        .map(|i| d.intern(&Term::iri(format!("http://t/z{i}"))))
        .collect();
    let sp = d.intern(&Term::iri(rdfref::model::vocab::RDFS_SUBPROPERTYOF));
    let dom = d.intern(&Term::iri(rdfref::model::vocab::RDFS_DOMAIN));
    for w in props.windows(2) {
        graph.insert_encoded(EncodedTriple::new(w[0], sp, w[1]));
    }
    // Root property has a domain, so type queries hit R2 via the family.
    graph.insert_encoded(EncodedTriple::new(*props.last().unwrap(), dom, cls));
    for (i, w) in inds.windows(2).enumerate() {
        graph.insert_encoded(EncodedTriple::new(w[0], props[i % props.len()], w[1]));
    }
    let x = || PTerm::Var(Var::new("x"));
    let y = || PTerm::Var(Var::new("y"));
    let prop_q = Cq::new_unchecked(
        vec![x(), y()],
        vec![Atom {
            s: x(),
            p: PTerm::Const(*props.last().unwrap()),
            o: y(),
        }],
    );
    let type_q = Cq::new_unchecked(
        vec![x()],
        vec![Atom {
            s: x(),
            p: PTerm::Const(ID_RDF_TYPE),
            o: PTerm::Const(cls),
        }],
    );

    let interval = Database::builder()
        .encoding(DictEncoding::Interval)
        .build(graph.clone());
    assert!(
        interval
            .encoder()
            .unwrap()
            .prop_range(*props.last().unwrap())
            .is_some(),
        "property chain root must be covered"
    );
    check(graph.clone(), &prop_q, "subprop-chain/prop").unwrap();
    check(graph, &type_q, "subprop-chain/type").unwrap();
}
