//! Pins that the model checker stays out of normal builds.
//!
//! The `rdfref_sync` facade is a zero-cost re-export of std/parking_lot
//! unless `--features model-check` swaps in the instrumented shims. These
//! tests enforce the manifest discipline that guarantees it: the scheduler
//! crate is an *optional* dependency of the facade only, the `model-check`
//! feature is never a default anywhere, and every `model-check` feature in
//! the workspace bottoms out in `rdfref-sync`'s. If any of this drifts, a
//! release binary would silently carry (and possibly route sync ops
//! through) the model-checking runtime.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn crate_manifests() -> Vec<(String, String)> {
    let crates = workspace_root().join("crates");
    let mut out = Vec::new();
    for entry in fs::read_dir(&crates).expect("read crates/") {
        let dir = entry.expect("dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let name = dir.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, fs::read_to_string(&manifest).expect("read manifest")));
        }
    }
    assert!(!out.is_empty(), "no crate manifests found");
    out.sort();
    out
}

/// The `default = […]` feature list of a manifest, if any.
fn default_features(manifest: &str) -> Option<&str> {
    let line = manifest.lines().find(|l| {
        l.trim_start().starts_with("default ") || l.trim_start().starts_with("default=")
    })?;
    line.split_once('=').map(|(_, v)| v.trim())
}

#[test]
fn model_check_is_never_a_default_feature() {
    for (name, manifest) in crate_manifests() {
        if let Some(defaults) = default_features(&manifest) {
            assert!(
                !defaults.contains("model-check"),
                "crates/{name}: `model-check` must stay opt-in, found in default features: {defaults}"
            );
        }
    }
    let root = fs::read_to_string(workspace_root().join("Cargo.toml")).expect("root manifest");
    if let Some(defaults) = default_features(&root) {
        assert!(
            !defaults.contains("model-check"),
            "root defaults: {defaults}"
        );
    }
}

#[test]
fn the_scheduler_is_an_optional_dependency_of_the_facade_only() {
    for (name, manifest) in crate_manifests() {
        if name == "modelcheck" {
            continue; // the crate itself
        }
        let uses_scheduler = manifest.contains("rdfref-modelcheck");
        if name == "sync" {
            assert!(uses_scheduler, "the facade must gate the scheduler");
            let dep_line = manifest
                .lines()
                .find(|l| l.contains("rdfref-modelcheck"))
                .unwrap();
            assert!(
                dep_line.contains("optional = true"),
                "crates/sync: the scheduler dep must be optional, got: {dep_line}"
            );
            assert!(
                manifest.contains("model-check = [\"dep:rdfref-modelcheck\"]"),
                "crates/sync: the model-check feature must be what enables the dep"
            );
        } else {
            assert!(
                !uses_scheduler,
                "crates/{name} depends on rdfref-modelcheck directly — only the \
                 rdfref-sync facade may link the scheduler, and only behind model-check"
            );
        }
    }
}

#[test]
fn downstream_model_check_features_bottom_out_in_the_facade() {
    for (name, manifest) in crate_manifests() {
        if name == "sync" || name == "modelcheck" {
            continue;
        }
        for line in manifest.lines() {
            let t = line.trim_start();
            if t.starts_with("model-check") && t.contains('=') {
                // Forwarding through another workspace crate's model-check
                // feature (e.g. bench → core → sync) is fine: every chain
                // terminates in the facade's `dep:rdfref-modelcheck`.
                assert!(
                    t.contains("rdfref-sync/model-check") || t.contains("rdfref-core/model-check"),
                    "crates/{name}: a model-check feature must forward toward \
                     rdfref-sync/model-check, got: {t}"
                );
            }
        }
    }
}

/// This test compiles in the default (non-model-check) configuration; if
/// the scheduler ever leaked into the normal build graph, the facade's
/// types would stop being std/parking_lot's and this would fail to
/// compile. Backed by `rdfref_sync::zero_cost_identity`, which pins the
/// type identities themselves.
#[test]
fn facade_types_are_the_real_ones_in_this_build() {
    let arc: rdfref_sync::Arc<u64> = std::sync::Arc::new(7);
    assert_eq!(*arc, 7);
    let atomic = rdfref_sync::atomic::AtomicU64::new(1);
    let std_ref: &std::sync::atomic::AtomicU64 = &atomic;
    assert_eq!(std_ref.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn scheduler_symbols_are_absent_from_the_normal_dep_graph() {
    // The lockfile records the full resolved graph; `rdfref-modelcheck`
    // may appear (it is a workspace member) but nothing outside
    // `rdfref-sync` may list it as a dependency edge. Parse the minimal
    // structure: package blocks are separated by blank lines.
    let lock = fs::read_to_string(workspace_root().join("Cargo.lock")).expect("Cargo.lock");
    let mut current: Option<&str> = None;
    let mut facade_edge_seen = false;
    for line in lock.lines() {
        if let Some(rest) = line.strip_prefix("name = ") {
            current = Some(rest.trim_matches('"'));
        }
        // Dependency edges are quoted list entries inside `dependencies = […]`;
        // the package's own `name = …` line does not match this shape.
        let t = line.trim();
        if t == "\"rdfref-modelcheck\"," || t == "\"rdfref-modelcheck\"" {
            let owner = current.unwrap_or("?");
            assert_eq!(
                owner, "rdfref-sync",
                "Cargo.lock: {owner} lists rdfref-modelcheck as a dependency"
            );
            facade_edge_seen = true;
        }
    }
    assert!(
        facade_edge_seen,
        "Cargo.lock: expected the optional rdfref-sync → rdfref-modelcheck edge"
    );
    let _ = Path::new("");
}
