//! End-to-end reproduction of the paper's running examples:
//! the §3 book graph (Figure 2) and the §4 Example-1 query structure.

use rdfref::datagen::lubm::{generate, LubmConfig};
use rdfref::datagen::queries;
use rdfref::prelude::*;

const FIGURE_2: &str = r#"
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex:   <http://example.org/> .
ex:doi1 rdf:type ex:Book ;
        ex:writtenBy _:b1 ;
        ex:hasTitle "El Aleph" ;
        ex:publishedIn "1949" .
_:b1 ex:hasName "J. L. Borges" .
ex:Book rdfs:subClassOf ex:Publication .
ex:writtenBy rdfs:subPropertyOf ex:hasAuthor .
ex:writtenBy rdfs:domain ex:Book .
ex:writtenBy rdfs:range ex:Person .
"#;

/// §3: "the query below asks for the names of authors of books somehow
/// connected to the literal 1949 … Its answer against the graph in Figure 2
/// is q(G∞) = {⟨"J. L. Borges"⟩}. Note that evaluating q only against G
/// leads to the empty answer."
#[test]
fn section_3_query_answering() {
    let mut g = rdfref::model::parser::parse_turtle(FIGURE_2).unwrap();
    let q = parse_select(
        r#"PREFIX ex: <http://example.org/>
           SELECT ?x3 WHERE { ?x1 ex:hasAuthor ?x2 . ?x2 ex:hasName ?x3 . ?x1 ?x4 "1949" }"#,
        g.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder().build(g);
    let opts = AnswerOptions::default();

    // Complete answer via every complete strategy.
    let expected_name = Term::literal("J. L. Borges");
    for strategy in [
        Strategy::Saturation,
        Strategy::RefUcq,
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::Datalog,
    ] {
        let a = db.run_query(&q, &strategy, &opts).unwrap();
        assert_eq!(a.len(), 1, "{} found wrong count", strategy.name());
        let row = &a.rows()[0];
        assert_eq!(db.graph().dictionary().term(row[0]), &expected_name);
    }

    // Evaluating only the explicit triples gives the empty (incomplete)
    // answer — the motivation for both Sat and Ref.
    let naive = db
        .run_query(
            &q,
            &Strategy::RefIncomplete(IncompletenessProfile::none()),
            &opts,
        )
        .unwrap();
    assert!(naive.is_empty());
}

/// Figure 2's implicit triples: saturation adds exactly the expected ones
/// for the data part (plus schema-closure triples).
#[test]
fn figure_2_saturation_content() {
    let g = rdfref::model::parser::parse_turtle(FIGURE_2).unwrap();
    let sat = saturate(&g);
    // 9 explicit + 3 implicit data triples (hasAuthor, τPublication,
    // τPerson b1) + 2 schema widenings (domain/range of writtenBy lifted to
    // Publication? no — domain Book ⊑ Publication gives writtenBy ←d
    // Publication; range Person has no superclass).
    assert!(sat.len() > g.len());
    let t = |s: &str, p: &str, o: Term| {
        Triple::new(
            Term::iri(format!("http://example.org/{s}")),
            Term::iri(format!("http://example.org/{p}")),
            o,
        )
        .unwrap()
    };
    assert!(sat.contains(&t("doi1", "hasAuthor", Term::blank("b1"))));
    assert!(sat.contains(
        &Triple::new(
            Term::iri("http://example.org/doi1"),
            Term::iri(rdfref::model::vocab::RDF_TYPE),
            Term::iri("http://example.org/Publication"),
        )
        .unwrap()
    ));
    assert!(sat.contains(
        &Triple::new(
            Term::blank("b1"),
            Term::iri(rdfref::model::vocab::RDF_TYPE),
            Term::iri("http://example.org/Person"),
        )
        .unwrap()
    ));
}

/// Example 1's qualitative claims at laptop scale:
/// (i) the UCQ reformulation is enormous (fails a generous limit),
/// (ii) SCQ evaluates but with large intermediate results,
/// (iii) the paper's hand cover and GCov's cover evaluate fast,
/// (iv) all feasible strategies return the same answers.
#[test]
fn example_1_shape() {
    let ds = generate(&LubmConfig::scale(3));
    let q = queries::example1(&ds, 0).unwrap();
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::new().with_limits(ReformulationLimits::new().with_max_cqs(20_000));

    // (i) UCQ fails by size.
    let ucq_err = db.run_query(&q, &Strategy::RefUcq, &opts).unwrap_err();
    assert!(matches!(
        ucq_err,
        rdfref::core::CoreError::ReformulationTooLarge { .. }
    ));
    // The product estimate reports the would-be size without materializing.
    let ctx = RewriteContext::new(db.schema(), db.closure());
    let size = rdfref::core::reformulate::ucq_size_product(&q, &ctx);
    assert!(size > 20_000, "UCQ size product is {size}");

    // Reference answers.
    let sat = db.run_query(&q, &Strategy::Saturation, &opts).unwrap();
    assert!(!sat.is_empty());

    // (ii) SCQ works, intermediates ≥ answers.
    let scq = db.run_query(&q, &Strategy::RefScq, &opts).unwrap();
    assert_eq!(scq.rows(), sat.rows());

    // (iii) the paper's cover and GCov agree and look sane.
    let paper = db
        .run_query(
            &q,
            &Strategy::RefJucq(queries::example1_paper_cover().unwrap()),
            &opts,
        )
        .unwrap();
    assert_eq!(paper.rows(), sat.rows());
    let gcv = db.run_query(&q, &Strategy::RefGCov, &opts).unwrap();
    assert_eq!(gcv.rows(), sat.rows());
    // GCov must leave the SCQ starting point (grouping is profitable here).
    assert!(!gcv.explain.cover.as_ref().unwrap().is_scq());
    // Its estimate beats the SCQ estimate among the explored covers.
    let scq_cover = Cover::singletons(q.size());
    let scq_est = gcv
        .explain
        .explored
        .iter()
        .find(|(c, _)| *c == scq_cover)
        .and_then(|(_, e)| *e)
        .expect("SCQ cover was explored (it is the start)");
    assert!(gcv.explain.estimate.unwrap().cost < scq_est.cost);
}

/// Dat agrees with Sat on a LUBM-like workload (it derives the same closure
/// at query time).
#[test]
fn dat_agrees_on_lubm() {
    let ds = generate(&LubmConfig::default());
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::default();
    for nq in rdfref::datagen::queries::lubm_mix(&ds)
        .unwrap()
        .into_iter()
        .take(6)
    {
        let sat = db.run_query(&nq.cq, &Strategy::Saturation, &opts).unwrap();
        let dat = db.run_query(&nq.cq, &Strategy::Datalog, &opts).unwrap();
        assert_eq!(sat.rows(), dat.rows(), "{} diverged", nq.name);
    }
}
