//! Concurrent answering through the shared plan cache.
//!
//! N threads hammer one `Database` with the LUBM and biblio query mixes,
//! cache enabled (the default), interleaving strategies and starting
//! offsets so that cache lookups, inserts and LRU updates race. Every
//! thread's rows must equal the single-threaded `Strategy::Saturation`
//! reference — the workspace-wide completeness invariant, now under
//! concurrency.

use rdfref::datagen::{biblio, lubm, queries};
use rdfref::model::TermId;
use rdfref::prelude::*;
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 3;

/// (name, query, single-threaded Sat reference rows).
type Workload = Vec<(String, Cq, Vec<Vec<TermId>>)>;

fn reference_workload(
    db: &Database,
    queries: Vec<rdfref::datagen::queries::NamedQuery>,
) -> Workload {
    let opts = AnswerOptions::default();
    queries
        .into_iter()
        .map(|nq| {
            let reference = db
                .run_query(&nq.cq, &Strategy::Saturation, &opts)
                .unwrap_or_else(|e| panic!("{}: Sat reference failed: {e}", nq.name))
                .rows()
                .to_vec();
            (nq.name.to_string(), nq.cq, reference)
        })
        .collect()
}

fn hammer(db: Arc<Database>, workload: Arc<Workload>) {
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let workload = Arc::clone(&workload);
            std::thread::spawn(move || {
                let strategies = [Strategy::RefUcq, Strategy::RefScq, Strategy::RefGCov];
                let opts = AnswerOptions::default();
                for round in 0..ROUNDS {
                    // Offset per thread and round so lookups and inserts for
                    // the same key interleave across threads.
                    for i in 0..workload.len() {
                        let (name, cq, reference) = &workload[(i + t + round) % workload.len()];
                        let strategy = &strategies[(i + t) % strategies.len()];
                        let got = db
                            .run_query(cq, strategy, &opts)
                            .unwrap_or_else(|e| {
                                panic!("thread {t}: {name}/{}: {e}", strategy.name())
                            })
                            .rows()
                            .to_vec();
                        assert_eq!(
                            &got,
                            reference,
                            "thread {t}: {name}/{} diverged from Sat",
                            strategy.name()
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("answering thread panicked");
    }

    // Sanity on the shared cache: every answering call did one lookup, and
    // the entries that accumulated are one per (query, tag) — SCQ and UCQ
    // tags per query, plus GCov — never more than lookups.
    let c = db.plan_cache().counters();
    let calls = (THREADS * ROUNDS * workload.len()) as u64;
    assert_eq!(c.hits + c.misses, calls, "one lookup per answering call");
    assert!(c.hits > 0, "repeated queries must hit");
    assert!(
        db.plan_cache().len() as u64 <= c.misses,
        "at most one insert per miss"
    );
}

#[test]
fn lubm_mix_concurrent_equals_saturation() {
    let ds = lubm::generate(&lubm::LubmConfig::scale(2));
    let db = Arc::new(Database::builder().build(ds.graph.clone()));
    let workload = Arc::new(reference_workload(&db, queries::lubm_mix(&ds).unwrap()));
    hammer(db, workload);
}

#[test]
fn biblio_mix_concurrent_equals_saturation() {
    let config = biblio::BiblioConfig {
        publications: 600,
        authors: 120,
        ..biblio::BiblioConfig::default()
    };
    let ds = biblio::generate(&config);
    let db = Arc::new(Database::builder().build(ds.graph.clone()));
    let workload = Arc::new(reference_workload(&db, queries::biblio_mix(&ds).unwrap()));
    hammer(db, workload);
}
