//! Subsumption pruning and CQ minimization preserve answers while shrinking
//! reformulations (the EDBT'13 cleanup passes).

use rdfref::core::answer::{AnswerOptions, Database, Strategy};
use rdfref::core::reformulate::{reformulate_ucq, ReformulationLimits, RewriteContext};
use rdfref::datagen::lubm::{generate, LubmConfig};
use rdfref::datagen::queries;
use rdfref::query::containment::{minimize, prune_subsumed, subsumes};

#[test]
fn pruned_reformulations_answer_identically() {
    let ds = generate(&LubmConfig::default());
    let db = Database::builder().build(ds.graph.clone());
    let plain = AnswerOptions::default();
    let pruned = AnswerOptions::new().with_limits(
        ReformulationLimits::new()
            .with_max_cqs(500_000)
            .with_prune_subsumed_below(10_000),
    );
    for nq in queries::lubm_mix(&ds).unwrap() {
        if nq.name == "Q09" {
            continue; // 6 atoms: UCQ is slow in debug builds; covered below
        }
        let a = db.run_query(&nq.cq, &Strategy::RefUcq, &plain).unwrap();
        let b = db.run_query(&nq.cq, &Strategy::RefUcq, &pruned).unwrap();
        assert_eq!(a.rows(), b.rows(), "{} diverged under pruning", nq.name);
        assert!(
            b.explain.reformulation_cqs <= a.explain.reformulation_cqs,
            "{}: pruning must not grow the union",
            nq.name
        );
    }
}

#[test]
fn pruning_shrinks_hierarchy_heavy_unions() {
    // A class query over the geo chain: every level-k atom is subsumed by…
    // nothing (different constants), but the *class-variable* query over the
    // sweep ontology with domains produces genuinely redundant members.
    let ds = rdfref::datagen::onto_sweep::generate(&rdfref::datagen::onto_sweep::SweepConfig {
        class_depth: 3,
        class_fanout: 2,
        property_depth: 2,
        instances_per_leaf: 2,
        edges_per_instance: 1,
        ..rdfref::datagen::onto_sweep::SweepConfig::default()
    });
    let db = Database::builder().build(ds.graph.clone());
    let ctx = RewriteContext::new(db.schema(), db.closure());
    let x = rdfref::query::Var::new("x");
    let q = rdfref::query::Cq::new(
        vec![x.clone()],
        vec![rdfref::query::ast::Atom::new(
            x.clone(),
            rdfref::model::dictionary::ID_RDF_TYPE,
            ds.root_class,
        )],
    )
    .unwrap();
    let plain = reformulate_ucq(&q, &ctx, ReformulationLimits::default()).unwrap();
    let pruned = reformulate_ucq(
        &q,
        &ctx,
        ReformulationLimits::new()
            .with_max_cqs(500_000)
            .with_prune_subsumed_below(10_000),
    )
    .unwrap();
    // (x τ Thing) unions (x related f) via the domain of `related`, and each
    // sub-property pk contributes (x pk f) — all subsumed by the
    // variable-property…no: distinct constants. But the *domain* rewrites of
    // sub-properties repeat the same shape with different properties, none
    // subsumed. The guaranteed redundancy: minimize/prune never grows.
    assert!(pruned.len() <= plain.len());
    // And manual redundancy is caught:
    let with_dup = rdfref::query::Ucq::new(
        plain
            .cqs
            .iter()
            .cloned()
            .chain(plain.cqs.iter().cloned())
            .collect(),
    )
    .unwrap();
    assert_eq!(prune_subsumed(with_dup).len(), plain.len());
}

#[test]
fn minimization_agrees_with_subsumption() {
    // For every reformulated member of a LUBM query: minimize() yields an
    // equivalent CQ (mutual subsumption) of at most the original size.
    let ds = generate(&LubmConfig::default());
    let db = Database::builder().build(ds.graph.clone());
    let ctx = RewriteContext::new(db.schema(), db.closure());
    let q = queries::lubm_mix(&ds)
        .unwrap()
        .into_iter()
        .find(|nq| nq.name == "Q02")
        .unwrap()
        .cq;
    let ucq = reformulate_ucq(&q, &ctx, ReformulationLimits::default()).unwrap();
    for cq in &ucq.cqs {
        let m = minimize(cq);
        assert!(m.size() <= cq.size());
        assert!(subsumes(&m, cq) && subsumes(cq, &m));
    }
}
