//! Property-based tests of the workspace-wide invariants, on random graphs,
//! random RDFS schemas and random BGP queries:
//!
//! * `answer(q, G, S) = q(G∞)` for every complete strategy `S` — the
//!   correctness contract of reformulation (§3.1 of the paper);
//! * saturation is idempotent and monotone;
//! * incremental maintenance (insert + DRed delete) equals from-scratch
//!   saturation;
//! * any valid cover yields equivalent answers.

use proptest::prelude::*;
use rdfref::core::answer::{AnswerOptions, Database, Strategy as AnswerStrategy};
use rdfref::core::maintained::MaintainedDatabase;
use rdfref::core::reformulate::{reformulate_ucq, ReformulationLimits, RewriteContext};
use rdfref::model::dictionary::ID_RDF_TYPE;
use rdfref::model::{EncodedTriple, Graph, Term, TermId};
use rdfref::query::ast::{Atom, Cq, PTerm};
use rdfref::query::{Cover, Var};
use rdfref::reasoning::{saturate, IncrementalReasoner};

/// The fixed pools the generators draw from.
struct Pools {
    graph: Graph,
    classes: Vec<TermId>,
    properties: Vec<TermId>,
    individuals: Vec<TermId>,
}

fn pools() -> Pools {
    let mut graph = Graph::new();
    let d = graph.dictionary_mut();
    let classes: Vec<TermId> = (0..5)
        .map(|i| d.intern(&Term::iri(format!("http://t/C{i}"))))
        .collect();
    let properties: Vec<TermId> = (0..3)
        .map(|i| d.intern(&Term::iri(format!("http://t/p{i}"))))
        .collect();
    let individuals: Vec<TermId> = (0..6)
        .map(|i| d.intern(&Term::iri(format!("http://t/i{i}"))))
        .collect();
    Pools {
        graph,
        classes,
        properties,
        individuals,
    }
}

/// A compact, shrinkable description of a test scenario.
#[derive(Debug, Clone)]
struct Scenario {
    subclass: Vec<(usize, usize)>,          // class idx pairs
    subprop: Vec<(usize, usize)>,           // property idx pairs
    domains: Vec<(usize, usize)>,           // (property, class)
    ranges: Vec<(usize, usize)>,            // (property, class)
    type_facts: Vec<(usize, usize)>,        // (individual, class)
    prop_facts: Vec<(usize, usize, usize)>, // (ind, property, ind)
    query_atoms: Vec<QAtom>,
}

#[derive(Debug, Clone)]
enum QAtom {
    /// (subject var id, class idx or var)
    Type(u8, Result<usize, u8>),
    /// (subject var-or-ind, property idx or var, object var-or-ind)
    Prop(Result<usize, u8>, Result<usize, u8>, Result<usize, u8>),
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let pair5 = (0usize..5, 0usize..5);
    let pair3 = (0usize..3, 0usize..3);
    let pc = (0usize..3, 0usize..5);
    let pc2 = pc.clone();
    let type_fact = (0usize..6, 0usize..5);
    let prop_fact = (0usize..6, 0usize..3, 0usize..6);
    let var = 0u8..4;
    let type_atom =
        (0u8..4, prop_or_var(0..5usize, var.clone())).prop_map(|(s, c)| QAtom::Type(s, c));
    let prop_atom = (
        prop_or_var(0..6usize, var.clone()),
        prop_or_var(0..3usize, var.clone()),
        prop_or_var(0..6usize, var),
    )
        .prop_map(|(s, p, o)| QAtom::Prop(s, p, o));
    let atom = prop_oneof![3 => type_atom, 2 => prop_atom];
    (
        proptest::collection::vec(pair5, 0..4),
        proptest::collection::vec(pair3, 0..3),
        proptest::collection::vec(pc, 0..3),
        proptest::collection::vec(pc2, 0..3),
        proptest::collection::vec(type_fact, 0..6),
        proptest::collection::vec(prop_fact, 0..8),
        proptest::collection::vec(atom, 1..3),
    )
        .prop_map(
            |(subclass, subprop, domains, ranges, type_facts, prop_facts, query_atoms)| Scenario {
                subclass,
                subprop,
                domains,
                ranges,
                type_facts,
                prop_facts,
                query_atoms,
            },
        )
}

fn prop_or_var(
    consts: std::ops::Range<usize>,
    vars: std::ops::Range<u8>,
) -> impl Strategy<Value = Result<usize, u8>> {
    prop_oneof![
        2 => consts.prop_map(Ok::<usize, u8>),
        1 => vars.prop_map(Err::<usize, u8>),
    ]
}

fn var_name(v: u8) -> Var {
    Var::new(format!("v{v}"))
}

/// Materialize the scenario into a graph and a query.
fn build(scenario: &Scenario) -> (Graph, Cq) {
    let Pools {
        mut graph,
        classes,
        properties,
        individuals,
    } = pools();
    let sc = graph
        .dictionary_mut()
        .intern(&Term::iri(rdfref::model::vocab::RDFS_SUBCLASSOF));
    let sp = graph
        .dictionary_mut()
        .intern(&Term::iri(rdfref::model::vocab::RDFS_SUBPROPERTYOF));
    let dom = graph
        .dictionary_mut()
        .intern(&Term::iri(rdfref::model::vocab::RDFS_DOMAIN));
    let rng = graph
        .dictionary_mut()
        .intern(&Term::iri(rdfref::model::vocab::RDFS_RANGE));
    for &(a, b) in &scenario.subclass {
        graph.insert_encoded(EncodedTriple::new(classes[a], sc, classes[b]));
    }
    for &(a, b) in &scenario.subprop {
        graph.insert_encoded(EncodedTriple::new(properties[a], sp, properties[b]));
    }
    for &(p, c) in &scenario.domains {
        graph.insert_encoded(EncodedTriple::new(properties[p], dom, classes[c]));
    }
    for &(p, c) in &scenario.ranges {
        graph.insert_encoded(EncodedTriple::new(properties[p], rng, classes[c]));
    }
    for &(i, c) in &scenario.type_facts {
        graph.insert_encoded(EncodedTriple::new(individuals[i], ID_RDF_TYPE, classes[c]));
    }
    for &(s, p, o) in &scenario.prop_facts {
        graph.insert_encoded(EncodedTriple::new(
            individuals[s],
            properties[p],
            individuals[o],
        ));
    }

    let to_pterm_ind = |t: &Result<usize, u8>| match t {
        Ok(i) => PTerm::Const(individuals[*i]),
        Err(v) => PTerm::Var(var_name(*v)),
    };
    let to_pterm_class = |t: &Result<usize, u8>| match t {
        Ok(i) => PTerm::Const(classes[*i]),
        Err(v) => PTerm::Var(var_name(*v)),
    };
    let to_pterm_prop = |t: &Result<usize, u8>| match t {
        Ok(i) => PTerm::Const(properties[*i]),
        Err(v) => PTerm::Var(var_name(*v)),
    };
    let body: Vec<Atom> = scenario
        .query_atoms
        .iter()
        .map(|a| match a {
            QAtom::Type(s, c) => Atom {
                s: PTerm::Var(var_name(*s)),
                p: PTerm::Const(ID_RDF_TYPE),
                o: to_pterm_class(c),
            },
            QAtom::Prop(s, p, o) => Atom {
                s: to_pterm_ind(s),
                p: to_pterm_prop(p),
                o: to_pterm_ind(o),
            },
        })
        .collect();
    // Head: every variable of the body (maximal projection exercises all
    // bindings; projections are covered by the cover-based tests).
    let mut head: Vec<Var> = Vec::new();
    for atom in &body {
        for v in atom.vars() {
            if !head.contains(v) {
                head.push(v.clone());
            }
        }
    }
    // A query with no variables at all is legal (boolean); keep it.
    let cq = Cq::new_unchecked(head.into_iter().map(PTerm::Var).collect(), body);
    (graph, cq)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The central invariant: every complete strategy equals Sat.
    #[test]
    fn all_strategies_compute_certain_answers(scenario in scenario_strategy()) {
        let (graph, cq) = build(&scenario);
        let db = Database::builder().build(graph);
        let opts = AnswerOptions::default();
        let reference = db.run_query(&cq, &AnswerStrategy::Saturation, &opts).unwrap().rows().to_vec();
        for strategy in [
            AnswerStrategy::RefUcq,
            AnswerStrategy::RefScq,
            AnswerStrategy::RefGCov,
            AnswerStrategy::Datalog,
            AnswerStrategy::DatalogMagic,
        ] {
            let got = db.run_query(&cq, &strategy, &opts).unwrap().rows().to_vec();
            prop_assert_eq!(
                &got, &reference,
                "{} diverged on {:?}", strategy.name(), scenario
            );
        }
    }

    /// Any set-partition cover yields the same answers.
    #[test]
    fn all_partition_covers_agree(scenario in scenario_strategy()) {
        let (graph, cq) = build(&scenario);
        let db = Database::builder().build(graph);
        let opts = AnswerOptions::default();
        let reference = db.run_query(&cq, &AnswerStrategy::Saturation, &opts).unwrap().rows().to_vec();
        for cover in Cover::enumerate_partitions(cq.size()) {
            let got = db
                .run_query(&cq, &AnswerStrategy::RefJucq(cover.clone()), &opts)
                .unwrap()
                .rows().to_vec();
            prop_assert_eq!(&got, &reference, "cover {} diverged", cover);
        }
    }

    /// Saturation is idempotent and monotone.
    #[test]
    fn saturation_laws(scenario in scenario_strategy()) {
        let (graph, _) = build(&scenario);
        let once = saturate(&graph);
        prop_assert_eq!(&saturate(&once), &once);
        for t in graph.iter_decoded() {
            prop_assert!(once.contains(&t));
        }
    }

    /// Incremental insert/delete equals from-scratch saturation.
    #[test]
    fn incremental_maintenance_is_correct(
        scenario in scenario_strategy(),
        insert_sel in proptest::collection::vec(any::<bool>(), 30),
        delete_sel in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let (graph, _) = build(&scenario);
        // Start from roughly half the triples (sharing the dictionary);
        // insert the rest incrementally; then delete a random subset.
        let all: Vec<EncodedTriple> = graph.triples().to_vec();
        let mut base = graph.clone();
        let to_insert: Vec<EncodedTriple> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, t)| *t)
            .collect();
        for t in &to_insert {
            base.remove_encoded(*t);
        }

        let mut reasoner = IncrementalReasoner::new(base);
        let batch: Vec<EncodedTriple> = to_insert
            .iter()
            .zip(insert_sel.iter().cycle())
            .filter(|(_, &keep)| keep)
            .map(|(t, _)| *t)
            .collect();
        reasoner.insert(&batch);
        prop_assert_eq!(reasoner.saturated(), &saturate(reasoner.explicit()));

        let deletions: Vec<EncodedTriple> = reasoner
            .explicit()
            .triples()
            .iter()
            .zip(delete_sel.iter().cycle())
            .filter(|(_, &del)| del)
            .map(|(t, _)| *t)
            .collect();
        reasoner.delete(&deletions);
        prop_assert_eq!(reasoner.saturated(), &saturate(reasoner.explicit()));
    }

    /// Plan-cache invalidation is sound under updates: interleave random
    /// insert/delete batches (data *and* schema triples) with cached and
    /// uncached answering — after every mutation the cached plans, the
    /// freshly planned answers and Sat must all agree. A stale plan
    /// surviving an epoch bump would show up as a divergence here.
    #[test]
    fn cache_invalidation_is_sound_under_updates(
        scenario in scenario_strategy(),
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<bool>(), 12)),
            1..4,
        ),
    ) {
        let (graph, cq) = build(&scenario);
        let all: Vec<EncodedTriple> = graph.triples().to_vec();
        let mut db = MaintainedDatabase::new(graph);
        let cached = AnswerOptions::default();
        let uncached = AnswerOptions::new().with_use_cache(false);
        let strategies = [AnswerStrategy::RefUcq, AnswerStrategy::RefGCov];

        // Prime the cache so the mutations below invalidate real entries.
        for strategy in &strategies {
            db.run_query(&cq, strategy, &cached).unwrap();
        }

        for (is_insert, sel) in &ops {
            if *is_insert {
                let batch: Vec<EncodedTriple> = all
                    .iter()
                    .zip(sel.iter().cycle())
                    .filter(|(_, &keep)| keep)
                    .map(|(t, _)| *t)
                    .collect();
                db.insert(&batch);
            } else {
                let batch: Vec<EncodedTriple> = db
                    .explicit()
                    .triples()
                    .iter()
                    .zip(sel.iter().cycle())
                    .filter(|(_, &del)| del)
                    .map(|(t, _)| *t)
                    .collect();
                db.delete(&batch);
            }
            let reference = db.run_query(&cq, &AnswerStrategy::Saturation, &cached).unwrap().rows().to_vec();
            for strategy in &strategies {
                // Twice cached (miss-then-hit path) plus once uncached.
                let first = db.run_query(&cq, strategy, &cached).unwrap().rows().to_vec();
                let second = db.run_query(&cq, strategy, &cached).unwrap().rows().to_vec();
                let fresh = db.run_query(&cq, strategy, &uncached).unwrap().rows().to_vec();
                prop_assert_eq!(
                    &first, &reference,
                    "{} cached diverged after update", strategy.name()
                );
                prop_assert_eq!(&second, &first, "{} hit path diverged", strategy.name());
                prop_assert_eq!(&fresh, &first, "{} uncached diverged", strategy.name());
            }
        }
    }

    /// Reformulated UCQs never lose or invent answers when the schema is
    /// empty of constraints relevant to the query: with no constraints at
    /// all, the reformulation is the identity.
    #[test]
    fn empty_schema_reformulation_is_identity(
        scenario in scenario_strategy(),
    ) {
        let mut s = scenario;
        s.subclass.clear();
        s.subprop.clear();
        s.domains.clear();
        s.ranges.clear();
        let (graph, cq) = build(&s);
        let db = Database::builder().build(graph);
        let ctx = RewriteContext::new(db.schema(), db.closure());
        let ucq = reformulate_ucq(&cq, &ctx, ReformulationLimits::default()).unwrap();
        prop_assert_eq!(ucq.len(), 1);
    }
}
