//! Failure injection: malformed inputs, pathological schemas, resource
//! limits — everything must fail *gracefully* with a typed error (or
//! terminate correctly), never hang or panic.

use rdfref::model::parser::{parse_ntriples, parse_turtle};
use rdfref::model::ModelError;
use rdfref::prelude::*;
use rdfref::query::QueryError;

#[test]
fn malformed_ntriples_report_lines() {
    for (doc, expect_line) in [
        ("<http://s> <http://p>\n", 1),
        (
            "<http://s> <http://p> <http://o> .\n\"lit\" <http://p> <http://o> .\n",
            2,
        ),
        ("<http://s> <http://p> \"unterminated .\n", 1),
    ] {
        match parse_ntriples(doc) {
            Err(ModelError::Syntax { line, .. }) => assert_eq!(line, expect_line, "{doc:?}"),
            other => panic!("expected syntax error for {doc:?}, got {other:?}"),
        }
    }
}

#[test]
fn malformed_turtle_rejected() {
    assert!(parse_turtle("@prefix e: <http://e/> .\ne:a e:b ( 1 ) .").is_err());
    assert!(parse_turtle("e:a e:b e:c .").is_err()); // unknown prefix
    assert!(parse_turtle("@prefix e: <http://e/> .\ne:a e:b").is_err()); // missing dot
}

#[test]
fn malformed_queries_rejected() {
    let mut d = Dictionary::new();
    assert!(matches!(
        parse_select("SELECT ?x WHERE { }", &mut d),
        Err(QueryError::Syntax { .. })
    ));
    assert!(matches!(
        parse_select("SELECT ?missing WHERE { ?x <http://p> ?y }", &mut d),
        Err(QueryError::UnboundHeadVar(_))
    ));
    assert!(matches!(
        parse_select("SELECT ?x WHERE { ?x nope:p ?y }", &mut d),
        Err(QueryError::UnknownPrefix { .. })
    ));
}

#[test]
fn cyclic_subclass_schema_terminates_everywhere() {
    let mut g = parse_turtle(
        r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:C .
ex:C rdfs:subClassOf ex:A .
ex:x a ex:A .
"#,
    )
    .unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?i WHERE { ?i a ex:B }",
        g.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder().build(g);
    let opts = AnswerOptions::default();
    for strategy in [
        Strategy::Saturation,
        Strategy::RefUcq,
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::Datalog,
    ] {
        let a = db.run_query(&q, &strategy, &opts).unwrap();
        assert_eq!(a.len(), 1, "{}", strategy.name());
    }
}

#[test]
fn self_referential_schema_terminates() {
    // c ⊑ c and p ⊑ p: entirely legal RDF, must not loop.
    let mut g = parse_turtle(
        r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:C rdfs:subClassOf ex:C .
ex:p rdfs:subPropertyOf ex:p .
ex:x a ex:C .
ex:x ex:p ex:y .
"#,
    )
    .unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?i WHERE { ?i a ex:C }",
        g.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder().build(g);
    let a = db
        .run_query(&q, &Strategy::RefUcq, &AnswerOptions::default())
        .unwrap();
    assert_eq!(a.len(), 1);
}

#[test]
fn reformulation_size_limit_is_exact_and_typed() {
    let ds = rdfref::datagen::lubm::generate(&rdfref::datagen::lubm::LubmConfig::default());
    let q = rdfref::datagen::queries::example1(&ds, 0).unwrap();
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::new().with_limits(ReformulationLimits::new().with_max_cqs(100));
    match db.run_query(&q, &Strategy::RefUcq, &opts) {
        Err(rdfref::core::CoreError::ReformulationTooLarge { size, limit }) => {
            assert_eq!(limit, 100);
            assert!(size > 100);
        }
        other => panic!("expected ReformulationTooLarge, got {other:?}"),
    }
}

#[test]
fn row_budget_applies_to_every_strategy() {
    let ds = rdfref::datagen::lubm::generate(&rdfref::datagen::lubm::LubmConfig::default());
    let mix = rdfref::datagen::queries::lubm_mix(&ds).unwrap();
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::new().with_row_budget(Some(3));
    // Q06 (all students) overflows a budget of 3 under Sat and Ref alike.
    let q6 = &mix.iter().find(|q| q.name == "Q06").unwrap().cq;
    for strategy in [Strategy::Saturation, Strategy::RefUcq, Strategy::RefScq] {
        let err = db.run_query(q6, &strategy, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                rdfref::core::CoreError::Storage(
                    rdfref::storage::StorageError::RowBudgetExceeded { budget: 3 }
                )
            ),
            "{}: {err}",
            strategy.name()
        );
    }
}

#[test]
fn empty_graph_answers_are_empty_not_errors() {
    let mut g = rdfref::model::Graph::new();
    let q = parse_select(
        "SELECT ?x WHERE { ?x a <http://example.org/C> }",
        g.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder().build(g);
    let opts = AnswerOptions::default();
    for strategy in [
        Strategy::Saturation,
        Strategy::RefUcq,
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::Datalog,
    ] {
        let a = db.run_query(&q, &strategy, &opts).unwrap();
        assert!(a.is_empty(), "{}", strategy.name());
    }
}

#[test]
fn invalid_covers_are_rejected_before_evaluation() {
    use rdfref::query::QueryError;
    // Uncovered atom.
    assert!(matches!(
        Cover::new(vec![vec![0]], 2),
        Err(QueryError::InvalidCover { .. })
    ));
    // Out-of-range atom.
    assert!(matches!(
        Cover::new(vec![vec![0, 7]], 2),
        Err(QueryError::InvalidCover { .. })
    ));
}
