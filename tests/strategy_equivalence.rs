//! Cross-crate answering equivalence on every generated workload:
//! all complete strategies compute `q(G∞)`.

use rdfref::datagen::{biblio, geo, insee, lubm, queries};
use rdfref::model::dictionary::{ID_RDFS_SUBCLASSOF, ID_RDF_TYPE};
use rdfref::prelude::*;
use rdfref::query::ast::Atom;

fn complete_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Saturation,
        Strategy::RefUcq,
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::RefIncomplete(IncompletenessProfile::complete()),
        Strategy::Datalog,
        Strategy::DatalogMagic,
    ]
}

fn check_equivalence(db: &Database, cq: &Cq, label: &str) {
    let opts = AnswerOptions::default();
    let reference = db
        .run_query(cq, &Strategy::Saturation, &opts)
        .unwrap_or_else(|e| panic!("{label}: Sat failed: {e}"))
        .rows()
        .to_vec();
    for strategy in complete_strategies() {
        let got = db
            .run_query(cq, &strategy, &opts)
            .unwrap_or_else(|e| panic!("{label}/{}: failed: {e}", strategy.name()))
            .rows()
            .to_vec();
        assert_eq!(got, reference, "{label}: {} diverged", strategy.name());
    }
    // Plus a couple of non-trivial covers when the query is big enough.
    if cq.size() >= 2 {
        let n = cq.size();
        let halves = Cover::new(vec![(0..n / 2 + 1).collect(), (n / 2..n).collect()], n).unwrap();
        let got = db
            .run_query(cq, &Strategy::RefJucq(halves.clone()), &opts)
            .unwrap_or_else(|e| panic!("{label}/cover {halves}: {e}"))
            .rows()
            .to_vec();
        assert_eq!(got, reference, "{label}: cover {halves} diverged");
    }
}

#[test]
fn lubm_mix_equivalence() {
    let ds = lubm::generate(&lubm::LubmConfig::default());
    let db = Database::builder().build(ds.graph.clone());
    for nq in queries::lubm_mix(&ds).unwrap() {
        check_equivalence(&db, &nq.cq, nq.name);
    }
}

#[test]
fn lubm_example1_equivalence_small() {
    let ds = lubm::generate(&lubm::LubmConfig {
        universities: 1,
        departments_per_university: 2,
        undergraduate_students: 10,
        graduate_students: 4,
        ..lubm::LubmConfig::default()
    });
    let q = queries::example1(&ds, 0).unwrap();
    let db = Database::builder().build(ds.graph.clone());
    // UCQ included: at this tiny schema-independent scale it is still huge,
    // so test SCQ/GCov/covers/Sat/Dat only.
    let opts = AnswerOptions::default();
    let reference = db
        .run_query(&q, &Strategy::Saturation, &opts)
        .unwrap()
        .rows()
        .to_vec();
    for strategy in [
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::RefJucq(queries::example1_paper_cover().unwrap()),
        Strategy::Datalog,
    ] {
        let got = db.run_query(&q, &strategy, &opts).unwrap().rows().to_vec();
        assert_eq!(got, reference, "{} diverged", strategy.name());
    }
}

#[test]
fn biblio_equivalence() {
    let ds = biblio::generate(&biblio::BiblioConfig {
        publications: 300,
        authors: 60,
        ..biblio::BiblioConfig::default()
    });
    let v = &ds.vocab;
    let db = Database::builder().build(ds.graph.clone());
    let author0 = ds
        .graph
        .dictionary()
        .id_of_iri("http://bib.example.org/author/0")
        .unwrap();
    let queries: Vec<(&str, Cq)> = vec![
        (
            "works-of-author",
            Cq::new(
                vec![Var::new("p")],
                vec![
                    Atom::new(Var::new("p"), ID_RDF_TYPE, v.publication),
                    Atom::new(Var::new("p"), v.creator, author0),
                ],
            )
            .unwrap(),
        ),
        (
            "citations-between-articles",
            Cq::new(
                vec![Var::new("a"), Var::new("b")],
                vec![
                    Atom::new(Var::new("a"), ID_RDF_TYPE, v.article),
                    Atom::new(Var::new("a"), v.cites, Var::new("b")),
                    Atom::new(Var::new("b"), ID_RDF_TYPE, v.article),
                ],
            )
            .unwrap(),
        ),
        (
            "typed-creators",
            Cq::new(
                vec![Var::new("p"), Var::new("t"), Var::new("c")],
                vec![
                    Atom::new(Var::new("p"), ID_RDF_TYPE, Var::new("t")),
                    Atom::new(Var::new("p"), v.creator, Var::new("c")),
                ],
            )
            .unwrap(),
        ),
    ];
    for (name, cq) in queries {
        check_equivalence(&db, &cq, name);
    }
}

#[test]
fn geo_deep_hierarchy_equivalence() {
    let ds = geo::generate(&geo::GeoConfig {
        hierarchy_depth: 6,
        areas_per_level: 30,
        seed: 7,
    });
    let db = Database::builder().build(ds.graph.clone());
    let located_in = ds.located_in;
    let queries: Vec<(&str, Cq)> = vec![
        (
            "all-areas",
            Cq::new(
                vec![Var::new("x")],
                vec![Atom::new(Var::new("x"), ID_RDF_TYPE, ds.root_class)],
            )
            .unwrap(),
        ),
        (
            "areas-with-parents",
            Cq::new(
                vec![Var::new("x"), Var::new("y")],
                vec![
                    Atom::new(Var::new("x"), ID_RDF_TYPE, ds.root_class),
                    Atom::new(Var::new("x"), located_in, Var::new("y")),
                ],
            )
            .unwrap(),
        ),
        (
            "subclass-chain-query",
            Cq::new(
                vec![Var::new("c")],
                vec![Atom::new(Var::new("c"), ID_RDFS_SUBCLASSOF, ds.root_class)],
            )
            .unwrap(),
        ),
    ];
    for (name, cq) in queries {
        check_equivalence(&db, &cq, name);
    }
}

#[test]
fn insee_wide_hierarchy_equivalence() {
    let ds = insee::generate(&insee::InseeConfig {
        concepts: 3,
        codes_per_concept: 12,
        observations_per_code: 5,
        seed: 11,
    });
    let db = Database::builder().build(ds.graph.clone());
    let queries: Vec<(&str, Cq)> = vec![
        (
            "all-observations",
            Cq::new(
                vec![Var::new("x")],
                vec![Atom::new(Var::new("x"), ID_RDF_TYPE, ds.observation)],
            )
            .unwrap(),
        ),
        (
            "concept0-measures",
            Cq::new(
                vec![Var::new("x"), Var::new("m")],
                vec![
                    Atom::new(Var::new("x"), ID_RDF_TYPE, ds.concept_classes[0]),
                    Atom::new(Var::new("x"), ds.measure, Var::new("m")),
                ],
            )
            .unwrap(),
        ),
    ];
    for (name, cq) in queries {
        check_equivalence(&db, &cq, name);
    }
}

/// Parallel union evaluation returns exactly the sequential answers.
#[test]
fn parallel_unions_match_sequential() {
    let ds = lubm::generate(&lubm::LubmConfig::default());
    let db = Database::builder().build(ds.graph.clone());
    let sequential = AnswerOptions::default();
    let parallel = AnswerOptions::new().with_parallelism(Parallelism::Unions);
    for nq in queries::lubm_mix(&ds).unwrap() {
        if nq.name == "Q09" {
            continue; // large UCQ; covered by the others
        }
        let a = db
            .run_query(&nq.cq, &Strategy::RefUcq, &sequential)
            .unwrap();
        let b = db.run_query(&nq.cq, &Strategy::RefUcq, &parallel).unwrap();
        assert_eq!(a.rows(), b.rows(), "{}", nq.name);
    }
}

/// The incomplete profiles form a monotone lattice of answer sets:
/// none ⊆ subclass-only ⊆ hierarchies-only ⊆ complete.
#[test]
fn incomplete_profiles_are_monotone() {
    let ds = lubm::generate(&lubm::LubmConfig::default());
    let db = Database::builder().build(ds.graph.clone());
    let opts = AnswerOptions::default();
    for nq in queries::lubm_mix(&ds).unwrap() {
        let counts: Vec<usize> = [
            IncompletenessProfile::none(),
            IncompletenessProfile::subclass_only(),
            IncompletenessProfile::hierarchies_only(),
            IncompletenessProfile::complete(),
        ]
        .into_iter()
        .map(|p| {
            db.run_query(&nq.cq, &Strategy::RefIncomplete(p), &opts)
                .unwrap()
                .len()
        })
        .collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "{}: counts {:?} not monotone",
            nq.name,
            counts
        );
        let complete = db
            .run_query(&nq.cq, &Strategy::Saturation, &opts)
            .unwrap()
            .len();
        assert_eq!(counts[3], complete, "{}", nq.name);
    }
}
