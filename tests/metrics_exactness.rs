//! Metrics exactness: the observability layer must report *exact* span and
//! counter values for a fixed micro-workload, not merely non-zero ones.
//! Each test uses a fresh `MetricsRegistry` per request (via
//! `QueryRequest::collect_metrics`), so counts are attributable to a single
//! answering call.

use rdfref::prelude::*;
use rdfref_model::parser::parse_turtle;
use std::sync::Arc;

const DOC: &str = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:Book rdfs:subClassOf ex:Publication .
ex:Journal rdfs:subClassOf ex:Publication .
ex:writtenBy rdfs:domain ex:Book .
ex:doi1 a ex:Book .
ex:doi2 a ex:Journal .
ex:doi3 ex:writtenBy ex:author1 .
"#;

fn setup() -> (Database, Cq) {
    let mut g = parse_turtle(DOC).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Publication }",
        g.dictionary_mut(),
    )
    .unwrap();
    (Database::builder().build(g), q)
}

fn run_with_registry(db: &Database, q: &Cq, strategy: Strategy) -> (usize, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new());
    let answer = db
        .query(q)
        .strategy(strategy)
        .collect_metrics(&registry)
        .run()
        .unwrap();
    (answer.len(), registry)
}

#[test]
fn every_strategy_records_exactly_one_answer_span() {
    let (db, q) = setup();
    for strategy in [
        Strategy::Saturation,
        Strategy::RefUcq,
        Strategy::RefScq,
        Strategy::RefGCov,
        Strategy::Datalog,
        Strategy::DatalogMagic,
    ] {
        let name = strategy.name().to_string();
        let (n, registry) = run_with_registry(&db, &q, strategy);
        assert_eq!(n, 3, "{name}: answer count");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("answer.calls"), 1, "{name}: answer.calls");
        assert_eq!(snap.span_count("answer"), 1, "{name}: answer span");
    }
}

#[test]
fn reformulation_strategies_record_exactly_one_plan_span() {
    let (db, q) = setup();
    for (strategy, plan_span) in [
        (Strategy::RefUcq, "answer.plan.ucq"),
        (Strategy::RefScq, "answer.plan.scq"),
        (Strategy::RefGCov, "answer.plan.gcov"),
    ] {
        let name = strategy.name().to_string();
        let (_, registry) = run_with_registry(&db, &q, strategy);
        let snap = registry.snapshot();
        assert_eq!(snap.span_count("answer.plan"), 1, "{name}: answer.plan");
        assert_eq!(snap.span_count(plan_span), 1, "{name}: {plan_span}");
    }
}

#[test]
fn gcov_search_records_the_explored_cover_space() {
    let (db, q) = setup();
    let (_, registry) = run_with_registry(&db, &q, Strategy::RefGCov);
    let snap = registry.snapshot();
    assert_eq!(snap.span_count("gcov.search"), 1);
    // A single-atom query has exactly one cover to explore, and on this
    // micro-graph it is feasible.
    assert_eq!(snap.counter("gcov.covers_explored"), 1);
    assert_eq!(snap.counter("gcov.covers_infeasible"), 0);
}

#[test]
fn plan_cache_counters_are_exact_across_repeated_calls() {
    let (db, q) = setup();
    let registry = Arc::new(MetricsRegistry::new());
    for _ in 0..3 {
        db.query(&q)
            .strategy(Strategy::RefUcq)
            .collect_metrics(&registry)
            .run()
            .unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("plan_cache.miss"), 1, "first call misses");
    assert_eq!(snap.counter("plan_cache.hit"), 2, "later calls hit");
    assert_eq!(snap.counter("answer.calls"), 3);
    assert_eq!(snap.span_count("answer"), 3);
    // Only the miss computes a plan; hits skip straight to evaluation.
    assert_eq!(snap.span_count("answer.plan.ucq"), 1);
}

#[test]
fn disabling_the_cache_recomputes_the_plan_every_call() {
    let (db, q) = setup();
    let registry = Arc::new(MetricsRegistry::new());
    for _ in 0..2 {
        db.query(&q)
            .strategy(Strategy::RefUcq)
            .use_cache(false)
            .collect_metrics(&registry)
            .run()
            .unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("plan_cache.hit"), 0);
    assert_eq!(snap.counter("plan_cache.miss"), 0);
    assert_eq!(snap.span_count("answer.plan.ucq"), 2);
}

#[test]
fn operator_counters_are_exact_for_saturation() {
    let (db, q) = setup();
    // Warm saturation outside the measured request so the counters cover
    // only query evaluation.
    db.prepare_saturation();
    let (n, registry) = run_with_registry(&db, &q, Strategy::Saturation);
    assert_eq!(n, 3);
    let snap = registry.snapshot();
    // Sat evaluates the single-atom query as one scan over the saturated
    // store: one scan operator, one row per answer.
    assert_eq!(snap.counter("op.scan.count"), 1);
    assert_eq!(snap.counter("op.scan.rows"), 3);
    assert_eq!(snap.counter("op.join.count"), 0);
    assert_eq!(snap.span_count("eval.cq"), 1);
}

#[test]
fn operator_counters_are_exact_for_ref_ucq() {
    let (db, q) = setup();
    let (n, registry) = run_with_registry(&db, &q, Strategy::RefUcq);
    assert_eq!(n, 3);
    let snap = registry.snapshot();
    // The UCQ reformulation of `?x a ex:Publication` under two subclass
    // constraints has three disjuncts (Publication, Book, Journal), each a
    // single-atom CQ answered by one scan: Publication scans 0 explicit
    // rows, Book and Journal scan 1 each, plus the writtenBy-domain
    // disjunct if the schema contributes one.
    assert_eq!(snap.span_count("eval.ucq"), 1);
    let scans = snap.counter("op.scan.count");
    let per_cq = snap.span_count("eval.cq");
    assert_eq!(scans, per_cq, "single-atom disjuncts: one scan per CQ");
    assert_eq!(snap.counter("op.union.rows"), 3);
    assert_eq!(snap.counter("op.join.count"), 0);
}

#[test]
fn operator_counters_are_exact_for_ref_gcov() {
    let (db, q) = setup();
    let (n, registry) = run_with_registry(&db, &q, Strategy::RefGCov);
    assert_eq!(n, 3);
    let snap = registry.snapshot();
    // A single-atom query has one fragment; GCov evaluates it as one UCQ.
    assert_eq!(snap.span_count("eval.jucq"), 1);
    assert_eq!(snap.counter("op.union.rows"), 3);
    assert_eq!(snap.counter("op.budget_abort"), 0);
}

/// A 6-deep subclass chain with one instance per level. Classic
/// reformulation of `?x a ex:K5` (the root) is a 6-way union; the interval
/// encoder covers the whole chain, so the same query must execute as exactly
/// one range scan and zero classic scans.
fn chain_setup(encoding: rdfref_model::DictEncoding) -> (Database, Cq) {
    let mut doc = String::from(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         @prefix ex: <http://example.org/> .\n",
    );
    for i in 0..5 {
        doc.push_str(&format!("ex:K{i} rdfs:subClassOf ex:K{} .\n", i + 1));
    }
    for i in 0..6 {
        doc.push_str(&format!("ex:k{i} a ex:K{i} .\n"));
    }
    let mut g = parse_turtle(&doc).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:K5 }",
        g.dictionary_mut(),
    )
    .unwrap();
    (Database::builder().encoding(encoding).build(g), q)
}

#[test]
fn interval_reformulation_replaces_n_scans_with_one_range_scan() {
    let (classic_db, q) = chain_setup(rdfref_model::DictEncoding::Classic);
    let (n, registry) = run_with_registry(&classic_db, &q, Strategy::RefUcq);
    assert_eq!(n, 6);
    let snap = registry.snapshot();
    // One disjunct (hence one scan) per class on the chain.
    assert_eq!(snap.counter("op.scan.count"), 6, "classic: N-way union");
    assert_eq!(snap.counter("op.range_scan.count"), 0);

    let (interval_db, q) = chain_setup(rdfref_model::DictEncoding::Interval);
    let (n, registry) = run_with_registry(&interval_db, &q, Strategy::RefUcq);
    assert_eq!(n, 6, "interval answers match classic");
    let snap = registry.snapshot();
    // The covered chain compresses to a single `type ∈ [lo,hi)` atom.
    assert_eq!(snap.counter("op.range_scan.count"), 1, "one range scan");
    assert_eq!(snap.counter("op.range_scan.rows"), 6, "all six instances");
    assert_eq!(snap.counter("op.scan.count"), 0, "no classic scans remain");
    assert_eq!(snap.span_count("eval.cq"), 1, "single disjunct");
}

#[test]
fn interval_dag_fallback_still_unions() {
    // Diamond: ex:A has two parents, so the secondary parent ex:C is not
    // interval-covered and its reformulation must stay a classic union.
    let doc = "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
               @prefix ex: <http://example.org/> .\n\
               ex:A rdfs:subClassOf ex:B .\n\
               ex:A rdfs:subClassOf ex:C .\n\
               ex:B rdfs:subClassOf ex:Top .\n\
               ex:C rdfs:subClassOf ex:Top .\n\
               ex:a0 a ex:A .\nex:c0 a ex:C .\n";
    let mut g = parse_turtle(doc).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:C }",
        g.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder()
        .encoding(rdfref_model::DictEncoding::Interval)
        .build(g);
    let (n, registry) = run_with_registry(&db, &q, Strategy::RefUcq);
    assert_eq!(n, 2);
    let snap = registry.snapshot();
    // Two disjuncts (C, A), each one classic scan; no range compression.
    assert_eq!(
        snap.counter("op.range_scan.count"),
        0,
        "fallback: no ranges"
    );
    assert_eq!(snap.counter("op.scan.count"), 2, "union of C and A scans");
    assert_eq!(snap.counter("op.union.rows"), 2);
}

#[test]
fn parallel_union_workers_record_into_one_registry_without_loss() {
    // 20 subclasses push the UCQ reformulation past the 16-disjunct
    // threshold that turns on parallel union evaluation.
    let mut doc = String::from(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         @prefix ex: <http://example.org/> .\n",
    );
    for i in 0..20 {
        doc.push_str(&format!(
            "ex:C{i} rdfs:subClassOf ex:Top .\nex:inst{i} a ex:C{i} .\n"
        ));
    }
    let mut g = parse_turtle(&doc).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Top }",
        g.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder().build(g);
    let registry = Arc::new(MetricsRegistry::new());
    let answer = db
        .query(&q)
        .strategy(Strategy::RefUcq)
        .parallelism(Parallelism::Unions)
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.len(), 20);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("union.parallel.unions"), 1);
    let workers = snap.counter("union.parallel.workers");
    assert!(workers >= 1);
    // Every worker reports its busy time exactly once.
    let busy = snap.histogram("union.worker.busy_us").expect("histogram");
    assert_eq!(busy.count, workers);
    // No rows are lost on the parallel path.
    assert_eq!(snap.counter("op.union.rows"), 20);
}

#[test]
fn morsel_scan_counters_are_exact_for_saturation() {
    let (db, q) = setup();
    db.prepare_saturation();
    let registry = Arc::new(MetricsRegistry::new());
    let answer = db
        .query(&q)
        .strategy(Strategy::Saturation)
        .parallelism(Parallelism::Morsels { size: 2 })
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.len(), 3);
    let snap = registry.snapshot();
    // One scan over the saturated store stages its 3 matching rows and, at
    // morsel size 2, claims exactly ⌈3/2⌉ = 2 morsels.
    assert_eq!(snap.counter("op.scan.count"), 1);
    assert_eq!(snap.counter("op.scan.rows"), 3);
    assert_eq!(snap.counter("op.morsel.count"), 2);
    assert_eq!(snap.counter("op.morsel.rows"), 3);
    let workers = snap.counter("op.morsel.workers");
    assert!(
        (1..=2).contains(&workers),
        "workers {workers} not in 1..=morsel count"
    );
}

#[test]
fn morsel_ref_ucq_counters_account_every_scan_without_row_loss() {
    let (db, q) = setup();
    let sequential = db.query(&q).strategy(Strategy::RefUcq).run().unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let answer = db
        .query(&q)
        .strategy(Strategy::RefUcq)
        .parallelism(Parallelism::Morsels { size: 1 })
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.rows(), sequential.rows(), "morsels change no rows");
    let snap = registry.snapshot();
    // Every disjunct of the UCQ is a single-atom CQ scanning ≤1 explicit
    // row, so at morsel size 1 each scan claims exactly one morsel (empty
    // scans still claim their mandatory empty morsel) and the staged rows
    // are exactly the scanned rows.
    let scans = snap.counter("op.scan.count");
    assert!(scans >= 3, "at least one scan per subclass disjunct");
    assert_eq!(snap.counter("op.morsel.count"), scans);
    assert_eq!(snap.counter("op.morsel.rows"), snap.counter("op.scan.rows"));
    assert_eq!(snap.counter("op.union.rows"), 3);
}

/// One planted triangle plus an open wedge. The leapfrog triejoin must
/// report *exact* operator counters for this fixed shape.
fn triangle_setup() -> (Database, Cq) {
    let doc = "@prefix ex: <http://example.org/> .\n\
               ex:a ex:knows ex:b .\n\
               ex:b ex:knows ex:c .\n\
               ex:a ex:knows ex:c .\n\
               ex:a ex:knows ex:d .\n\
               ex:d ex:knows ex:e .\n";
    let mut g = parse_turtle(doc).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x ?y ?z WHERE { \
         ?x ex:knows ?y . ?y ex:knows ?z . ?x ex:knows ?z }",
        g.dictionary_mut(),
    )
    .unwrap();
    (Database::builder().build(g), q)
}

#[test]
fn lfj_counters_are_exact_for_a_fixed_triangle() {
    let (db, q) = triangle_setup();
    let registry = Arc::new(MetricsRegistry::new());
    let answer = db
        .query(&q)
        .strategy(Strategy::RefUcq)
        .join_algorithm(JoinAlgorithm::Wcoj)
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.len(), 1, "only the planted (a,b,c) triangle");
    let snap = registry.snapshot();
    // Three atoms participate in the single leapfrog evaluation, emitting
    // exactly the one triangle row before dedup.
    assert_eq!(snap.counter("op.lfj.atoms"), 3);
    assert_eq!(snap.counter("op.lfj.rows"), 1);
    // The seek/next trace over this 5-edge graph is deterministic: sorted
    // runs are fixed by the dictionary order of a..e, so the probe counts
    // are exact, not merely positive.
    assert_eq!(snap.counter("op.lfj.seeks"), 36);
    assert_eq!(snap.counter("op.lfj.next"), 6);
    // The classic join operators stay silent — WCOJ replaced them.
    assert_eq!(snap.counter("op.join.count"), 0);
    assert_eq!(snap.span_count("eval.cq"), 1);
}

#[test]
fn lfj_is_inherited_from_the_engine_default() {
    // The builder-level knob is the request default, exactly like
    // `Parallelism`: a Wcoj engine default makes a plain request leapfrog.
    let doc = "@prefix ex: <http://example.org/> .\n\
               ex:a ex:knows ex:b .\n\
               ex:b ex:knows ex:c .\n\
               ex:a ex:knows ex:c .\n";
    let mut g = parse_turtle(doc).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x ?y ?z WHERE { \
         ?x ex:knows ?y . ?y ex:knows ?z . ?x ex:knows ?z }",
        g.dictionary_mut(),
    )
    .unwrap();
    let db = EngineBuilder::new()
        .join_algorithm(JoinAlgorithm::Wcoj)
        .build(g);
    let registry = Arc::new(MetricsRegistry::new());
    let answer = db
        .query(&q)
        .strategy(Strategy::RefUcq)
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.len(), 1);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("op.lfj.atoms"), 3, "engine default applied");
    assert_eq!(snap.counter("op.join.count"), 0);
}

/// The `Auto` × `RangeScan` interaction: on an interval-encoded chain the
/// type atom reformulates to a single `type ∈ [lo,hi)` range atom, which
/// the leapfrog plan consumes as ONE range-bounded trie level inside ONE
/// CQ — where the classic encoding must leapfrog once per disjunct of a
/// six-way union.
fn chain_join_setup(encoding: rdfref_model::DictEncoding) -> (Database, Cq) {
    let mut doc = String::from(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         @prefix ex: <http://example.org/> .\n",
    );
    for i in 0..5 {
        doc.push_str(&format!("ex:K{i} rdfs:subClassOf ex:K{} .\n", i + 1));
    }
    for i in 0..6 {
        doc.push_str(&format!("ex:k{i} a ex:K{i} .\nex:k{i} ex:p ex:v{i} .\n"));
    }
    let mut g = parse_turtle(&doc).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x ?y WHERE { \
         ?x a ex:K5 . ?x ex:p ?y }",
        g.dictionary_mut(),
    )
    .unwrap();
    (Database::builder().encoding(encoding).build(g), q)
}

#[test]
fn lfj_range_atom_is_one_bounded_trie_level_not_a_union() {
    let (classic_db, q) = chain_join_setup(rdfref_model::DictEncoding::Classic);
    let registry = Arc::new(MetricsRegistry::new());
    let answer = classic_db
        .query(&q)
        .strategy(Strategy::RefUcq)
        .join_algorithm(JoinAlgorithm::Wcoj)
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.len(), 6);
    let snap = registry.snapshot();
    // Classic: one 2-atom leapfrog per disjunct of the 6-way union.
    assert_eq!(snap.span_count("eval.cq"), 6, "classic: N-way union");
    assert_eq!(snap.counter("op.lfj.atoms"), 12, "2 atoms × 6 disjuncts");
    assert_eq!(snap.counter("op.lfj.rows"), 6);

    let (interval_db, q) = chain_join_setup(rdfref_model::DictEncoding::Interval);
    let registry = Arc::new(MetricsRegistry::new());
    let answer = interval_db
        .query(&q)
        .strategy(Strategy::RefUcq)
        .join_algorithm(JoinAlgorithm::Wcoj)
        .collect_metrics(&registry)
        .run()
        .unwrap();
    assert_eq!(answer.len(), 6, "interval answers match classic");
    let snap = registry.snapshot();
    // Interval: the covered chain compresses to one range atom, so the
    // whole query is ONE leapfrog evaluation whose type atom is a single
    // range-bounded trie level — not six point-lookup disjuncts.
    assert_eq!(snap.span_count("eval.cq"), 1, "single disjunct");
    assert_eq!(snap.counter("op.lfj.atoms"), 2, "one bounded level + join");
    assert_eq!(
        snap.counter("op.lfj.rows"),
        6,
        "all six instances in one pass"
    );
    assert_eq!(snap.counter("op.scan.count"), 0, "no classic scans");
}

#[test]
fn registry_loses_no_increments_under_concurrency() {
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 10_000;
    let registry = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let recorder: Arc<dyn rdfref_obs::Recorder> = registry as _;
                let obs = Obs::collecting(recorder);
                for _ in 0..INCREMENTS {
                    obs.add("test.counter", 1);
                    let _guard = obs.span("test.span");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("test.counter"), THREADS as u64 * INCREMENTS);
    assert_eq!(snap.span_count("test.span"), THREADS as u64 * INCREMENTS);
}

#[test]
fn concurrent_requests_against_one_registry_account_every_call() {
    const THREADS: usize = 4;
    const CALLS: usize = 25;
    let (db, q) = setup();
    let db = Arc::new(db);
    let registry = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = Arc::clone(&db);
            let registry = Arc::clone(&registry);
            let q = q.clone();
            std::thread::spawn(move || {
                for _ in 0..CALLS {
                    db.query(&q)
                        .strategy(Strategy::RefGCov)
                        .collect_metrics(&registry)
                        .run()
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    let expected = (THREADS * CALLS) as u64;
    assert_eq!(snap.counter("answer.calls"), expected);
    assert_eq!(snap.span_count("answer"), expected);
}
