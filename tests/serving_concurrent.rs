//! Snapshot isolation under live maintenance: N reader threads hammer a
//! [`ServingDatabase`] while the writer churns insert/delete batches.
//!
//! The invariants, per read:
//!
//! * the answer carries a snapshot stamp (`explain.snapshot`) and every
//!   strategy run against the *same* snapshot reports the *same* stamp —
//!   no torn (graph, saturation, epoch) state;
//! * the rows equal the reference answer for exactly that snapshot's
//!   prefix of applied batches (the churn is designed so that every seq
//!   has a distinct answer set);
//! * per reader thread, observed seqs never go backwards (publication is
//!   monotonic and the thread-local snapshot cache only moves forward);
//! * readers never block on the writer: they run to completion even while
//!   batches are continuously applied.

use rdfref::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const READERS: usize = 4;
const BATCHES: u64 = 40;

const BASE: &str = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:Book rdfs:subClassOf ex:Publication .
ex:writtenBy rdfs:domain ex:Book .
ex:doi1 a ex:Book .
"#;

fn iri(name: &str) -> Term {
    Term::iri(format!("http://example.org/{name}"))
}

fn type_triple(name: &str) -> Triple {
    Triple::new(
        iri(name),
        Term::iri(rdfref::model::vocab::RDF_TYPE),
        iri("Book"),
    )
    .unwrap()
}

/// The expected `?x a ex:Publication` answer at snapshot seq `s`.
///
/// Batch `i` (1-based) inserts `inst{i}` when `i` is odd and deletes
/// `inst{i-1}` when `i` is even, so `inst{s}` is present exactly at the
/// odd seq `s` — every seq has a distinct answer set, which makes
/// prefix-consistency checkable from the stamp alone.
fn expected(seq: u64) -> BTreeSet<String> {
    let mut rows = BTreeSet::new();
    rows.insert("<http://example.org/doi1>".to_string());
    if seq % 2 == 1 {
        rows.insert(format!("<http://example.org/inst{seq}>"));
    }
    rows
}

fn answer_set(snapshot: &Snapshot, answer: &QueryAnswer) -> BTreeSet<String> {
    answer
        .decoded(snapshot.dictionary())
        .into_iter()
        .map(|row| {
            assert_eq!(row.len(), 1);
            row[0].to_string()
        })
        .collect()
}

#[test]
fn readers_see_prefix_consistent_snapshots_under_churn() {
    let mut graph = rdfref::model::parser::parse_turtle(BASE).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Publication }",
        graph.dictionary_mut(),
    )
    .unwrap();
    let db = Arc::new(Database::builder().build_serving(graph));
    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..READERS {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            let q = q.clone();
            handles.push(scope.spawn(move || {
                let mut last_seq = 0u64;
                // Alternate the second strategy so reformulation caching and
                // cost-based planning both race with publication.
                let strategies = [Strategy::RefUcq, Strategy::RefGCov];
                let mut iteration = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = db.snapshot();
                    let seq = snap.seq();
                    assert!(
                        seq >= last_seq,
                        "reader {reader}: seq went backwards ({last_seq} -> {seq})"
                    );
                    last_seq = seq;

                    let sat = snap.query(&q).strategy(Strategy::Saturation).run().unwrap();
                    let alt = snap
                        .query(&q)
                        .strategy(strategies[iteration % 2].clone())
                        .run()
                        .unwrap();
                    iteration += 1;

                    // Both answers are stamped with the snapshot they ran on.
                    assert_eq!(sat.explain.snapshot, Some(snap.info()));
                    assert_eq!(alt.explain.snapshot, Some(snap.info()));

                    // And both equal the reference for exactly that prefix.
                    let sat_rows = answer_set(&snap, &sat);
                    let alt_rows = answer_set(&snap, &alt);
                    assert_eq!(
                        sat_rows,
                        expected(seq),
                        "reader {reader}: Sat diverged from prefix {seq}"
                    );
                    assert_eq!(
                        alt_rows, sat_rows,
                        "reader {reader}: strategies tore on one snapshot (seq {seq})"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                    // One final iteration after the writer finishes so the
                    // terminal state is observed too.
                    if finished {
                        break;
                    }
                }
            }));
        }

        // The writer: one batch at a time, waiting on each ticket so that
        // seq k is published before batch k+1 is built.
        for i in 1..=BATCHES {
            let batch = if i % 2 == 1 {
                UpdateBatch::new().insert(type_triple(&format!("inst{i}")))
            } else {
                UpdateBatch::new().delete(type_triple(&format!("inst{}", i - 1)))
            };
            let report = db.submit(batch).unwrap().wait().unwrap();
            assert_eq!(report.seq(), i);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
    });

    assert!(
        reads.load(Ordering::Relaxed) >= READERS as u64,
        "every reader must complete at least one read"
    );
    assert_eq!(db.published_seq(), BATCHES);
    let terminal = db.snapshot();
    assert_eq!(terminal.seq(), BATCHES);
    let ans = terminal
        .query(&q)
        .strategy(Strategy::Saturation)
        .run()
        .unwrap();
    assert_eq!(answer_set(&terminal, &ans), expected(BATCHES));
}

/// Tickets resolve after publication: a reader that waited on a batch's
/// ticket immediately sees (at least) that batch's state — read-your-writes
/// through the snapshot cell, from a plain `&self` handle.
#[test]
fn ticket_wait_gives_read_your_writes() {
    let mut graph = rdfref::model::parser::parse_turtle(BASE).unwrap();
    let q = parse_select(
        "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Publication }",
        graph.dictionary_mut(),
    )
    .unwrap();
    let db = Database::builder().build_serving(graph);
    for i in 1..=6u64 {
        let t = type_triple(&format!("rw{i}"));
        let report = db.insert(vec![t]).unwrap().wait().unwrap();
        let snap = db.snapshot();
        assert!(
            snap.seq() >= report.seq(),
            "snapshot after wait() is older than the acknowledged batch"
        );
        let ans = snap.query(&q).strategy(Strategy::RefUcq).run().unwrap();
        // doi1 + rw1..=rwi are all Books ⟹ Publications.
        assert_eq!(ans.len(), 1 + i as usize);
    }
}
