//! Snapshot-isolation property test: under randomly generated interleavings
//! of insert/delete batches and reads, every read against a
//! [`ServingDatabase`] equals answering over *some prefix* of the applied
//! batches — the prefix named by the answer's snapshot stamp — and the
//! complete strategies (Sat and cost-based GCov) agree on every snapshot.
//!
//! Two submission modes are exercised:
//!
//! * **acknowledged** — the writer waits on each ticket, so each read's
//!   stamp must equal the just-acknowledged prefix exactly;
//! * **flooded** — all batches are submitted before any read; the pipeline
//!   coalesces them freely, and each read's stamp names whatever prefix got
//!   published, which the reference must reproduce.
//!
//! Run with `--features strict-invariants` to add the store/saturation
//! length cross-checks inside the maintenance pipeline itself.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use rdfref::core::answer::Strategy as AnswerStrategy;
use rdfref::model::vocab;
use rdfref::prelude::*;
use std::collections::BTreeSet;

const INDIVIDUALS: usize = 4;
const CLASSES: usize = 3;

/// One update: insert (`true`) or delete a `(individual, class)` type fact.
type Op = (bool, usize, usize);

fn ind(i: usize) -> Term {
    Term::iri(format!("http://t/i{i}"))
}

fn class(c: usize) -> Term {
    Term::iri(format!("http://t/C{c}"))
}

fn type_triple(i: usize, c: usize) -> Triple {
    Triple::new(ind(i), Term::iri(vocab::RDF_TYPE), class(c)).unwrap()
}

/// The fixed schema: C0 ⊑ C1 ⊑ C2, so `?x a C2` requires reformulation
/// (or saturation) to see instances asserted at C0/C1.
fn base_graph() -> Graph {
    let mut g = Graph::new();
    g.insert_triple(&Triple::new(class(0), Term::iri(vocab::RDFS_SUBCLASSOF), class(1)).unwrap());
    g.insert_triple(&Triple::new(class(1), Term::iri(vocab::RDFS_SUBCLASSOF), class(2)).unwrap());
    // One permanent instance so the answer is never trivially empty.
    g.insert_triple(&type_triple(0, 0));
    g
}

fn query(dict: &mut Dictionary) -> Cq {
    parse_select("PREFIX t: <http://t/> SELECT ?x WHERE { ?x a t:C2 }", dict).unwrap()
}

/// Reference model: the set of explicit type facts after a prefix of
/// batches. An [`UpdateBatch`] applies all inserts before all deletes
/// (so a triple both inserted and deleted in one batch ends up absent);
/// inserting an existing fact and deleting a missing one are no-ops in a
/// set-semantics RDF store.
fn apply_prefix(facts: &mut BTreeSet<(usize, usize)>, batch: &[Op]) {
    for &(insert, i, c) in batch {
        if insert {
            facts.insert((i, c));
        }
    }
    for &(insert, i, c) in batch {
        if !insert {
            facts.remove(&(i, c));
        }
    }
}

/// Answer `?x a C2` on the reference model by hand: every individual with
/// any type fact (C0, C1 and C2 all reach C2 through the chain), decoded
/// to IRI strings for dictionary-independent comparison.
fn reference_answer(facts: &BTreeSet<(usize, usize)>) -> BTreeSet<String> {
    facts
        .iter()
        .map(|&(i, _)| format!("<http://t/i{i}>"))
        .collect()
}

fn answer_set(snapshot: &Snapshot, answer: &QueryAnswer) -> BTreeSet<String> {
    answer
        .decoded(snapshot.dictionary())
        .into_iter()
        .map(|row| row[0].to_string())
        .collect()
}

/// Check one snapshot against the prefix its stamp names.
fn check_snapshot(
    snapshot: &Snapshot,
    q: &Cq,
    prefixes: &[BTreeSet<(usize, usize)>],
) -> Result<(), TestCaseError> {
    let seq = snapshot.seq() as usize;
    prop_assert!(
        seq < prefixes.len(),
        "stamp {seq} names a prefix that was never submitted"
    );
    let want = reference_answer(&prefixes[seq]);
    for strategy in [AnswerStrategy::Saturation, AnswerStrategy::RefGCov] {
        let ans = snapshot.query(q).strategy(strategy.clone()).run().unwrap();
        prop_assert_eq!(
            ans.explain.snapshot,
            Some(snapshot.info()),
            "answer not stamped with its snapshot"
        );
        let got = answer_set(snapshot, &ans);
        prop_assert_eq!(
            &got,
            &want,
            "{} diverged from prefix {} ({:?})",
            strategy.name(),
            seq,
            prefixes[seq]
        );
    }
    Ok(())
}

fn batches_strategy() -> impl proptest::strategy::Strategy<Value = Vec<Vec<Op>>> {
    let op = (any::<bool>(), 0..INDIVIDUALS, 0..CLASSES);
    proptest::collection::vec(proptest::collection::vec(op, 0..4), 1..8)
}

/// One schema-churn update: a type fact or a subclass edge, inserted
/// (`true`) or deleted.
#[derive(Debug, Clone)]
enum ChurnOp {
    Type(bool, usize, usize),
    Subclass(bool, usize, usize),
}

const CHURN_CLASSES: usize = 4;

fn subclass_triple(a: usize, b: usize) -> Triple {
    Triple::new(class(a), Term::iri(vocab::RDFS_SUBCLASSOF), class(b)).unwrap()
}

/// Chain C0 ⊑ C1 ⊑ C2 ⊑ C3 — fully interval-covered at the start, then
/// churned into arbitrary shapes (diamonds, cycles, disconnection).
fn churn_base_graph() -> Graph {
    let mut g = Graph::new();
    for i in 0..CHURN_CLASSES - 1 {
        g.insert_triple(&subclass_triple(i, i + 1));
    }
    g.insert_triple(&type_triple(0, 0));
    g
}

fn churn_batches_strategy() -> impl proptest::strategy::Strategy<Value = Vec<Vec<ChurnOp>>> {
    let type_op = (any::<bool>(), 0..INDIVIDUALS, 0..CHURN_CLASSES)
        .prop_map(|(ins, i, c)| ChurnOp::Type(ins, i, c));
    let schema_op = (any::<bool>(), 0..CHURN_CLASSES, 0..CHURN_CLASSES)
        .prop_filter("no self-loop", |(_, a, b)| a != b)
        .prop_map(|(ins, a, b)| ChurnOp::Subclass(ins, a, b));
    let op = prop_oneof![2 => type_op, 1 => schema_op];
    proptest::collection::vec(proptest::collection::vec(op, 0..4), 1..6)
}

/// Distinct data predicates so a sharded database actually spreads triples
/// across predicate-hash partitions (type/subclass alone hit ≤2 shards).
const DATA_PREDS: usize = 5;

fn data_pred(j: usize) -> Term {
    Term::iri(format!("http://t/p{j}"))
}

fn data_triple(i: usize, j: usize, o: usize) -> Triple {
    Triple::new(ind(i), data_pred(j), ind(o)).unwrap()
}

/// One sharded-churn update: a type fact, a subclass edge, or a plain data
/// fact under one of [`DATA_PREDS`] predicates; inserted (`true`) or deleted.
#[derive(Debug, Clone)]
enum ShardOp {
    Type(bool, usize, usize),
    Subclass(bool, usize, usize),
    Data(bool, usize, usize, usize),
}

impl ShardOp {
    fn triple(&self) -> Triple {
        match self {
            ShardOp::Type(_, i, c) => type_triple(*i, *c),
            ShardOp::Subclass(_, a, b) => subclass_triple(*a, *b),
            ShardOp::Data(_, i, j, o) => data_triple(*i, *j, *o),
        }
    }

    fn is_insert(&self) -> bool {
        matches!(
            self,
            ShardOp::Type(true, ..) | ShardOp::Subclass(true, ..) | ShardOp::Data(true, ..)
        )
    }
}

fn shard_batches_strategy() -> impl proptest::strategy::Strategy<Value = Vec<Vec<ShardOp>>> {
    let type_op = (any::<bool>(), 0..INDIVIDUALS, 0..CHURN_CLASSES)
        .prop_map(|(ins, i, c)| ShardOp::Type(ins, i, c));
    let schema_op = (any::<bool>(), 0..CHURN_CLASSES, 0..CHURN_CLASSES)
        .prop_filter("no self-loop", |(_, a, b)| a != b)
        .prop_map(|(ins, a, b)| ShardOp::Subclass(ins, a, b));
    let data_op = (any::<bool>(), 0..INDIVIDUALS, 0..DATA_PREDS, 0..INDIVIDUALS)
        .prop_map(|(ins, i, j, o)| ShardOp::Data(ins, i, j, o));
    let op = prop_oneof![2 => type_op, 1 => schema_op, 2 => data_op];
    proptest::collection::vec(proptest::collection::vec(op, 0..4), 1..6)
}

/// All head columns of an answer, decoded to strings so sharded and
/// single-shard databases (separate dictionaries) compare value-wise.
fn full_rows(snapshot: &Snapshot, answer: &QueryAnswer) -> BTreeSet<Vec<String>> {
    answer
        .decoded(snapshot.dictionary())
        .into_iter()
        .map(|row| row.iter().map(|t| t.to_string()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Acknowledged mode: wait on every ticket, read after every batch.
    /// The read must see exactly the acknowledged prefix.
    #[test]
    fn acknowledged_reads_see_the_exact_prefix(batches in batches_strategy()) {
        let mut graph = base_graph();
        let q = query(graph.dictionary_mut());
        let db = Database::builder().build_serving(graph);

        // prefixes[k] = explicit type facts after k batches.
        let mut prefixes = vec![BTreeSet::from([(0usize, 0usize)])];
        for batch in &batches {
            let mut next = prefixes.last().unwrap().clone();
            apply_prefix(&mut next, batch);
            prefixes.push(next);
        }

        for (k, batch) in batches.iter().enumerate() {
            let mut update = UpdateBatch::new();
            for &(insert, i, c) in batch {
                update = if insert {
                    update.insert(type_triple(i, c))
                } else {
                    update.delete(type_triple(i, c))
                };
            }
            let report = db.submit(update).unwrap().wait().unwrap();
            prop_assert_eq!(report.seq(), (k + 1) as u64);
            let snap = db.snapshot();
            // wait() resolves only after publication, and no other writer
            // exists: the snapshot is exactly the acknowledged prefix.
            prop_assert_eq!(snap.seq(), (k + 1) as u64);
            check_snapshot(&snap, &q, &prefixes)?;
        }
    }

    /// Schema churn under interval encoding: subclass edges come and go, so
    /// every schema-changing batch re-encodes the dictionary and bumps the
    /// schema epoch. Reusing the same `Cq` across epochs is exactly the
    /// stale-plan hazard: a cached plan whose constants live in the previous
    /// encoding must never be served. A classic serving database fed the
    /// identical schedule is the oracle, and Sat-vs-reformulation agreement
    /// on every snapshot cross-checks both.
    #[test]
    fn schema_churn_never_serves_a_stale_interval_plan(batches in churn_batches_strategy()) {
        let mut graph = churn_base_graph();
        let q = parse_select(
            "PREFIX t: <http://t/> SELECT ?x WHERE { ?x a t:C3 }",
            graph.dictionary_mut(),
        )
        .unwrap();
        let interval = Database::builder()
            .encoding(rdfref::model::DictEncoding::Interval)
            .build_serving(graph.clone());
        let classic = Database::builder().build_serving(graph);

        for (k, batch) in batches.iter().enumerate() {
            let build = || {
                let mut update = UpdateBatch::new();
                for op in batch {
                    let t = match op {
                        ChurnOp::Type(_, i, c) => type_triple(*i, *c),
                        ChurnOp::Subclass(_, a, b) => subclass_triple(*a, *b),
                    };
                    let insert = matches!(
                        op,
                        ChurnOp::Type(true, ..) | ChurnOp::Subclass(true, ..)
                    );
                    update = if insert { update.insert(t) } else { update.delete(t) };
                }
                update
            };
            // Read-your-writes: the acknowledged ticket names prefix k+1 and
            // the very next snapshot serves it.
            let report = interval.submit(build()).unwrap().wait().unwrap();
            prop_assert_eq!(report.seq(), (k + 1) as u64);
            classic.submit(build()).unwrap().wait().unwrap();

            let isnap = interval.snapshot();
            let csnap = classic.snapshot();
            prop_assert_eq!(isnap.seq(), (k + 1) as u64);

            let reference = answer_set(
                &csnap,
                &csnap.query(&q).strategy(AnswerStrategy::Saturation).run().unwrap(),
            );
            for strategy in [
                AnswerStrategy::Saturation,
                AnswerStrategy::RefUcq,
                AnswerStrategy::RefGCov,
            ] {
                let ans = isnap.query(&q).strategy(strategy.clone()).run().unwrap();
                let got = answer_set(&isnap, &ans);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "interval/{} diverged from classic Sat after batch {} ({:?})",
                    strategy.name(),
                    k + 1,
                    batch
                );
            }
        }
    }

    /// Flooded mode: submit everything, then read while the pipeline
    /// drains (coalescing at will). Every observed snapshot must match the
    /// prefix its stamp names; the terminal state must be reached.
    #[test]
    fn flooded_reads_see_some_prefix(batches in batches_strategy()) {
        let mut graph = base_graph();
        let q = query(graph.dictionary_mut());
        let db = Database::builder().build_serving(graph);

        let mut prefixes = vec![BTreeSet::from([(0usize, 0usize)])];
        let mut tickets = Vec::new();
        for batch in &batches {
            let mut next = prefixes.last().unwrap().clone();
            apply_prefix(&mut next, batch);
            prefixes.push(next);

            let mut update = UpdateBatch::new();
            for &(insert, i, c) in batch {
                update = if insert {
                    update.insert(type_triple(i, c))
                } else {
                    update.delete(type_triple(i, c))
                };
            }
            tickets.push(db.submit(update).unwrap());
        }

        // Read under the drain: any stamp in 0..=batches.len() is legal,
        // as long as the rows match that stamp's prefix.
        let total = batches.len() as u64;
        loop {
            let snap = db.snapshot();
            check_snapshot(&snap, &q, &prefixes)?;
            if snap.seq() == total {
                break;
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
    }

    /// Differential: a predicate-hash-sharded database fed a random churn
    /// schedule (type facts, data facts under several predicates, and
    /// schema-epoch-bumping subclass edges) answers identically to an
    /// unsharded oracle on the same schedule, for every complete strategy,
    /// on both a reformulation-heavy query and a full wildcard scatter-
    /// gather over all shards. Run with `--features strict-invariants` to
    /// additionally assert shard/global lockstep and routing inside the
    /// maintenance pipeline.
    #[test]
    fn sharded_answers_equal_single_shard_oracle_under_churn(
        batches in shard_batches_strategy(),
        shards in 2usize..5,
    ) {
        let mut graph = churn_base_graph();
        let typed = parse_select(
            "PREFIX t: <http://t/> SELECT ?x WHERE { ?x a t:C3 }",
            graph.dictionary_mut(),
        )
        .unwrap();
        let wildcard = parse_select(
            "SELECT ?s ?o WHERE { ?s ?p ?o }",
            graph.dictionary_mut(),
        )
        .unwrap();
        let sharded = Database::builder().shards(shards).build_sharded(graph.clone());
        let oracle = Database::builder().build_serving(graph);
        prop_assert_eq!(sharded.shard_count(), shards);

        for (k, batch) in batches.iter().enumerate() {
            let build = || {
                let mut update = UpdateBatch::new();
                for op in batch {
                    update = if op.is_insert() {
                        update.insert(op.triple())
                    } else {
                        update.delete(op.triple())
                    };
                }
                update
            };
            let report = sharded.submit(build()).unwrap().wait().unwrap();
            prop_assert_eq!(report.seq(), (k + 1) as u64);
            oracle.submit(build()).unwrap().wait().unwrap();

            let ssnap = sharded.snapshot();
            let osnap = oracle.snapshot();
            // Identical schedules: stamps (seq AND both epochs) agree, so
            // schema-epoch bumps happen in lockstep with the oracle.
            prop_assert_eq!(ssnap.info(), osnap.info());
            // The writer publishes shard cells before the global cell, so
            // after an acknowledged batch every shard is at the same stamp.
            for i in 0..sharded.shard_count() {
                prop_assert_eq!(
                    sharded.shard_snapshot(i).info(),
                    ssnap.info(),
                    "shard {} fell out of lockstep after batch {}",
                    i,
                    k + 1
                );
            }

            for (qname, q) in [("typed", &typed), ("wildcard", &wildcard)] {
                let reference = full_rows(
                    &osnap,
                    &osnap.query(q).strategy(AnswerStrategy::Saturation).run().unwrap(),
                );
                for strategy in [
                    AnswerStrategy::Saturation,
                    AnswerStrategy::RefUcq,
                    AnswerStrategy::RefScq,
                    AnswerStrategy::RefGCov,
                ] {
                    let ans = ssnap.query(q).strategy(strategy.clone()).run().unwrap();
                    let got = full_rows(&ssnap, &ans);
                    prop_assert_eq!(
                        &got,
                        &reference,
                        "{} shards/{}/{} diverged from oracle after batch {} ({:?})",
                        shards,
                        qname,
                        strategy.name(),
                        k + 1,
                        batch
                    );
                }
            }
        }
    }
}
