//! Option strategies (`proptest::option::of`).

use crate::strategy::{NewTree, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

/// `Some` from the inner strategy about three quarters of the time,
/// `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> NewTree<Option<S::Value>> {
        if rng.gen_bool(0.75) {
            Ok(Some(self.inner.generate(rng)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = of(0u32..5);
        let values: Vec<_> = (0..200).map(|_| s.generate(&mut rng).unwrap()).collect();
        assert!(values.iter().any(|v| v.is_some()));
        assert!(values.iter().any(|v| v.is_none()));
        assert!(values.iter().flatten().all(|x| (0..5).contains(x)));
    }
}
