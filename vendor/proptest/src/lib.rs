//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the subset of the proptest API its test suites use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`/`prop_filter`, ranges, tuples,
//! [`Just`], `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, `any::<T>()`, simple `[class]{m,n}` string
//! patterns, and the `proptest!` / `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` randomly generated
//! cases with a deterministic per-test seed. Failing inputs are reported in
//! full; there is no shrinking (a failing case prints the exact input that
//! produced it, which the seed makes reproducible).

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Weighted or uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            l,
            format!($($fmt)+)
        );
    }};
}
