//! `any::<T>()` for primitive types.

use crate::strategy::{NewTree, Strategy};
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn generate(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> NewTree<T> {
        Ok(T::generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_hits_both() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = any::<bool>();
        let vals: Vec<bool> = (0..100).map(|_| s.generate(&mut rng).unwrap()).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
