//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{NewTree, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> NewTree<Vec<S::Value>> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = vec(1u32..5, 2..7usize);
        for _ in 0..300 {
            let v = s.generate(&mut rng).unwrap();
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (1..5).contains(x)));
        }
        let exact = vec(0u8..2, 4usize);
        assert_eq!(exact.generate(&mut rng).unwrap().len(), 4);
        let incl = vec(0u8..2, 3..=3usize);
        assert_eq!(incl.generate(&mut rng).unwrap().len(), 3);
    }
}
