//! String strategies from `[class]{m,n}`-style patterns.
//!
//! A `&'static str` is itself a strategy producing `String`s. The supported
//! pattern grammar is the fragment the workspace's fuzz tests use — a
//! sequence of items, each a character class or literal character,
//! optionally repeated:
//!
//! ```text
//! pattern    := item*
//! item       := (class | literal) quantifier?
//! class      := '[' (range | literal)+ ']'
//! range      := literal '-' literal
//! quantifier := '{' min (',' max)? '}'
//! ```
//!
//! Anything outside this fragment panics with a clear message rather than
//! silently generating the wrong language.

use crate::strategy::{NewTree, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Item {
    /// Candidate characters, pre-expanded.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Item> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated '[' in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                i += 2;
                vec![unescape(c)]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated '{{' in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier min"),
                    hi.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "empty quantifier in pattern {pattern:?}");
        items.push(Item {
            chars: candidates,
            min,
            max,
        });
    }
    items
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = if class[i] == '\\' {
            i += 1;
            unescape(
                *class
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling '\\' in class of {pattern:?}")),
            )
        } else {
            class[i]
        };
        // `x-y` is a range unless `-` is the last character of the class.
        if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
            let hi = class[i + 2];
            assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
            out.extend(c..=hi);
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> NewTree<String> {
        // Parsing on every call keeps the impl stateless; the patterns in
        // use are tiny, so this is nowhere near the cost of the test body.
        let items = parse_pattern(self);
        let mut out = String::new();
        for item in &items {
            let n = rng.gen_range(item.min..=item.max);
            for _ in 0..n {
                out.push(item.chars[rng.gen_range(0..item.chars.len())]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn printable_class_with_escapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = "[ -~\n\t]{0,200}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng).unwrap();
            assert!(v.len() <= 200 * 4);
            assert!(v
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn leading_single_item_then_quantified_class() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = "[a-zA-Z][a-zA-Z0-9/._-]{0,20}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng).unwrap();
            let mut cs = v.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{v:?}");
            assert!(
                cs.all(|c| c.is_ascii_alphanumeric() || "/._-".contains(c)),
                "{v:?}"
            );
            assert!(v.chars().count() <= 21);
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let chars = expand_class(&['a', '-', 'c', '-'], "[a-c-]");
        assert_eq!(chars, vec!['a', 'b', 'c', '-']);
    }
}
