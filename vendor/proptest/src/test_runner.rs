//! The case runner behind the `proptest!` macro.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Abort after this many rejected generation attempts across the run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Failure of a single test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// What a proptest body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

fn seed_for(name: &str) -> u64 {
    // FNV-1a: a stable per-test seed so failures reproduce across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `config.cases` random cases of `test` over `strategy`, panicking on
/// the first failure with the input that produced it.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| seed_for(name));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rejects: u32 = 0;
    let mut case = 0;
    while case < config.cases {
        let value = match strategy.generate(&mut rng) {
            Ok(v) => v,
            Err(rejection) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected inputs \
                         ({rejects}); last reason: {}",
                        rejection.0
                    );
                }
                continue;
            }
        };
        let repr = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("proptest '{name}': too many rejected cases");
                }
                continue;
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest '{name}' failed at case {case} (seed {seed}):\n\
                     input: {repr}\n{msg}"
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!(
                    "proptest '{name}' panicked at case {case} (seed {seed}):\n\
                     input: {repr}\npanic: {msg}"
                );
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run(
            &ProptestConfig {
                cases: 37,
                ..Default::default()
            },
            "passing",
            0u32..100,
            |v| {
                counter.set(counter.get() + 1);
                if v < 100 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("out of range"))
                }
            },
        );
        count += counter.get();
        assert_eq!(count, 37);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_input() {
        run(&ProptestConfig::default(), "failing", 0u32..10, |v| {
            if v < 5 {
                Ok(())
            } else {
                Err(TestCaseError::fail("too big"))
            }
        });
    }

    #[test]
    #[should_panic(expected = "panicked at case")]
    fn panicking_body_is_reported() {
        run(&ProptestConfig::default(), "panics", 0u32..10, |v| {
            assert!(v > 100, "always fails");
            Ok(())
        });
    }

    #[test]
    fn deterministic_given_same_name() {
        let collect = |tag: &str| {
            let values = std::cell::RefCell::new(Vec::new());
            run(
                &ProptestConfig {
                    cases: 20,
                    ..Default::default()
                },
                tag,
                0u32..1_000,
                |v| {
                    values.borrow_mut().push(v);
                    Ok(())
                },
            );
            values.into_inner()
        };
        assert_eq!(collect("same"), collect("same"));
        assert_ne!(collect("same"), collect("different"));
    }

    #[test]
    fn filter_rejections_do_not_consume_cases() {
        let counter = std::cell::Cell::new(0u32);
        run(
            &ProptestConfig {
                cases: 10,
                ..Default::default()
            },
            "filtered",
            (0u32..100).prop_filter("keep evens", |v| v % 2 == 0),
            |v| {
                counter.set(counter.get() + 1);
                assert!(v % 2 == 0);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 10);
    }
}
