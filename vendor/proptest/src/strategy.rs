//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A generation attempt was rejected (e.g. by `prop_filter`); the runner
/// retries without consuming a test case, up to a global limit.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Result of one generation attempt.
pub type NewTree<T> = Result<T, Rejection>;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value (or reject the attempt).
    fn generate(&self, rng: &mut StdRng) -> NewTree<Self::Value>;

    /// Transform every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred` (retrying internally first).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> NewTree<T> {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> NewTree<T> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> NewTree<T> {
        self.source.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> NewTree<S2::Value> {
        let inner = (self.f)(self.source.generate(rng)?);
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> NewTree<S::Value> {
        // Retry locally before escalating to a global reject.
        for _ in 0..256 {
            let v = self.source.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.reason.clone()))
    }
}

/// Weighted union of strategies over a common value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> NewTree<T> {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> NewTree<$t> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> NewTree<$t> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> NewTree<Self::Value> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = (0u32..10)
            .prop_map(|x| x * 2)
            .prop_filter("even only stays even", |x| x % 2 == 0)
            .prop_flat_map(|x| (x..x + 3).prop_map(move |y| (x, y)));
        for _ in 0..200 {
            let (x, y) = s.generate(&mut rng).unwrap();
            assert!(x % 2 == 0 && x < 20 && (x..x + 3).contains(&y));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let u: Union<u32> = Union::new(vec![(3, Just(0u32).boxed()), (1, Just(1u32).boxed())]);
        let ones: usize = (0..4_000)
            .map(|_| u.generate(&mut rng).unwrap() as usize)
            .sum();
        assert!((700..1_300).contains(&ones), "got {ones}");
    }

    #[test]
    fn filter_eventually_rejects() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (0u32..10).prop_filter("impossible", |_| false);
        assert!(s.generate(&mut rng).is_err());
    }
}
