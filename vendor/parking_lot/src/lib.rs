//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the parking_lot locking API it uses — [`Mutex`] and [`RwLock`] whose
//! `lock`/`read`/`write` return guards directly (no poisoning) — backed by
//! `std::sync`. A poisoned std lock means a thread panicked while holding
//! it; parking_lot semantics are to carry on, so we recover the inner guard.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *l.write() += 1;
                        let _ = *l.read();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*l.read(), 4_000);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, data still reachable.
        assert_eq!(*m.lock(), 5);
    }
}
