//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic, fast, and of
//! more than sufficient quality for synthetic data generation (the only
//! consumer in this repository).

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by rejection (span ≤ 2^64 here in practice).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection sampling over u64 keeps the draw exactly uniform.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// The user-facing sampling interface (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream fills the state, as rand itself does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// In-place random reordering and selection on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            use super::Rng;
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            use super::Rng;
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0i64..=5);
            assert!((0..=5).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut r = rngs::StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
        assert!(v.choose(&mut r).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
