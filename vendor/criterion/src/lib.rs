//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`/`iter_batched`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is deliberately simple — a fixed
//! number of timed samples with mean/min/max reporting — which is enough to
//! compare strategies; statistical rigor belongs to the real harness.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample wall times.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f` repeatedly.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // One warm-up call outside the measurement.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

fn report(name: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        times.len()
    );
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(&name.to_string(), f);
        self
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        report(name, &bencher.times);
    }

    /// Called by `criterion_main!`; the shim has no CLI to configure.
    pub fn final_summary(&self) {}
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn group_with_input_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let input = 41u64;
        group.bench_with_input(BenchmarkId::new("inc", "41"), &input, |b, &i| {
            b.iter(|| i + 1)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
