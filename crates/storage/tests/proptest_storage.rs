//! Property tests of the storage layer: index scans vs a naive reference,
//! statistics consistency, relation algebra laws.

use proptest::prelude::*;
use rdfref_model::dictionary::ID_RDF_TYPE;
use rdfref_model::{EncodedTriple, TermId};
use rdfref_query::Var;
use rdfref_storage::relation::Relation;
use rdfref_storage::store::{IdPattern, Store};
use rdfref_storage::{Stats, StatsMaintainer};

fn triples_strategy() -> impl Strategy<Value = Vec<EncodedTriple>> {
    proptest::collection::vec(
        (5u32..15, 0u32..8, 5u32..20).prop_map(|(s, p, o)| {
            // Property pool includes rdf:type (id 0) sometimes.
            let prop = if p == 0 { ID_RDF_TYPE } else { TermId(p + 100) };
            EncodedTriple::new(TermId(s), prop, TermId(o))
        }),
        0..60,
    )
}

fn naive_scan(triples: &[EncodedTriple], pat: IdPattern) -> Vec<EncodedTriple> {
    let mut out: Vec<EncodedTriple> = triples
        .iter()
        .filter(|t| {
            pat.s.map(|s| t.s == s).unwrap_or(true)
                && pat.p.map(|p| t.p == p).unwrap_or(true)
                && pat.o.map(|o| t.o == o).unwrap_or(true)
        })
        .copied()
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every pattern shape agrees with the naive reference filter.
    #[test]
    fn scans_match_naive_reference(
        triples in triples_strategy(),
        s in proptest::option::of(5u32..15),
        p in proptest::option::of(0u32..8),
        o in proptest::option::of(5u32..20),
    ) {
        let store = Store::from_triples(&triples);
        let pat = IdPattern {
            s: s.map(TermId),
            p: p.map(|p| if p == 0 { ID_RDF_TYPE } else { TermId(p + 100) }),
            o: o.map(TermId),
        };
        let mut got = store.scan(pat);
        got.sort_unstable();
        let expected = naive_scan(&triples, pat);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(store.count(pat), expected.len());
    }

    /// Statistics identities: per-property counts sum to the total; class
    /// counts sum to the number of type triples; distinct counts are exact.
    #[test]
    fn stats_identities(triples in triples_strategy()) {
        let store = Store::from_triples(&triples);
        let stats = Stats::compute(&store);
        let total: usize = stats.properties.values().map(|p| p.count).sum();
        prop_assert_eq!(total, store.len());
        let class_sum: usize = stats.classes.values().sum();
        prop_assert_eq!(class_sum, stats.type_triples);
        // Exact distinct subject count.
        let mut subjects: Vec<TermId> = store.iter().map(|t| t.s).collect();
        subjects.sort_unstable();
        subjects.dedup();
        prop_assert_eq!(stats.distinct_subjects, subjects.len());
        // Per-property distincts.
        for (&p, ps) in &stats.properties {
            let mut subs: Vec<TermId> = store
                .iter()
                .filter(|t| t.p == p)
                .map(|t| t.s)
                .collect();
            subs.sort_unstable();
            subs.dedup();
            prop_assert_eq!(ps.distinct_subjects, subs.len());
        }
    }

    /// Copy-on-write delta application over small buckets equals a rebuild
    /// from the updated triple set, for every pattern shape, and keeps exact
    /// statistics maintainable.
    #[test]
    fn apply_delta_matches_rebuild_and_stats_stay_exact(
        base in triples_strategy(),
        inserts in triples_strategy(),
        remove_mask in proptest::collection::vec(any::<bool>(), 60),
        bucket in 1usize..9,
    ) {
        let store = Store::from_triples_with_bucket_target(&base, bucket);
        // Net delta: inserts not already present, removes actually present.
        let removes: Vec<EncodedTriple> = store
            .iter()
            .enumerate()
            .filter(|(i, _)| remove_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, t)| t)
            .collect();
        let mut net_inserts: Vec<EncodedTriple> = inserts
            .iter()
            .filter(|t| !store.contains(t))
            .copied()
            .collect();
        net_inserts.sort_unstable();
        net_inserts.dedup();

        let updated = store.apply_delta(&net_inserts, &removes);
        let mut expected_set: Vec<EncodedTriple> = base.clone();
        expected_set.extend(net_inserts.iter().copied());
        expected_set.retain(|t| !removes.contains(t));
        let rebuilt = Store::from_triples(&expected_set);

        prop_assert_eq!(updated.len(), rebuilt.len());
        prop_assert_eq!(
            updated.iter().collect::<Vec<_>>(),
            rebuilt.iter().collect::<Vec<_>>()
        );
        // Spot-check pattern shapes against the naive reference.
        for pat in [
            IdPattern::ALL,
            IdPattern { s: Some(TermId(7)), p: None, o: None },
            IdPattern { s: None, p: Some(ID_RDF_TYPE), o: None },
            IdPattern { s: None, p: None, o: Some(TermId(9)) },
            IdPattern { s: Some(TermId(7)), p: None, o: Some(TermId(9)) },
        ] {
            let mut got = updated.scan(pat);
            got.sort_unstable();
            prop_assert_eq!(got, naive_scan(&expected_set, pat));
        }
        // Incremental statistics equal a full recompute.
        let base_stats = Stats::compute(&store);
        let mut maintainer = StatsMaintainer::from_store(&store);
        let inc = maintainer.apply(&base_stats, &updated, &net_inserts, &removes);
        let full = Stats::compute(&updated);
        prop_assert_eq!(inc.total, full.total);
        prop_assert_eq!(inc.distinct_subjects, full.distinct_subjects);
        prop_assert_eq!(inc.distinct_properties, full.distinct_properties);
        prop_assert_eq!(inc.distinct_objects, full.distinct_objects);
        prop_assert_eq!(inc.properties, full.properties);
        prop_assert_eq!(inc.classes, full.classes);
        prop_assert_eq!(inc.type_triples, full.type_triples);
        // The pre-delta snapshot still answers as before (immutability).
        prop_assert_eq!(store.len(), Store::from_triples(&base).len());
    }

    /// Natural join is commutative up to column order, and joining a
    /// relation with itself is the identity (after dedup).
    #[test]
    fn join_laws(
        left_rows in proptest::collection::vec((0u32..6, 0u32..6), 0..20),
        right_rows in proptest::collection::vec((0u32..6, 0u32..6), 0..20),
    ) {
        let mk = |cols: [&str; 2], rows: &[(u32, u32)]| {
            let mut r = Relation::empty(vec![Var::new(cols[0]), Var::new(cols[1])]);
            for &(a, b) in rows {
                r.push_row(&[TermId(a), TermId(b)]).unwrap();
            }
            r.dedup();
            r
        };
        let l = mk(["x", "y"], &left_rows);
        let r = mk(["y", "z"], &right_rows);

        // Commutativity up to projection order.
        let cols = [Var::new("x"), Var::new("y"), Var::new("z")];
        let mut a = l.natural_join(&r).project(&cols).unwrap();
        let mut b = r.natural_join(&l).project(&cols).unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a.to_rows(), b.to_rows());

        // Self-join idempotence.
        let mut selfjoin = l.natural_join(&l);
        selfjoin.dedup();
        selfjoin.sort();
        let mut l_sorted = l.clone();
        l_sorted.sort();
        prop_assert_eq!(selfjoin.to_rows(), l_sorted.to_rows());
    }

    /// Sort-merge join computes exactly the hash join's result.
    #[test]
    fn merge_join_matches_hash_join(
        left_rows in proptest::collection::vec((0u32..6, 0u32..6), 0..25),
        right_rows in proptest::collection::vec((0u32..6, 0u32..6), 0..25),
    ) {
        let mk = |cols: [&str; 2], rows: &[(u32, u32)]| {
            let mut r = Relation::empty(vec![Var::new(cols[0]), Var::new(cols[1])]);
            for &(a, b) in rows {
                r.push_row(&[TermId(a), TermId(b)]).unwrap();
            }
            r
        };
        let l = mk(["x", "y"], &left_rows);
        let r = mk(["y", "z"], &right_rows);
        let mut hash = l.natural_join(&r);
        let mut merge = l.sort_merge_join(&r);
        hash.sort();
        merge.sort();
        prop_assert_eq!(hash.columns(), merge.columns());
        prop_assert_eq!(hash.to_rows(), merge.to_rows());
        // Two shared columns too.
        let r2 = mk(["x", "y"], &right_rows);
        let mut hash2 = l.natural_join(&r2);
        let mut merge2 = l.sort_merge_join(&r2);
        hash2.sort();
        merge2.sort();
        prop_assert_eq!(hash2.to_rows(), merge2.to_rows());
    }

    /// Projection then dedup never grows a relation and keeps only listed
    /// columns.
    #[test]
    fn projection_laws(rows in proptest::collection::vec((0u32..5, 0u32..5, 0u32..5), 0..25)) {
        let mut r = Relation::empty(vec![Var::new("a"), Var::new("b"), Var::new("c")]);
        for &(x, y, z) in &rows {
            r.push_row(&[TermId(x), TermId(y), TermId(z)]).unwrap();
        }
        let mut p = r.project(&[Var::new("c"), Var::new("a")]).unwrap();
        p.dedup();
        prop_assert!(p.len() <= r.len().max(1));
        prop_assert_eq!(p.arity(), 2);
        // Every projected row comes from some source row.
        for row in p.rows() {
            prop_assert!(r.rows().any(|orig| orig[2] == row[0] && orig[0] == row[1]));
        }
    }
}
