//! Materialized relations: the unit of data flow between operators.
//!
//! A [`Relation`] stores rows flat (`arity`-strided `Vec<TermId>`) with
//! columns *named* by query variables — natural-join semantics between
//! fragments of a JUCQ are defined by column names, exactly as in the paper.

use crate::error::{Result, StorageError};
use rdfref_model::fxhash::{FxHashMap, FxHashSet};
use rdfref_model::TermId;
use rdfref_query::Var;

/// A named, flat, materialized relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    columns: Vec<Var>,
    data: Vec<TermId>,
}

impl Relation {
    /// An empty relation with the given columns.
    pub fn empty(columns: Vec<Var>) -> Relation {
        Relation {
            columns,
            data: Vec::new(),
        }
    }

    /// A relation holding a single zero-length row — the unit of join
    /// (used for boolean fragments that evaluated to *true*).
    pub fn unit() -> Relation {
        Relation {
            columns: Vec::new(),
            data: Vec::new(),
        }
        .with_unit_row()
    }

    fn with_unit_row(mut self) -> Relation {
        debug_assert!(self.columns.is_empty());
        // A zero-arity relation cannot encode rows in `data`; track the unit
        // row by a marker: zero-arity relations with `data == [sentinel]`.
        self.data.push(TermId(u32::MAX));
        self
    }

    /// The column names.
    pub fn columns(&self) -> &[Var] {
        &self.columns
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.columns.is_empty() {
            self.data.len() // sentinel markers, one per unit row
        } else {
            self.data.len() / self.columns.len()
        }
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a row.
    pub fn push_row(&mut self, row: &[TermId]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        if self.columns.is_empty() {
            self.data.push(TermId(u32::MAX));
        } else {
            self.data.extend_from_slice(row);
        }
        Ok(())
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[TermId] {
        if self.columns.is_empty() {
            &[]
        } else {
            let a = self.columns.len();
            &self.data[i * a..(i + 1) * a]
        }
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[TermId]> {
        let a = self.columns.len();
        RowIter {
            data: &self.data,
            arity: a,
            pos: 0,
            unit_rows: if a == 0 { self.data.len() } else { 0 },
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, v: &Var) -> Option<usize> {
        self.columns.iter().position(|c| c == v)
    }

    /// Append every row of `other` (columns must match exactly, in order) —
    /// one columnar `memcpy`, no per-row work. This is how morsel workers'
    /// partial buffers are stitched back together in morsel order.
    pub fn absorb_rows(&mut self, other: &Relation) -> Result<()> {
        if self.columns != other.columns {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                found: other.columns.len(),
            });
        }
        self.data.extend_from_slice(&other.data);
        Ok(())
    }

    /// Deduplicate rows in place (set semantics).
    pub fn dedup(&mut self) {
        if self.columns.is_empty() {
            self.data.truncate(1);
            return;
        }
        let a = self.columns.len();
        let mut seen: FxHashSet<&[TermId]> = FxHashSet::default();
        let mut keep = Vec::with_capacity(self.data.len());
        // Safety dance avoided: collect kept row ranges first.
        let mut kept_ranges: Vec<usize> = Vec::new();
        for i in 0..self.len() {
            let row = &self.data[i * a..(i + 1) * a];
            if seen.insert(row) {
                kept_ranges.push(i);
            }
        }
        if kept_ranges.len() == self.len() {
            return;
        }
        drop(seen);
        for &i in &kept_ranges {
            keep.extend_from_slice(&self.data[i * a..(i + 1) * a]);
        }
        self.data = keep;
    }

    /// Project onto `cols` (by name), producing a new relation. Columns may
    /// be repeated or reordered. Does **not** deduplicate; call
    /// [`Relation::dedup`] for set semantics.
    pub fn project(&self, cols: &[Var]) -> Result<Relation> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|v| {
                self.column_index(v)
                    .ok_or_else(|| StorageError::UnknownColumn(v.name().to_string()))
            })
            .collect::<Result<_>>()?;
        let mut out = Relation::empty(cols.to_vec());
        if cols.is_empty() {
            // Boolean projection: one unit row iff self non-empty.
            if !self.is_empty() {
                out.data.push(TermId(u32::MAX));
            }
            return Ok(out);
        }
        out.data.reserve(self.len() * cols.len());
        for row in self.rows() {
            for &i in &idx {
                out.data.push(row[i]);
            }
        }
        Ok(out)
    }

    /// Natural hash join on the columns shared (by name) with `other`.
    /// With no shared columns this is the cross product. Zero-column unit
    /// relations behave as the join identity; empty relations annihilate.
    pub fn natural_join(&self, other: &Relation) -> Relation {
        // Output columns: all of self's, then other's non-shared ones.
        let shared: Vec<(usize, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.column_index(v).map(|j| (i, j)))
            .collect();
        let other_extra: Vec<usize> = (0..other.arity())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();
        let mut out_cols = self.columns.clone();
        out_cols.extend(other_extra.iter().map(|&j| other.columns[j].clone()));
        let mut out = Relation::empty(out_cols);

        // Build on the smaller side.
        let (build, probe, build_is_self) = if self.len() <= other.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        // Key extractors relative to build/probe orientation.
        let build_key_idx: Vec<usize> = if build_is_self {
            shared.iter().map(|&(i, _)| i).collect()
        } else {
            shared.iter().map(|&(_, j)| j).collect()
        };
        let probe_key_idx: Vec<usize> = if build_is_self {
            shared.iter().map(|&(_, j)| j).collect()
        } else {
            shared.iter().map(|&(i, _)| i).collect()
        };

        let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
        for bi in 0..build.len() {
            let row = build.row(bi);
            let key: Vec<TermId> = build_key_idx.iter().map(|&k| row[k]).collect();
            table.entry(key).or_default().push(bi);
        }

        for pi in 0..probe.len() {
            let prow = probe.row(pi);
            let key: Vec<TermId> = probe_key_idx.iter().map(|&k| prow[k]).collect();
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    let brow = build.row(bi);
                    let (srow, orow) = if build_is_self {
                        (brow, prow)
                    } else {
                        (prow, brow)
                    };
                    if out.columns.is_empty() {
                        out.data.push(TermId(u32::MAX));
                        continue;
                    }
                    out.data.extend_from_slice(srow);
                    for &j in &other_extra {
                        out.data.push(orow[j]);
                    }
                }
            }
        }
        out
    }

    /// Sort-merge natural join — the alternative physical operator to
    /// [`Relation::natural_join`] (ablation A8: hash vs merge). Both inputs
    /// are sorted on the shared key, then merged with duplicate-group
    /// handling. Output rows and columns are identical to the hash join's
    /// (property-tested); only the access pattern differs.
    pub fn sort_merge_join(&self, other: &Relation) -> Relation {
        let shared: Vec<(usize, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.column_index(v).map(|j| (i, j)))
            .collect();
        if shared.is_empty() {
            // Cross product: delegate (merge join needs a key).
            return self.natural_join(other);
        }
        let other_extra: Vec<usize> = (0..other.arity())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();
        let mut out_cols = self.columns.clone();
        out_cols.extend(other_extra.iter().map(|&j| other.columns[j].clone()));
        let mut out = Relation::empty(out_cols);

        // Sorted row-index permutations keyed by the shared columns.
        let key_of = |rel: &Relation, idx: &[usize], row: usize| -> Vec<TermId> {
            idx.iter().map(|&k| rel.row(row)[k]).collect()
        };
        let left_keys: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
        let right_keys: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        let mut left_order: Vec<usize> = (0..self.len()).collect();
        left_order.sort_by_key(|&r| key_of(self, &left_keys, r));
        let mut right_order: Vec<usize> = (0..other.len()).collect();
        right_order.sort_by_key(|&r| key_of(other, &right_keys, r));

        let (mut li, mut ri) = (0usize, 0usize);
        while li < left_order.len() && ri < right_order.len() {
            let lk = key_of(self, &left_keys, left_order[li]);
            let rk = key_of(other, &right_keys, right_order[ri]);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => li += 1,
                std::cmp::Ordering::Greater => ri += 1,
                std::cmp::Ordering::Equal => {
                    // Delimit the duplicate groups on both sides.
                    let l_end = (li..left_order.len())
                        .find(|&x| key_of(self, &left_keys, left_order[x]) != lk)
                        .unwrap_or(left_order.len());
                    let r_end = (ri..right_order.len())
                        .find(|&x| key_of(other, &right_keys, right_order[x]) != rk)
                        .unwrap_or(right_order.len());
                    for &l in &left_order[li..l_end] {
                        for &r in &right_order[ri..r_end] {
                            if out.columns.is_empty() {
                                out.data.push(TermId(u32::MAX));
                                continue;
                            }
                            out.data.extend_from_slice(self.row(l));
                            for &j in &other_extra {
                                out.data.push(other.row(r)[j]);
                            }
                        }
                    }
                    li = l_end;
                    ri = r_end;
                }
            }
        }
        out
    }

    /// Sort rows lexicographically (for deterministic output in tests and
    /// experiment reports).
    pub fn sort(&mut self) {
        if self.columns.is_empty() {
            return;
        }
        let a = self.columns.len();
        let mut rows: Vec<Vec<TermId>> = (0..self.len()).map(|i| self.row(i).to_vec()).collect();
        rows.sort_unstable();
        self.data.clear();
        for r in rows {
            self.data.extend_from_slice(&r);
        }
        let _ = a;
    }

    /// Map every value through `f`, preserving columns and row order
    /// (zero-arity unit-row sentinels pass through untouched). Used to
    /// decode interval-encoded ids back to base dictionary ids at the
    /// answer boundary.
    pub fn map_values(&self, f: &mut impl FnMut(TermId) -> TermId) -> Relation {
        if self.columns.is_empty() {
            return self.clone();
        }
        Relation {
            columns: self.columns.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Collect rows as vectors (test helper).
    pub fn to_rows(&self) -> Vec<Vec<TermId>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

struct RowIter<'a> {
    data: &'a [TermId],
    arity: usize,
    pos: usize,
    unit_rows: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [TermId];

    fn next(&mut self) -> Option<&'a [TermId]> {
        if self.arity == 0 {
            if self.unit_rows > 0 {
                self.unit_rows -= 1;
                return Some(&[]);
            }
            return None;
        }
        let start = self.pos * self.arity;
        if start >= self.data.len() {
            return None;
        }
        self.pos += 1;
        Some(&self.data[start..start + self.arity])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn t(n: u32) -> TermId {
        TermId(n)
    }

    fn rel(cols: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::empty(cols.iter().map(|c| v(c)).collect());
        for row in rows {
            let ids: Vec<TermId> = row.iter().map(|&x| t(x)).collect();
            r.push_row(&ids).unwrap();
        }
        r
    }

    #[test]
    fn push_and_iterate() {
        let r = rel(&["x", "y"], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[t(3), t(4)]);
        assert_eq!(r.rows().count(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::empty(vec![v("x")]);
        assert!(matches!(
            r.push_row(&[t(1), t(2)]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut r = rel(&["x"], &[&[1], &[2], &[1], &[1]]);
        r.dedup();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn project_reorders_and_drops() {
        let r = rel(&["x", "y", "z"], &[&[1, 2, 3]]);
        let p = r.project(&[v("z"), v("x")]).unwrap();
        assert_eq!(p.columns(), &[v("z"), v("x")]);
        assert_eq!(p.row(0), &[t(3), t(1)]);
        assert!(r.project(&[v("nope")]).is_err());
    }

    #[test]
    fn natural_join_on_shared_column() {
        let left = rel(&["x", "y"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let right = rel(&["y", "z"], &[&[10, 100], &[10, 101], &[30, 300]]);
        let mut j = left.natural_join(&right);
        j.sort();
        assert_eq!(j.columns(), &[v("x"), v("y"), v("z")]);
        assert_eq!(
            j.to_rows(),
            vec![
                vec![t(1), t(10), t(100)],
                vec![t(1), t(10), t(101)],
                vec![t(3), t(30), t(300)],
            ]
        );
    }

    #[test]
    fn join_is_symmetric_up_to_column_order() {
        let left = rel(&["x", "y"], &[&[1, 10], &[2, 20]]);
        let right = rel(&["y", "z"], &[&[10, 100]]);
        let a = left.natural_join(&right);
        let b = right.natural_join(&left);
        let mut a_sorted = a.project(&[v("x"), v("y"), v("z")]).unwrap();
        let mut b_sorted = b.project(&[v("x"), v("y"), v("z")]).unwrap();
        a_sorted.sort();
        b_sorted.sort();
        assert_eq!(a_sorted, b_sorted);
    }

    #[test]
    fn cross_product_when_no_shared() {
        let left = rel(&["x"], &[&[1], &[2]]);
        let right = rel(&["y"], &[&[10], &[20]]);
        let j = left.natural_join(&right);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_on_multiple_shared_columns() {
        let left = rel(&["x", "y"], &[&[1, 2], &[1, 3]]);
        let right = rel(&["x", "y", "z"], &[&[1, 2, 9], &[1, 9, 9]]);
        let j = left.natural_join(&right);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0), &[t(1), t(2), t(9)]);
    }

    #[test]
    fn unit_relation_is_join_identity() {
        let r = rel(&["x"], &[&[1], &[2]]);
        let u = Relation::unit();
        assert_eq!(u.len(), 1);
        let j = r.natural_join(&u);
        assert_eq!(j.len(), 2);
        let j2 = u.natural_join(&r);
        assert_eq!(j2.len(), 2);
    }

    #[test]
    fn empty_relation_annihilates_join() {
        let r = rel(&["x"], &[&[1]]);
        let e = Relation::empty(vec![v("x")]);
        assert!(r.natural_join(&e).is_empty());
    }

    #[test]
    fn boolean_projection() {
        let r = rel(&["x"], &[&[1], &[2]]);
        let b = r.project(&[]).unwrap();
        assert_eq!(b.len(), 1); // true
        let e = Relation::empty(vec![v("x")]);
        let be = e.project(&[]).unwrap();
        assert!(be.is_empty()); // false
    }

    #[test]
    fn zero_column_dedup_keeps_single_unit() {
        let mut u = Relation::unit();
        u.push_row(&[]).unwrap();
        assert_eq!(u.len(), 2);
        u.dedup();
        assert_eq!(u.len(), 1);
    }
}
