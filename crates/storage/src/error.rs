//! Error types of the storage layer.

use std::fmt;

/// Result alias for the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by relation algebra and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row of the wrong arity was pushed into a relation.
    ArityMismatch {
        /// The relation's arity.
        expected: usize,
        /// The offending row's arity.
        found: usize,
    },
    /// A column name was not found in a relation.
    UnknownColumn(String),
    /// Output column list does not match a CQ head.
    HeadMismatch {
        /// The CQ head arity.
        head: usize,
        /// The provided output column count.
        columns: usize,
    },
    /// An evaluation exceeded the configured row budget (guard against
    /// runaway intermediate results; mirrors the paper's "could not be
    /// evaluated in our experimental setting").
    RowBudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// A parallel union worker thread panicked; its results are lost.
    WorkerPanicked,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: relation has {expected}, row has {found}"
                )
            }
            StorageError::UnknownColumn(c) => write!(f, "unknown column ?{c}"),
            StorageError::HeadMismatch { head, columns } => write!(
                f,
                "output column count {columns} does not match CQ head arity {head}"
            ),
            StorageError::RowBudgetExceeded { budget } => {
                write!(f, "evaluation exceeded the row budget of {budget} rows")
            }
            StorageError::WorkerPanicked => {
                write!(f, "a parallel union worker thread panicked")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StorageError::UnknownColumn("x".into())
            .to_string()
            .contains("?x"));
        assert!(StorageError::RowBudgetExceeded { budget: 10 }
            .to_string()
            .contains("10"));
    }
}
