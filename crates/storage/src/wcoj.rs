//! Worst-case-optimal join: a leapfrog-triejoin driver over the existing
//! sorted permutation indexes.
//!
//! No new storage format: each atom of a CQ body binds one of the SPO / POS
//! / OSP permutations whose key order lists the atom's variables compatibly
//! with one *global* variable order, and the sorted bucket runs of that
//! permutation are read as a trie (each key position = one trie level).
//! [`plan`] performs the binding; [`eval`] runs the leapfrog driver over the
//! bound tries, optionally morsel-parallel; [`physical_choice`] is the
//! single arbitration point — evaluator dispatch and `Explain` both go
//! through it so the executed plan and the rendered plan can never drift.
//!
//! ## Trie levels
//!
//! For an atom bound to permutation `order`, each of the three key
//! positions is classified:
//!
//! * **Fixed** — a constant; the driver pins it in the probe key.
//! * **Named** — a variable shared with the global order; it joins the
//!   leapfrog intersection at that variable's slot.
//! * **Range** — an interval-dictionary `[lo, hi)` position (produced by
//!   the `RangeScan` reformulation); it becomes an *anonymous* slot the
//!   driver iterates over the contiguous run, clamped to the interval —
//!   one range-bounded trie level instead of a union of point lookups.
//!
//! An (atom, order) pair is feasible iff the atom's named variables appear
//! in key order compatibly with the global order (strictly increasing
//! slot ranks). Fixed positions *below* an open level are folded into the
//! seek probe when contiguous, and deferred to the next open level's seek
//! otherwise — both are sound; the fold just prunes earlier.
//!
//! ## Counters
//!
//! * `op.lfj.seeks` — sorted-run seeks (`partition_point` probes), exact;
//! * `op.lfj.next`  — successful binds that descended a trie level, exact;
//! * `op.lfj.rows`  — rows emitted before final dedup, exact;
//! * `op.lfj.atoms` — atoms participating per evaluation, exact.
//!
//! Morsel-parallel runs split by slot-0 *value*, so every counter is
//! identical to the sequential run — parallelism is observable only through
//! `op.morsel.*` and wall time.

use crate::cost::CostModel;
use crate::error::{Result, StorageError};
use crate::evaluator::JoinAlgorithm;
use crate::morsel::run_morsels;
use crate::relation::Relation;
use crate::stats::Stats;
use crate::store::{Order, SortedIndex, TripleSource};
use crate::Parallelism;
use rdfref_model::TermId;
use rdfref_obs::Obs;
use rdfref_query::ast::{Atom, PTerm};
use rdfref_query::{varorder, Var};

/// What a leapfrog slot binds: a query variable, or an anonymous
/// interval-dictionary range some atom iterates without exporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotKind {
    /// A named query variable; its bound value is projected into output.
    Named(Var),
    /// A `[lo, hi)` id interval from a `PTerm::Range` position; iterated as
    /// one range-bounded trie level, never projected.
    Range {
        /// Inclusive lower bound.
        lo: TermId,
        /// Exclusive upper bound.
        hi: TermId,
    },
}

/// One slot of the global leapfrog order and the (atom, key position)
/// pairs that intersect at it.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    kind: SlotKind,
    /// `(atom index, key position)` pairs participating in this slot's
    /// intersection. Never empty by construction.
    participants: Vec<(usize, usize)>,
}

/// How one key position of a bound atom behaves in the trie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelBinding {
    /// Constant, pinned into the probe key.
    Fixed(TermId),
    /// Open level, bound at this slot of the global order.
    Slot(usize),
}

/// One atom's binding: the permutation it reads and what each of the three
/// key positions does.
#[derive(Debug, Clone)]
pub struct AtomPlan {
    order: Order,
    levels: [LevelBinding; 3],
    /// Constant property, when present — used to route to the owning shard
    /// of a predicate-partitioned source.
    p_route: Option<TermId>,
}

/// A complete leapfrog-triejoin physical plan for a CQ body.
#[derive(Debug, Clone)]
pub struct WcojPlan {
    slots: Vec<Slot>,
    atoms: Vec<AtomPlan>,
    var_order: Vec<Var>,
    /// Slot index of each variable in `var_order` (same length/order).
    named_slots: Vec<usize>,
}

impl WcojPlan {
    /// The global variable order, outermost first.
    pub fn var_order(&self) -> &[Var] {
        &self.var_order
    }

    /// Number of atoms bound by the plan.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Human-readable rendering of each atom's trie binding, in body order:
    /// `"SPO [?x #7 ?y]"` — constants as `#id`, ranges as `[lo,hi)`.
    pub fn atom_renderings(&self) -> Vec<String> {
        self.atoms
            .iter()
            .map(|ap| {
                let mut parts: Vec<String> = Vec::with_capacity(3);
                // Render in SPO position order (what the query author wrote),
                // not key order.
                for pos in 0..3 {
                    let kp = ap.order.key_position(pos);
                    let s = match ap.levels[kp] {
                        LevelBinding::Fixed(c) => format!("#{}", c.0),
                        LevelBinding::Slot(s) => match self.slots.get(s).map(|sl| &sl.kind) {
                            Some(SlotKind::Named(v)) => format!("?{}", v.name()),
                            Some(SlotKind::Range { lo, hi }) => format!("[{},{})", lo.0, hi.0),
                            None => "?".to_string(),
                        },
                    };
                    parts.push(s);
                }
                format!("{} [{}]", ap.order.name(), parts.join(" "))
            })
            .collect()
    }
}

/// Per-position classification of an atom under a candidate permutation,
/// ordered by key position.
enum KeyInfo {
    Fixed(TermId),
    /// Rank of the variable in the global order.
    Named(usize),
    Range(TermId, TermId),
}

/// Classify `atom` under `order` against `rank(var)`; `None` if the atom
/// repeats a variable (bind join handles those).
fn classify(atom: &Atom, order: Order, rank: &[(Var, usize)]) -> Option<[KeyInfo; 3]> {
    let positions = atom.positions();
    let mut out: [Option<KeyInfo>; 3] = [None, None, None];
    for (pos, term) in positions.iter().enumerate() {
        let kp = order.key_position(pos);
        let info = match term {
            PTerm::Const(c) => KeyInfo::Fixed(*c),
            PTerm::Range(lo, hi) => KeyInfo::Range(*lo, *hi),
            PTerm::Var(v) => {
                let (_, r) = rank.iter().find(|(u, _)| u == v)?;
                KeyInfo::Named(*r)
            }
        };
        out[kp] = Some(info);
    }
    // All three filled by construction (key_position is a permutation).
    let [a, b, c] = out;
    Some([a?, b?, c?])
}

/// Does the atom repeat a variable? Those atoms carry an intra-atom equality
/// constraint the trie driver does not express; the planner bails to bind
/// join.
fn repeats_var(atom: &Atom) -> bool {
    let vars: Vec<&Var> = atom.vars().collect();
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            if vars[i] == vars[j] {
                return true;
            }
        }
    }
    false
}

/// Pick the best feasible permutation for `atom` under the global order
/// described by `rank`. Feasible = named ranks strictly increase in key
/// order. Best = most leading Fixed positions (cheapest probes); ties break
/// by [`Order::ALL`] position.
fn bind_atom(atom: &Atom, rank: &[(Var, usize)]) -> Option<(Order, [KeyInfo; 3])> {
    let mut best: Option<(usize, Order, [KeyInfo; 3])> = None;
    for order in Order::ALL {
        let Some(infos) = classify(atom, order, rank) else {
            continue;
        };
        let mut last_rank: Option<usize> = None;
        let mut feasible = true;
        for info in &infos {
            if let KeyInfo::Named(r) = info {
                if last_rank.is_some_and(|l| l >= *r) {
                    feasible = false;
                    break;
                }
                last_rank = Some(*r);
            }
        }
        if !feasible {
            continue;
        }
        let leading_fixed = infos
            .iter()
            .take_while(|i| matches!(i, KeyInfo::Fixed(_)))
            .count();
        let better = match &best {
            None => true,
            Some((score, _, _)) => leading_fixed > *score,
        };
        if better {
            best = Some((leading_fixed, order, infos));
        }
    }
    best.map(|(_, order, infos)| (order, infos))
}

/// Build a leapfrog-triejoin plan for `body`, or `None` when no global
/// variable order admits a feasible permutation binding for every atom
/// (the caller falls back to bind join). Rejects empty bodies, bodies with
/// no variables, and bodies containing repeated-variable atoms.
pub fn plan(body: &[Atom]) -> Option<WcojPlan> {
    if body.is_empty() || body.iter().any(repeats_var) {
        return None;
    }
    for var_order in varorder::candidate_orders(body) {
        let rank: Vec<(Var, usize)> = var_order
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (v, i))
            .collect();
        let mut bindings: Vec<(Order, [KeyInfo; 3])> = Vec::with_capacity(body.len());
        let mut ok = true;
        for atom in body {
            match bind_atom(atom, &rank) {
                Some(b) => bindings.push(b),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Some(assemble(body, var_order, bindings));
        }
    }
    None
}

/// Assemble the plan structures from per-atom feasible bindings.
fn assemble(body: &[Atom], var_order: Vec<Var>, bindings: Vec<(Order, [KeyInfo; 3])>) -> WcojPlan {
    let n_named = var_order.len();
    // Anonymous range levels are placed as *late* as possible: immediately
    // before the atom's next named level (so the range iteration nests
    // inside every prefix constraint it depends on), or at the very end if
    // the atom has no later named level.
    //   anon_before[r] — anon slots to insert just before named rank r;
    //   anon_end      — anon slots appended after every named slot.
    // Each entry: (atom, key position, lo, hi).
    let mut anon_before: Vec<Vec<(usize, usize, TermId, TermId)>> = vec![Vec::new(); n_named];
    let mut anon_end: Vec<(usize, usize, TermId, TermId)> = Vec::new();
    for (a, (_, infos)) in bindings.iter().enumerate() {
        for (kp, info) in infos.iter().enumerate() {
            if let KeyInfo::Range(lo, hi) = info {
                let next_named = infos[kp + 1..].iter().find_map(|i| match i {
                    KeyInfo::Named(r) => Some(*r),
                    _ => None,
                });
                match next_named {
                    Some(r) => anon_before[r].push((a, kp, *lo, *hi)),
                    None => anon_end.push((a, kp, *lo, *hi)),
                }
            }
        }
    }
    // Lay out slots: for each named rank, first its pending anon slots,
    // then the named slot itself; trailing anons last.
    let mut slots: Vec<Slot> = Vec::new();
    let mut named_slots: Vec<usize> = Vec::with_capacity(n_named);
    // level_slot[atom][kp] = slot index of that open level.
    let mut level_slot: Vec<[Option<usize>; 3]> = vec![[None; 3]; body.len()];
    let push_anon = |entries: &[(usize, usize, TermId, TermId)],
                     slots: &mut Vec<Slot>,
                     level_slot: &mut Vec<[Option<usize>; 3]>| {
        for &(a, kp, lo, hi) in entries {
            level_slot[a][kp] = Some(slots.len());
            slots.push(Slot {
                kind: SlotKind::Range { lo, hi },
                participants: vec![(a, kp)],
            });
        }
    };
    for (r, v) in var_order.iter().enumerate() {
        push_anon(&anon_before[r], &mut slots, &mut level_slot);
        let mut participants: Vec<(usize, usize)> = Vec::new();
        for (a, (_, infos)) in bindings.iter().enumerate() {
            for (kp, info) in infos.iter().enumerate() {
                if matches!(info, KeyInfo::Named(rr) if *rr == r) {
                    participants.push((a, kp));
                }
            }
        }
        named_slots.push(slots.len());
        for &(a, kp) in &participants {
            level_slot[a][kp] = Some(slots.len());
        }
        slots.push(Slot {
            kind: SlotKind::Named(v.clone()),
            participants,
        });
    }
    push_anon(&anon_end, &mut slots, &mut level_slot);

    let atoms: Vec<AtomPlan> = bindings
        .iter()
        .zip(body)
        .enumerate()
        .map(|(a, ((order, infos), atom))| {
            let mut levels = [LevelBinding::Fixed(TermId(0)); 3];
            for (kp, info) in infos.iter().enumerate() {
                levels[kp] = match info {
                    KeyInfo::Fixed(c) => LevelBinding::Fixed(*c),
                    KeyInfo::Named(_) | KeyInfo::Range(..) => match level_slot[a][kp] {
                        Some(s) => LevelBinding::Slot(s),
                        None => {
                            debug_assert!(false, "open level without a slot");
                            LevelBinding::Fixed(TermId(0))
                        }
                    },
                };
            }
            AtomPlan {
                order: *order,
                levels,
                p_route: atom.p.as_const(),
            }
        })
        .collect();
    debug_assert!(atoms.iter().all(|ap| {
        // Per-atom slot indexes strictly increase with key position.
        let mut last: Option<usize> = None;
        ap.levels.iter().all(|l| match l {
            LevelBinding::Fixed(_) => true,
            LevelBinding::Slot(s) => {
                let ok = last.is_none_or(|l| l < *s);
                last = Some(*s);
                ok
            }
        })
    }));
    WcojPlan {
        slots,
        atoms,
        var_order,
        named_slots,
    }
}

/// Resolve the trie view (sorted permutation index) each atom reads, or
/// `None` when the source cannot expose one for some atom (e.g. a
/// wildcard-predicate atom over a multi-shard store — the atoms span
/// shards).
pub(crate) fn tries<'a>(
    source: &'a dyn TripleSource,
    plan: &WcojPlan,
) -> Option<Vec<&'a SortedIndex>> {
    plan.atoms
        .iter()
        .map(|ap| source.trie_view(ap.p_route).map(|s| s.index(ap.order)))
        .collect()
}

/// Exact `op.lfj.*` counters, accumulated locally and flushed once —
/// including on the error path, so budget aborts still report their work.
#[derive(Debug, Default, Clone, Copy)]
struct LfjCounters {
    seeks: u64,
    next: u64,
    rows: u64,
}

impl LfjCounters {
    fn flush(self, obs: &Obs) {
        obs.add("op.lfj.seeks", self.seeks);
        obs.add("op.lfj.next", self.next);
        obs.add("op.lfj.rows", self.rows);
    }
}

/// The leapfrog driver: per-atom probe keys + per-slot bindings over the
/// bound tries.
struct Driver<'a> {
    plan: &'a WcojPlan,
    tries: &'a [&'a SortedIndex],
    /// Probe key per atom; Fixed positions prefilled, open positions
    /// written when their slot binds.
    keys: Vec<[TermId; 3]>,
    /// Bound value per slot (valid for slots above the recursion point).
    bindings: Vec<TermId>,
    counters: LfjCounters,
}

impl<'a> Driver<'a> {
    fn new(plan: &'a WcojPlan, tries: &'a [&'a SortedIndex]) -> Driver<'a> {
        let keys = plan
            .atoms
            .iter()
            .map(|ap| {
                let mut k = [TermId(0); 3];
                for (kp, l) in ap.levels.iter().enumerate() {
                    if let LevelBinding::Fixed(c) = l {
                        k[kp] = *c;
                    }
                }
                k
            })
            .collect();
        Driver {
            plan,
            tries,
            keys,
            bindings: vec![TermId(0); plan.slots.len()],
            counters: LfjCounters::default(),
        }
    }

    /// Least value `m ≥ v` at key position `kp` of atom `a` such that some
    /// key matches the atom's probe prefix, `m` at `kp`, and every
    /// contiguous Fixed position directly after `kp`. `None` when exhausted.
    ///
    /// This is a probe-and-bump loop over the sorted run: each probe is one
    /// `seek_from`; a returned key either matches (hit), disagrees at `kp`
    /// (jump `v` forward to it), or matches `kp` but disagrees in the Fixed
    /// suffix (bump `v` by one).
    fn seek_match(&mut self, a: usize, kp: usize, mut v: TermId) -> Option<TermId> {
        let ap = &self.plan.atoms[a];
        // Contiguous Fixed suffix directly after kp, foldable into the probe.
        let suffix_len = ap.levels[kp + 1..]
            .iter()
            .take_while(|l| matches!(l, LevelBinding::Fixed(_)))
            .count();
        loop {
            let mut probe = [TermId(0); 3];
            probe[..kp].copy_from_slice(&self.keys[a][..kp]);
            probe[kp] = v;
            probe[kp + 1..kp + 1 + suffix_len]
                .copy_from_slice(&self.keys[a][kp + 1..kp + 1 + suffix_len]);
            self.counters.seeks += 1;
            let r = self.tries[a].seek_from(&probe)?;
            if r[..kp] != self.keys[a][..kp] {
                return None; // left the bound prefix: exhausted
            }
            let suffix_ok = r[kp + 1..kp + 1 + suffix_len] == probe[kp + 1..kp + 1 + suffix_len];
            if r[kp] == v && suffix_ok {
                return Some(v);
            }
            if r[kp] == v {
                // Right value, wrong Fixed suffix: bump to the next value.
                v = TermId(v.0.checked_add(1)?);
            } else {
                // seek_from never goes backward within the prefix.
                v = r[kp];
                if suffix_ok {
                    return Some(v);
                }
            }
        }
    }

    /// Leapfrog intersection at `slot` starting from `v`: cycle passes over
    /// the participants until one full pass leaves `v` unchanged (all
    /// agree) or any participant is exhausted.
    fn leapfrog(&mut self, slot: usize, mut v: TermId) -> Option<TermId> {
        let n = self.plan.slots[slot].participants.len();
        debug_assert!(n > 0, "slot with no participants");
        if n == 0 {
            return None;
        }
        loop {
            let start = v;
            for pi in 0..n {
                let (a, kp) = self.plan.slots[slot].participants[pi];
                v = self.seek_match(a, kp, v)?;
            }
            if v == start {
                return Some(v);
            }
        }
    }

    /// Starting value and exclusive clamp for a slot.
    fn slot_bounds(&self, slot: usize) -> (TermId, Option<TermId>) {
        match self.plan.slots[slot].kind {
            SlotKind::Named(_) => (TermId(0), None),
            SlotKind::Range { lo, hi } => (lo, Some(hi)),
        }
    }

    /// Bind `m` at `slot` (write probe keys + binding) and descend.
    fn bind_and_descend(
        &mut self,
        slot: usize,
        m: TermId,
        out: &mut Relation,
        budget: Option<usize>,
    ) -> Result<()> {
        for pi in 0..self.plan.slots[slot].participants.len() {
            let (a, kp) = self.plan.slots[slot].participants[pi];
            self.keys[a][kp] = m;
        }
        self.bindings[slot] = m;
        self.recurse(slot + 1, out, budget)
    }

    /// Enumerate all bindings for slots `s..`, emitting rows at full depth.
    fn recurse(&mut self, s: usize, out: &mut Relation, budget: Option<usize>) -> Result<()> {
        if s == self.plan.slots.len() {
            let row: Vec<TermId> = self
                .plan
                .named_slots
                .iter()
                .map(|&ns| self.bindings[ns])
                .collect();
            out.push_row(&row)?;
            self.counters.rows += 1;
            if let Some(b) = budget {
                if out.len() > b {
                    return Err(StorageError::RowBudgetExceeded { budget: b });
                }
            }
            return Ok(());
        }
        let (start, clamp) = self.slot_bounds(s);
        let mut v = start;
        loop {
            let Some(m) = self.leapfrog(s, v) else {
                return Ok(());
            };
            if clamp.is_some_and(|hi| m >= hi) {
                return Ok(());
            }
            self.bind_and_descend(s, m, out, budget)?;
            self.counters.next += 1;
            let Some(nv) = m.0.checked_add(1) else {
                return Ok(());
            };
            v = TermId(nv);
        }
    }

    /// All matching values of slot 0, for morsel staging. Counts the same
    /// seeks the sequential run would spend finding them, and one `next`
    /// per value (the sequential driver's descend count for slot 0).
    fn slot_values(&mut self, slot: usize) -> Vec<TermId> {
        let (start, clamp) = self.slot_bounds(slot);
        let mut out = Vec::new();
        let mut v = start;
        loop {
            let Some(m) = self.leapfrog(slot, v) else {
                return out;
            };
            if clamp.is_some_and(|hi| m >= hi) {
                return out;
            }
            out.push(m);
            let Some(nv) = m.0.checked_add(1) else {
                return out;
            };
            v = TermId(nv);
        }
    }
}

/// Fully-Fixed atoms (no open levels) are existence filters: one probe
/// each; any miss empties the result.
fn fixed_atoms_present(
    plan: &WcojPlan,
    tries: &[&SortedIndex],
    counters: &mut LfjCounters,
) -> bool {
    for (a, ap) in plan.atoms.iter().enumerate() {
        if ap
            .levels
            .iter()
            .all(|l| matches!(l, LevelBinding::Fixed(_)))
        {
            let mut probe = [TermId(0); 3];
            for (kp, l) in ap.levels.iter().enumerate() {
                if let LevelBinding::Fixed(c) = l {
                    probe[kp] = *c;
                }
            }
            counters.seeks += 1;
            match tries[a].seek_from(&probe) {
                Some(k) if k == probe => {}
                _ => return false,
            }
        }
    }
    true
}

/// Evaluate a leapfrog-triejoin plan over its bound tries. Output columns
/// are the plan's variable order; rows come out in lexicographic binding
/// order (sorted, duplicate-free per binding, but a final [`Relation::dedup`]
/// upstream still collapses projection duplicates).
pub(crate) fn eval(
    tries: &[&SortedIndex],
    plan: &WcojPlan,
    parallelism: Parallelism,
    row_budget: Option<usize>,
    obs: &Obs,
) -> Result<Relation> {
    obs.add("op.lfj.atoms", plan.atoms.len() as u64);
    let mut counters = LfjCounters::default();
    if !fixed_atoms_present(plan, tries, &mut counters) {
        counters.flush(obs);
        return Ok(Relation::empty(plan.var_order.clone()));
    }
    if plan.slots.is_empty() {
        // All atoms fully Fixed and present: one unit-ish row of no columns
        // cannot happen (plan() rejects var-free bodies), but stay total.
        counters.flush(obs);
        return Ok(Relation::empty(plan.var_order.clone()));
    }
    if let Parallelism::Morsels { size } = parallelism {
        return eval_morsels(tries, plan, size, counters, row_budget, obs);
    }
    let mut driver = Driver::new(plan, tries);
    driver.counters = counters;
    let mut out = Relation::empty(plan.var_order.clone());
    let res = driver.recurse(0, &mut out, row_budget);
    driver.counters.flush(obs);
    if let Err(StorageError::RowBudgetExceeded { .. }) = &res {
        obs.add("op.budget_abort", 1);
    }
    res?;
    Ok(out)
}

/// Morsel-parallel leapfrog: stage slot-0 values sequentially, chunk them,
/// and give each worker a private driver that re-binds each chunk value and
/// descends. Value-based splitting makes worker outputs disjoint and
/// order-stitchable — output and `op.lfj.*` counters are byte-identical to
/// the sequential run.
fn eval_morsels(
    tries: &[&SortedIndex],
    plan: &WcojPlan,
    size: usize,
    staged_counters: LfjCounters,
    row_budget: Option<usize>,
    obs: &Obs,
) -> Result<Relation> {
    let size = size.max(1);
    let mut stager = Driver::new(plan, tries);
    stager.counters = staged_counters;
    let values = stager.slot_values(0);
    // The staging pass spends the slot-0 seeks; record one `next` per value
    // to match the sequential driver's slot-0 descend count.
    stager.counters.next += values.len() as u64;
    let n_morsels = values.len().div_ceil(size).max(1);
    obs.add("op.morsel.count", n_morsels as u64);
    obs.add("op.morsel.rows", values.len() as u64);
    if n_morsels == 1 {
        obs.add("op.morsel.workers", 1);
        let mut driver = Driver::new(plan, tries);
        let mut out = Relation::empty(plan.var_order.clone());
        let mut res = Ok(());
        for &v in &values {
            res = driver.bind_and_descend(0, v, &mut out, row_budget);
            if res.is_err() {
                break;
            }
        }
        // Descend seeks/rows from the worker pass + staging seeks/next.
        let mut c = stager.counters;
        c.seeks += driver.counters.seeks;
        c.next += driver.counters.next;
        c.rows += driver.counters.rows;
        c.flush(obs);
        if let Err(StorageError::RowBudgetExceeded { .. }) = &res {
            obs.add("op.budget_abort", 1);
        }
        res?;
        return Ok(out);
    }
    let values = &values;
    let worker_counters: rdfref_sync::Mutex<LfjCounters> =
        rdfref_sync::Mutex::new(LfjCounters::default());
    let res = run_morsels(n_morsels, plan.var_order.clone(), obs, |m| {
        let lo = m * size;
        let hi = (lo + size).min(values.len());
        let mut driver = Driver::new(plan, tries);
        let mut out = Relation::empty(plan.var_order.clone());
        let mut res = Ok(());
        for &v in &values[lo..hi] {
            res = driver.bind_and_descend(0, v, &mut out, row_budget);
            if res.is_err() {
                break;
            }
        }
        {
            let mut c = worker_counters.lock();
            c.seeks += driver.counters.seeks;
            c.next += driver.counters.next;
            c.rows += driver.counters.rows;
        }
        res.map(|()| out)
    });
    let mut c = stager.counters;
    let wc = *worker_counters.lock();
    c.seeks += wc.seeks;
    c.next += wc.next;
    c.rows += wc.rows;
    c.flush(obs);
    if let Err(StorageError::RowBudgetExceeded { .. }) = &res {
        obs.add("op.budget_abort", 1);
    }
    let out = res?;
    if let Some(b) = row_budget {
        if out.len() > b {
            obs.add("op.budget_abort", 1);
            return Err(StorageError::RowBudgetExceeded { budget: b });
        }
    }
    Ok(out)
}

/// The arbitrated physical choice for a CQ body: the algorithm that will
/// actually run (never `Auto`), a human-readable reason, and the bound plan
/// when WCOJ was chosen.
#[derive(Debug, Clone)]
pub struct PhysicalChoice {
    /// The resolved algorithm (`BindJoin` or `Wcoj`, never `Auto`).
    pub algorithm: JoinAlgorithm,
    /// Why — cost-model verdict plus any fallback suffix.
    pub reason: String,
    /// The leapfrog plan, present iff `algorithm == Wcoj`.
    pub plan: Option<WcojPlan>,
}

/// Resolve the physical join algorithm for `body` on `source`: the single
/// source of truth shared by evaluator dispatch and `Explain`, so the
/// rendered plan always matches the executed one. `requested == Auto`
/// consults the cost model; a WCOJ verdict (requested or auto) still falls
/// back to bind join when no feasible trie binding exists or the source
/// cannot expose per-atom trie views.
pub fn physical_choice(
    source: &dyn TripleSource,
    stats: &Stats,
    requested: JoinAlgorithm,
    body: &[Atom],
) -> PhysicalChoice {
    let (want_wcoj, reason) = match requested {
        JoinAlgorithm::BindJoin => {
            return PhysicalChoice {
                algorithm: JoinAlgorithm::BindJoin,
                reason: "bind join requested".to_string(),
                plan: None,
            }
        }
        JoinAlgorithm::Wcoj => (true, "wcoj requested".to_string()),
        JoinAlgorithm::Auto => {
            let choice = CostModel::new(stats).choose_join_algorithm(body);
            (choice.algorithm == JoinAlgorithm::Wcoj, choice.reason)
        }
    };
    if !want_wcoj {
        return PhysicalChoice {
            algorithm: JoinAlgorithm::BindJoin,
            reason,
            plan: None,
        };
    }
    let Some(p) = plan(body) else {
        return PhysicalChoice {
            algorithm: JoinAlgorithm::BindJoin,
            reason: format!("{reason}; fell back to bind join (no feasible trie binding)"),
            plan: None,
        };
    };
    if tries(source, &p).is_none() {
        return PhysicalChoice {
            algorithm: JoinAlgorithm::BindJoin,
            reason: format!("{reason}; fell back to bind join (atoms span shards)"),
            plan: None,
        };
    }
    PhysicalChoice {
        algorithm: JoinAlgorithm::Wcoj,
        reason,
        plan: Some(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use crate::store::{ShardedStore, Store};
    use rdfref_model::EncodedTriple;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    /// A small digraph with triangles: edges p over vertices 0..n.
    fn edge_store(edges: &[(u32, u32)], p: u32) -> Store {
        let triples: Vec<EncodedTriple> = edges
            .iter()
            .map(|&(s, o)| EncodedTriple::new(TermId(1000 + s), TermId(p), TermId(1000 + o)))
            .collect();
        Store::from_triples(&triples)
    }

    fn run_wcoj(store: &Store, body: &[Atom], parallelism: Parallelism) -> (Relation, WcojPlan) {
        let p = plan(body).expect("plan");
        let t = tries(store, &p).expect("tries");
        let rel = eval(&t, &p, parallelism, None, &Obs::disabled()).expect("eval");
        (rel, p)
    }

    /// Oracle: bind-join evaluation of the same body projected to the
    /// plan's variable order, sorted.
    fn oracle(store: &Store, body: &[Atom], out: &[Var]) -> Vec<Vec<TermId>> {
        let stats = Stats::compute(store);
        let ev = Evaluator::new(store, &stats);
        let cq = rdfref_query::ast::Cq::new(out.to_vec(), body.to_vec()).expect("cq");
        let mut metrics = crate::exec::ExecMetrics::default();
        let rel = ev.eval_cq(&cq, out, &mut metrics).expect("oracle eval");
        let mut rows = rel.to_rows();
        rows.sort();
        rows
    }

    fn sorted_rows(rel: &Relation) -> Vec<Vec<TermId>> {
        let mut rows = rel.to_rows();
        rows.sort();
        rows
    }

    #[test]
    fn triangle_matches_bind_join_oracle() {
        let edges: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 2),
            (0, 2), // triangle 0-1-2
            (1, 3),
            (3, 4),
            (1, 4), // triangle 1-3-4
            (2, 5),
            (5, 6), // dangling path
        ];
        let store = edge_store(&edges, 7);
        let p = TermId(7);
        let body = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("x"), p, v("z")),
        ];
        let (rel, pl) = run_wcoj(&store, &body, Parallelism::Off);
        let mut want = oracle(&store, &body, pl.var_order());
        want.dedup();
        assert_eq!(sorted_rows(&rel), want);
        assert_eq!(rel.len(), 2, "two triangles");
    }

    #[test]
    fn chain_and_star_match_oracle() {
        let edges: Vec<(u32, u32)> = (0..30u32).map(|i| (i % 6, (i * 7 + 1) % 11)).collect();
        let store = edge_store(&edges, 7);
        let p = TermId(7);
        let chain = vec![Atom::new(v("x"), p, v("y")), Atom::new(v("y"), p, v("z"))];
        let star = vec![
            Atom::new(v("h"), p, v("a")),
            Atom::new(v("h"), p, v("b")),
            Atom::new(v("h"), p, v("c")),
        ];
        for body in [chain, star] {
            let (rel, pl) = run_wcoj(&store, &body, Parallelism::Off);
            let mut want = oracle(&store, &body, pl.var_order());
            want.dedup();
            assert_eq!(sorted_rows(&rel), want);
            assert!(!rel.is_empty());
        }
    }

    #[test]
    fn range_atom_is_one_bounded_trie_level() {
        // type ∈ [lo, hi) over a class hierarchy interval: POS run clamp.
        let t = 3u32; // rdf:type
        let mut triples = Vec::new();
        for i in 0..20u32 {
            // instance 100+i has class 50 + i%8
            triples.push(EncodedTriple::new(
                TermId(100 + i),
                TermId(t),
                TermId(50 + i % 8),
            ));
            // and an edge to another instance
            triples.push(EncodedTriple::new(
                TermId(100 + i),
                TermId(7),
                TermId(100 + (i + 1) % 20),
            ));
        }
        let store = Store::from_triples(&triples);
        let body = vec![
            Atom::new(v("x"), TermId(t), PTerm::Range(TermId(52), TermId(55))),
            Atom::new(v("x"), TermId(7), v("y")),
        ];
        let p = plan(&body).expect("range body plans");
        let tr = tries(&store, &p).expect("tries");
        let registry = std::sync::Arc::new(rdfref_obs::MetricsRegistry::default());
        let obs = Obs::collecting(registry.clone());
        let rel = eval(&tr, &p, Parallelism::Off, None, &obs).unwrap();
        // Classes 52..55 are i%8 in {2,3,4}: instances 100+{2,3,4,10,11,12,18,19}
        // minus none → 8 x-bindings, each with exactly one outgoing edge.
        assert_eq!(rel.len(), 8);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("op.lfj.atoms"), 2);
        assert!(snap.counter("op.lfj.seeks") > 0);
        // One anonymous slot + x + y.
        assert_eq!(p.var_order().len(), 2);
    }

    #[test]
    fn morsel_output_and_counters_match_sequential() {
        let edges: Vec<(u32, u32)> = (0..60u32)
            .flat_map(|i| [(i % 9, (i * 5 + 2) % 13), ((i * 3) % 13, i % 9)])
            .collect();
        let store = edge_store(&edges, 7);
        let p = TermId(7);
        let body = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("x"), p, v("z")),
        ];
        let run = |par: Parallelism| {
            let registry = std::sync::Arc::new(rdfref_obs::MetricsRegistry::default());
            let obs = Obs::collecting(registry.clone());
            let pl = plan(&body).unwrap();
            let tr = tries(&store, &pl).unwrap();
            let rel = eval(&tr, &pl, par, None, &obs).unwrap();
            let snap = registry.snapshot();
            (
                rel.to_rows(),
                snap.counter("op.lfj.seeks"),
                snap.counter("op.lfj.next"),
                snap.counter("op.lfj.rows"),
            )
        };
        let seq = run(Parallelism::Off);
        for size in [1, 3, 64] {
            let par = run(Parallelism::Morsels { size });
            assert_eq!(seq, par, "morsel size {size}");
        }
    }

    #[test]
    fn sharded_wildcard_predicate_has_no_trie_view() {
        let triples: Vec<EncodedTriple> = (0..40u32)
            .map(|i| EncodedTriple::new(TermId(i), TermId(5 + i % 4), TermId(100 + i)))
            .collect();
        let sharded = ShardedStore::from_triples(&triples, 4);
        // Wildcard predicate: structurally feasible (SPO for every atom
        // under the order x, p, y, z, w) but unroutable on a multi-shard
        // store — trie_view(None) has no single shard to answer from.
        let body = vec![
            Atom::new(v("x"), v("p"), v("y")),
            Atom::new(v("x"), v("p"), v("z")),
            Atom::new(v("x"), v("p"), v("w")),
        ];
        let pl = plan(&body).expect("plans structurally");
        assert!(tries(&sharded, &pl).is_none(), "atoms span shards");
        // physical_choice degrades gracefully even when Wcoj is forced.
        let stats = Stats::compute(&Store::from_triples(&triples));
        let choice = physical_choice(&sharded, &stats, JoinAlgorithm::Wcoj, &body);
        assert_eq!(choice.algorithm, JoinAlgorithm::BindJoin);
        assert!(choice.reason.contains("span shards"), "{}", choice.reason);
    }

    #[test]
    fn constant_predicate_body_routes_on_sharded_store() {
        let triples: Vec<EncodedTriple> = (0..40u32)
            .map(|i| EncodedTriple::new(TermId(1000 + i % 8), TermId(7), TermId(1000 + i % 5)))
            .collect();
        let sharded = ShardedStore::from_triples(&triples, 4);
        let single = Store::from_triples(&triples);
        let p = TermId(7);
        let body = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("x"), p, v("z")),
        ];
        let pl = plan(&body).unwrap();
        let tr_sharded = tries(&sharded, &pl).expect("constant p routes");
        let tr_single = tries(&single, &pl).expect("single trie");
        let a = eval(&tr_sharded, &pl, Parallelism::Off, None, &Obs::disabled()).unwrap();
        let b = eval(&tr_single, &pl, Parallelism::Off, None, &Obs::disabled()).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn fully_fixed_atom_filters_existence() {
        let store = edge_store(&[(0, 1), (1, 2)], 7);
        let p = TermId(7);
        let present = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(TermId(1000), p, TermId(1001)), // exists
        ];
        let absent = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(TermId(1000), p, TermId(1002)), // missing edge
        ];
        let (rel, _) = run_wcoj(&store, &present, Parallelism::Off);
        assert_eq!(rel.len(), 2);
        let (rel, _) = run_wcoj(&store, &absent, Parallelism::Off);
        assert!(rel.is_empty());
    }

    #[test]
    fn repeated_var_atom_declines_to_plan() {
        let p = TermId(7);
        let body = vec![Atom::new(v("x"), p, v("x")), Atom::new(v("x"), p, v("y"))];
        assert!(plan(&body).is_none());
        assert!(plan(&[]).is_none());
    }

    #[test]
    fn row_budget_aborts_with_counters_flushed() {
        let edges: Vec<(u32, u32)> = (0..20u32).flat_map(|i| [(0, i), (i, 0)]).collect();
        let store = edge_store(&edges, 7);
        let p = TermId(7);
        let body = vec![Atom::new(v("x"), p, v("y")), Atom::new(v("y"), p, v("z"))];
        let pl = plan(&body).unwrap();
        let tr = tries(&store, &pl).unwrap();
        let registry = std::sync::Arc::new(rdfref_obs::MetricsRegistry::default());
        let obs = Obs::collecting(registry.clone());
        let err = eval(&tr, &pl, Parallelism::Off, Some(3), &obs).unwrap_err();
        assert_eq!(err, StorageError::RowBudgetExceeded { budget: 3 });
        let snap = registry.snapshot();
        assert!(snap.counter("op.lfj.rows") >= 4);
        assert!(snap.counter("op.lfj.seeks") > 0);
    }

    #[test]
    fn plan_renders_trie_bindings() {
        let p = TermId(7);
        let body = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("x"), TermId(3), PTerm::Range(TermId(10), TermId(20))),
        ];
        let pl = plan(&body).expect("plan");
        let rendered = pl.atom_renderings();
        assert_eq!(rendered.len(), 2);
        assert!(
            rendered[0].contains("?x") && rendered[0].contains("#7"),
            "{rendered:?}"
        );
        assert!(rendered[1].contains("[10,20)"), "{rendered:?}");
    }
}
