//! Physical operators: pattern scans and execution metrics.
//!
//! Joins and projections live on [`Relation`];
//! this module contributes the store-facing scan operator and the metrics
//! the experiments report (intermediate result sizes — the quantities the
//! paper quotes for Example 1, e.g. "33,328,108 results each").

use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::store::{Bound, RangePattern, TripleSource};
use rdfref_model::{EncodedTriple, TermId};
use rdfref_query::ast::{Atom, PTerm};
use rdfref_query::Var;
use std::time::Duration;

/// One recorded execution step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStep {
    /// Operator label, e.g. `scan(?x type C)` or `join`.
    pub label: String,
    /// Rows produced by the operator.
    pub rows: usize,
    /// Operator wall time. `Duration::ZERO` unless a recorder was installed
    /// when the step ran (timing is only measured under observation).
    pub wall: Duration,
}

/// Execution metrics: per-operator row counts and aggregates.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Ordered operator trace.
    pub steps: Vec<ExecStep>,
    /// Total rows emitted by scans.
    pub rows_scanned: usize,
    /// Largest intermediate relation observed.
    pub peak_intermediate: usize,
}

impl ExecMetrics {
    /// Record an operator's output size.
    pub fn record(&mut self, label: impl Into<String>, rows: usize) {
        self.record_timed(label, rows, Duration::ZERO);
    }

    /// Record an operator's output size together with its wall time.
    pub fn record_timed(&mut self, label: impl Into<String>, rows: usize, wall: Duration) {
        self.steps.push(ExecStep {
            label: label.into(),
            rows,
            wall,
        });
        self.peak_intermediate = self.peak_intermediate.max(rows);
    }

    /// Record a scan specifically (also counted in `rows_scanned`).
    pub fn record_scan(&mut self, label: impl Into<String>, rows: usize) {
        self.rows_scanned += rows;
        self.record(label, rows);
    }

    /// Record a timed scan (also counted in `rows_scanned`).
    pub fn record_scan_timed(&mut self, label: impl Into<String>, rows: usize, wall: Duration) {
        self.rows_scanned += rows;
        self.record_timed(label, rows, wall);
    }

    /// Merge metrics from a sub-evaluation (parallel union branches).
    pub fn absorb(&mut self, other: ExecMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.peak_intermediate = self.peak_intermediate.max(other.peak_intermediate);
        self.steps.extend(other.steps);
    }
}

/// Translate one pattern position into a scan bound.
fn bound_of(t: &PTerm) -> Bound {
    match t {
        PTerm::Var(_) => Bound::Any,
        PTerm::Const(c) => Bound::Const(*c),
        PTerm::Range(lo, hi) => Bound::Range(*lo, *hi),
    }
}

/// The compiled shape of one pattern scan: the index pattern, the output
/// columns (the atom's distinct variables in `s, p, o` position order)
/// with their source positions, and the equality filters induced by
/// repeated variables. Compiled once per atom and shared by the sequential
/// scan and by every morsel worker.
#[derive(Debug, Clone)]
pub(crate) struct ScanShape {
    pub(crate) pattern: RangePattern,
    pub(crate) columns: Vec<Var>,
    col_pos: Vec<usize>,
    eq_checks: Vec<(usize, usize)>, // (pos_a, pos_b) must be equal
}

#[inline]
fn position_of(t: &EncodedTriple, pos: usize) -> TermId {
    match pos {
        0 => t.s,
        1 => t.p,
        _ => t.o,
    }
}

impl ScanShape {
    pub(crate) fn of(atom: &Atom) -> ScanShape {
        let pattern = RangePattern {
            s: bound_of(&atom.s),
            p: bound_of(&atom.p),
            o: bound_of(&atom.o),
        };
        let mut columns: Vec<Var> = Vec::new();
        let mut col_pos: Vec<usize> = Vec::new();
        let mut eq_checks: Vec<(usize, usize)> = Vec::new();
        for (pos, t) in atom.positions().into_iter().enumerate() {
            if let PTerm::Var(v) = t {
                match columns.iter().position(|c| c == v) {
                    Some(existing) => eq_checks.push((col_pos[existing], pos)),
                    None => {
                        columns.push(v.clone());
                        col_pos.push(pos);
                    }
                }
            }
        }
        ScanShape {
            pattern,
            columns,
            col_pos,
            eq_checks,
        }
    }

    /// Project one matching triple into `rel` if it passes the
    /// repeated-variable filters. `row_buf` is caller-provided scratch so
    /// the hot loop never allocates.
    pub(crate) fn emit(
        &self,
        t: &EncodedTriple,
        row_buf: &mut Vec<TermId>,
        rel: &mut Relation,
    ) -> Result<()> {
        if self
            .eq_checks
            .iter()
            .all(|&(a, b)| position_of(t, a) == position_of(t, b))
        {
            row_buf.clear();
            row_buf.extend(self.col_pos.iter().map(|&p| position_of(t, p)));
            rel.push_row(row_buf)?;
        }
        Ok(())
    }
}

/// Scan one triple pattern into a relation whose columns are the atom's
/// distinct variables in `s, p, o` position order. Constants and id
/// intervals constrain the index scan (intervals bind no column); repeated
/// variables become equality filters.
pub fn scan_atom(source: &dyn TripleSource, atom: &Atom) -> Result<Relation> {
    let shape = ScanShape::of(atom);
    let mut rel = Relation::empty(shape.columns.clone());
    let mut row: Vec<TermId> = Vec::with_capacity(shape.columns.len());
    // `scan_into`'s callback cannot propagate errors, so a push failure is
    // captured here and surfaced after the scan completes.
    let mut push_err: Option<StorageError> = None;
    source.scan_range_into(&shape.pattern, &mut |t| {
        if push_err.is_none() {
            if let Err(e) = shape.emit(&t, &mut row, &mut rel) {
                push_err = Some(e);
            }
        }
    });
    match push_err {
        Some(e) => Err(e),
        None => Ok(rel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use rdfref_model::{Dictionary, EncodedTriple, Term};

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    fn fixture() -> (Store, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = ["a", "b", "p"]
            .iter()
            .map(|n| d.intern(&Term::iri(*n)))
            .collect();
        let (a, b, p) = (ids[0], ids[1], ids[2]);
        let store = Store::from_triples(&[
            EncodedTriple::new(a, p, b),
            EncodedTriple::new(a, p, a), // self-loop
            EncodedTriple::new(b, p, a),
        ]);
        (store, ids)
    }

    #[test]
    fn scan_binds_variables_in_position_order() {
        let (store, ids) = fixture();
        let rel = scan_atom(&store, &Atom::new(v("x"), ids[2], v("y"))).unwrap();
        assert_eq!(rel.columns(), &[v("x"), v("y")]);
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn scan_with_constant_filters() {
        let (store, ids) = fixture();
        let rel = scan_atom(&store, &Atom::new(ids[0], ids[2], v("y"))).unwrap();
        assert_eq!(rel.columns(), &[v("y")]);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn repeated_variable_is_equality_filter() {
        let (store, ids) = fixture();
        // (?x p ?x) matches only the self-loop.
        let rel = scan_atom(&store, &Atom::new(v("x"), ids[2], v("x"))).unwrap();
        assert_eq!(rel.columns(), &[v("x")]);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0), &[ids[0]]);
    }

    #[test]
    fn all_constant_atom_yields_zero_column_rows() {
        let (store, ids) = fixture();
        let rel = scan_atom(&store, &Atom::new(ids[0], ids[2], ids[1])).unwrap();
        assert_eq!(rel.arity(), 0);
        assert_eq!(rel.len(), 1); // matched: acts as a "true" unit row
        let rel2 = scan_atom(&store, &Atom::new(ids[1], ids[2], ids[1])).unwrap();
        assert!(rel2.is_empty()); // no match: "false"
    }

    #[test]
    fn variable_property_scans_everything() {
        let (store, _) = fixture();
        let rel = scan_atom(&store, &Atom::new(v("s"), v("p"), v("o"))).unwrap();
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn metrics_aggregate() {
        let mut m = ExecMetrics::default();
        m.record_scan("scan A", 10);
        m.record("join", 50);
        let mut m2 = ExecMetrics::default();
        m2.record_scan("scan B", 7);
        m2.record("join", 100);
        m.absorb(m2);
        assert_eq!(m.rows_scanned, 17);
        assert_eq!(m.peak_intermediate, 100);
        assert_eq!(m.steps.len(), 4);
    }
}
