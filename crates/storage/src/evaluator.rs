//! Evaluation of CQs, UCQs and JUCQs against a store.
//!
//! Mirrors how the demo's RDBMS back-ends evaluate reformulations:
//! * a CQ runs as a left-deep chain of hash joins over index scans, in the
//!   greedy order chosen by the cost model (so estimates model the actual
//!   plan);
//! * a UCQ is the deduplicated union of its disjuncts, optionally evaluated
//!   on parallel threads (the RDBMSs the paper uses parallelize unions);
//! * a JUCQ joins its fragments' UCQ results on shared column names and
//!   projects the query head — the "query answering strategy" induced by a
//!   cover (§4).
//!
//! All evaluations are guarded by an optional *row budget*: exceeding it
//! aborts with [`StorageError::RowBudgetExceeded`], reproducing the paper's
//! "could not be evaluated in our experimental setting" outcome for
//! pathological reformulations.

use crate::cost::CostModel;
use crate::error::{Result, StorageError};
use crate::exec::{scan_atom, ExecMetrics};
use crate::morsel;
use crate::relation::Relation;
use crate::stats::Stats;
use crate::store::{IdPattern, TripleSource};
use rdfref_model::TermId;
use rdfref_obs::Obs;
use rdfref_query::ast::{Cq, Jucq, PTerm, Ucq};
use rdfref_query::Var;

/// Default morsel size for [`Parallelism::Morsels`]: large enough to
/// amortize scheduling, small enough that skewed scans still split into
/// many work units.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Intra-query parallelism policy.
///
/// * `Off` — fully sequential evaluation (the default).
/// * `Unions` — large UCQ unions fan their disjuncts out over a worker
///   pool (the RDBMSs the paper benchmarks parallelize unions).
/// * `Morsels { size }` — scans and bind-joins split their input into
///   fixed-size morsels that workers claim off a shared counter
///   (work-stealing self-scheduling); output order is preserved by
///   stitching partial buffers back in morsel order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Parallelism {
    /// Sequential evaluation.
    #[default]
    Off,
    /// Parallelize large UCQ unions across disjuncts.
    Unions,
    /// Morsel-driven parallel scans and bind-joins.
    Morsels {
        /// Rows per morsel (clamped to at least 1).
        size: usize,
    },
}

impl Parallelism {
    /// Morsel-driven parallelism with the default morsel size.
    pub fn morsels() -> Self {
        Parallelism::Morsels {
            size: DEFAULT_MORSEL_SIZE,
        }
    }
}

/// Physical join algorithm policy for CQ bodies.
///
/// * `BindJoin` — the classic left-deep chain of index-nested-loop /
///   hash joins (the default; what the paper's RDBMS back-ends run).
/// * `Wcoj` — the worst-case-optimal leapfrog triejoin of
///   [`crate::wcoj`]; falls back to bind join per-CQ when no feasible
///   trie binding exists (repeated-variable atoms, atoms spanning
///   shards).
/// * `Auto` — the cost model picks per CQ: WCOJ for cyclic and big-star
///   bodies, bind join otherwise
///   ([`crate::cost::CostModel::choose_join_algorithm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum JoinAlgorithm {
    /// Left-deep bind-join / hash-join chains (the classic evaluator).
    #[default]
    BindJoin,
    /// Worst-case-optimal leapfrog triejoin over the permutation indexes.
    Wcoj,
    /// Cost-model choice per CQ body.
    Auto,
}

/// The evaluation engine: a triple source, its statistics, and execution
/// limits.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    /// The triple source to evaluate against (a single [`crate::Store`] or
    /// a sharded union view).
    pub store: &'a dyn TripleSource,
    /// Statistics driving join ordering.
    pub stats: &'a Stats,
    /// Abort when any intermediate relation exceeds this many rows.
    pub row_budget: Option<usize>,
    /// Intra-query parallelism policy.
    pub parallelism: Parallelism,
    /// Physical join algorithm policy.
    pub join_algorithm: JoinAlgorithm,
    /// Observability sink; disabled by default (one branch per event).
    pub obs: Obs,
}

/// Unions with at least this many disjuncts are parallelized when
/// [`Evaluator::parallelism`] is [`Parallelism::Unions`].
const PARALLEL_UNION_THRESHOLD: usize = 16;

impl<'a> Evaluator<'a> {
    /// A sequential evaluator without a row budget.
    pub fn new(store: &'a dyn TripleSource, stats: &'a Stats) -> Self {
        Evaluator {
            store,
            stats,
            row_budget: None,
            parallelism: Parallelism::Off,
            join_algorithm: JoinAlgorithm::BindJoin,
            obs: Obs::disabled(),
        }
    }

    /// Same evaluator, recording into `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Record a leaf scan, distinguishing interval range scans from exact
    /// scans (separate `op.range_scan.*` counters and trace labels).
    fn record_scan(
        &self,
        atom: &rdfref_query::ast::Atom,
        idx: usize,
        rows: usize,
        wall: std::time::Duration,
        metrics: &mut ExecMetrics,
    ) {
        if atom.has_range() {
            metrics.record_scan_timed(format!("range-scan t{}", idx + 1), rows, wall);
            self.obs.add("op.range_scan.count", 1);
            self.obs.add("op.range_scan.rows", rows as u64);
        } else {
            metrics.record_scan_timed(format!("scan t{}", idx + 1), rows, wall);
            self.obs.add("op.scan.count", 1);
            self.obs.add("op.scan.rows", rows as u64);
        }
    }

    fn check_budget(&self, rows: usize) -> Result<()> {
        match self.row_budget {
            Some(budget) if rows > budget => {
                self.obs.add("op.budget_abort", 1);
                Err(StorageError::RowBudgetExceeded { budget })
            }
            _ => Ok(()),
        }
    }

    /// Leaf scan dispatch: morsel-parallel when the policy asks for it.
    fn scan(&self, atom: &rdfref_query::ast::Atom) -> Result<Relation> {
        match self.parallelism {
            Parallelism::Morsels { size } => {
                morsel::scan_atom_morsels(self.store, atom, size, &self.obs)
            }
            _ => scan_atom(self.store, atom),
        }
    }

    /// Evaluate a CQ, naming the output columns `out` (aligned with the CQ
    /// head, which may contain bound constants). Output is deduplicated
    /// (set semantics).
    ///
    /// Atoms join in the cost model's greedy order. Each join is executed
    /// either as *scan + hash join* or — when the accumulated relation is
    /// small compared to the atom's estimated cardinality and shares a
    /// variable with it — as an *index nested-loop (bind) join* that probes
    /// the store per accumulated row. Bind joins are what make grouped
    /// covers efficient: the paper's `(t1,t3)` fragment probes the huge
    /// `rdf:type` relation only for the few degree-holders instead of
    /// scanning it (33,328,108 rows in the paper's setting).
    pub fn eval_cq(&self, cq: &Cq, out: &[Var], metrics: &mut ExecMetrics) -> Result<Relation> {
        if out.len() != cq.head.len() {
            return Err(StorageError::HeadMismatch {
                head: cq.head.len(),
                columns: out.len(),
            });
        }
        let _span = self.obs.span("eval.cq");
        let model = CostModel::new(self.stats);
        let mut acc = Relation::unit();
        // Physical dispatch: the arbitration in `wcoj::physical_choice` is
        // shared with `Explain`, so what runs is what gets rendered. A
        // `BindJoin` verdict (requested, cost-model, or fallback) keeps the
        // classic chain below byte-identical to before.
        let mut wcoj_done = false;
        if self.join_algorithm != JoinAlgorithm::BindJoin && !cq.body.is_empty() {
            let choice =
                crate::wcoj::physical_choice(self.store, self.stats, self.join_algorithm, &cq.body);
            if let Some(plan) = &choice.plan {
                if let Some(tries) = crate::wcoj::tries(self.store, plan) {
                    let sw = self.obs.stopwatch();
                    acc = crate::wcoj::eval(
                        &tries,
                        plan,
                        self.parallelism,
                        self.row_budget,
                        &self.obs,
                    )?;
                    metrics.record_timed(
                        format!("lfj({} atoms)", plan.atom_count()),
                        acc.len(),
                        sw.elapsed(),
                    );
                    wcoj_done = true;
                }
            }
        }
        if wcoj_done && acc.is_empty() {
            metrics.record("project+dedup", 0);
            return Ok(Relation::empty(out.to_vec()));
        }
        let mut first = true;
        for &idx in &model.order_atoms(&cq.body) {
            if wcoj_done {
                break;
            }
            let atom = &cq.body[idx];
            if first {
                let sw = self.obs.stopwatch();
                acc = self.scan(atom)?;
                self.record_scan(atom, idx, acc.len(), sw.elapsed(), metrics);
                first = false;
            } else {
                let atom_card = model.atom_cardinality(atom);
                let shares = atom.vars().any(|v| acc.column_index(v).is_some());
                if shares && (acc.len() as f64) * model.params.probe_cost_per_row < atom_card {
                    let sw = self.obs.stopwatch();
                    acc = match self.parallelism {
                        Parallelism::Morsels { size } => {
                            morsel::bind_join_morsels(self.store, &acc, atom, size, &self.obs)?
                        }
                        _ => bind_join(self.store, &acc, atom)?,
                    };
                    metrics.record_timed(
                        format!("bind-join t{}", idx + 1),
                        acc.len(),
                        sw.elapsed(),
                    );
                    self.obs.add("op.bind_join.count", 1);
                    self.obs.add("op.bind_join.rows", acc.len() as u64);
                } else {
                    let sw = self.obs.stopwatch();
                    let scanned = self.scan(atom)?;
                    self.record_scan(atom, idx, scanned.len(), sw.elapsed(), metrics);
                    self.check_budget(scanned.len())?;
                    let sw = self.obs.stopwatch();
                    acc = acc.natural_join(&scanned);
                    metrics.record_timed("join", acc.len(), sw.elapsed());
                    self.obs.add("op.join.count", 1);
                    self.obs.add("op.join.rows", acc.len() as u64);
                }
            }
            self.check_budget(acc.len())?;
            if acc.is_empty() {
                // Annihilated: the result is empty regardless of the
                // remaining atoms (whose columns were never materialized).
                metrics.record("project+dedup", 0);
                return Ok(Relation::empty(out.to_vec()));
            }
        }

        // Build the output relation from the head.
        let mut result = Relation::empty(out.to_vec());
        if cq.body.is_empty() {
            // Degenerate constant-only query over an empty body: one row.
            let consts: Option<Vec<TermId>> = cq.head.iter().map(|t| t.as_const()).collect();
            if let Some(row) = consts {
                result.push_row(&row)?;
                return Ok(result);
            }
        }
        let col_sources: Vec<HeadSource> = cq
            .head
            .iter()
            .map(|t| match t {
                PTerm::Const(c) => Ok(HeadSource::Const(*c)),
                // Reformulation binds head variables to constants only;
                // an interval can never reach a head position.
                PTerm::Range(..) => Err(StorageError::UnknownColumn("[range]".to_string())),
                PTerm::Var(v) => acc
                    .column_index(v)
                    .map(HeadSource::Column)
                    .ok_or_else(|| StorageError::UnknownColumn(v.name().to_string())),
            })
            .collect::<Result<_>>()?;
        let mut row: Vec<TermId> = Vec::with_capacity(out.len());
        for in_row in acc.rows() {
            row.clear();
            for src in &col_sources {
                row.push(match src {
                    HeadSource::Const(c) => *c,
                    HeadSource::Column(i) => in_row[*i],
                });
            }
            result.push_row(&row)?;
        }
        result.dedup();
        metrics.record("project+dedup", result.len());
        Ok(result)
    }

    /// Evaluate a UCQ as the deduplicated union of its disjuncts.
    pub fn eval_ucq(&self, ucq: &Ucq, out: &[Var], metrics: &mut ExecMetrics) -> Result<Relation> {
        let _span = self.obs.span("eval.ucq");
        let mut union = Relation::empty(out.to_vec());
        if self.parallelism == Parallelism::Unions && ucq.len() >= PARALLEL_UNION_THRESHOLD {
            let n_threads = rdfref_sync::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(ucq.len());
            let chunks: Vec<&[Cq]> = ucq.cqs.chunks(ucq.len().div_ceil(n_threads)).collect();
            self.obs.add("union.parallel.unions", 1);
            self.obs.add("union.parallel.workers", chunks.len() as u64);
            let results: Vec<Result<(Vec<Relation>, ExecMetrics)>> =
                rdfref_sync::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            scope.spawn(move || {
                                // Per-worker busy time feeds the utilization
                                // histogram; uneven chunks show up as spread.
                                let sw = self.obs.stopwatch();
                                let mut local_metrics = ExecMetrics::default();
                                let mut rels = Vec::with_capacity(chunk.len());
                                for cq in chunk {
                                    rels.push(self.eval_cq(cq, out, &mut local_metrics)?);
                                }
                                self.obs.observe(
                                    "union.worker.busy_us",
                                    sw.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                                );
                                Ok((rels, local_metrics))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or(Err(StorageError::WorkerPanicked)))
                        .collect()
                });
            for r in results {
                let (rels, local_metrics) = r?;
                metrics.absorb(local_metrics);
                for rel in rels {
                    for row in rel.rows() {
                        union.push_row(row)?;
                    }
                    self.check_budget(union.len())?;
                }
            }
        } else {
            for cq in &ucq.cqs {
                let rel = self.eval_cq(cq, out, metrics)?;
                for row in rel.rows() {
                    union.push_row(row)?;
                }
                self.check_budget(union.len())?;
            }
        }
        union.dedup();
        metrics.record("union-dedup", union.len());
        self.obs.add("op.union.rows", union.len() as u64);
        Ok(union)
    }

    /// Evaluate a JUCQ: fragments joined on shared column names, projected
    /// on the head, deduplicated.
    pub fn eval_jucq(&self, jucq: &Jucq, metrics: &mut ExecMetrics) -> Result<Relation> {
        let _span = self.obs.span("eval.jucq");
        let mut frag_rels: Vec<Relation> = Vec::with_capacity(jucq.fragments.len());
        for (i, frag) in jucq.fragments.iter().enumerate() {
            let rel = self.eval_ucq(&frag.ucq, &frag.columns, metrics)?;
            metrics.record(format!("fragment {i}"), rel.len());
            self.obs.add("op.fragment.rows", rel.len() as u64);
            frag_rels.push(rel);
        }
        if frag_rels.is_empty() {
            return Ok(Relation::empty(jucq.head.clone()));
        }

        // Join order: smallest first, preferring fragments that share a
        // column with the accumulated result (avoids cross products).
        let mut order: Vec<usize> = (0..frag_rels.len()).collect();
        order.sort_by_key(|&i| frag_rels[i].len());
        let mut remaining = order;
        let first = remaining.remove(0);
        let mut acc = frag_rels[first].clone();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&i| {
                    frag_rels[i]
                        .columns()
                        .iter()
                        .any(|c| acc.column_index(c).is_some())
                })
                .unwrap_or(0);
            let idx = remaining.remove(pos);
            acc = acc.natural_join(&frag_rels[idx]);
            metrics.record("fragment-join", acc.len());
            self.check_budget(acc.len())?;
            if acc.is_empty() {
                metrics.record("project+dedup", 0);
                return Ok(Relation::empty(jucq.head.clone()));
            }
        }
        let mut result = acc.project(&jucq.head)?;
        result.dedup();
        metrics.record("project+dedup", result.len());
        Ok(result)
    }
}

enum HeadSource {
    Const(TermId),
    Column(usize),
}

/// Per-position classification for a bind join: constant, bound (acc
/// column), free output variable (first occurrence), or equality check
/// (repetition).
#[derive(Debug, Clone, Copy)]
enum Pos {
    Const(TermId),
    InRange(TermId, TermId), // residual interval filter on the probe
    Bound(usize),            // index into the acc row
    Out(usize),              // index into the new-columns vector
    OutEq(usize),            // must equal an earlier Out position
}

/// The compiled shape of one bind join: the position classification and
/// the output schema. Compiled once per atom and shared by the sequential
/// probe loop and by every morsel worker.
#[derive(Debug, Clone)]
pub(crate) struct BindShape {
    spo: [Pos; 3],
    new_cols: Vec<Var>,
    out_columns: Vec<Var>,
}

impl BindShape {
    pub(crate) fn of(acc: &Relation, atom: &rdfref_query::ast::Atom) -> BindShape {
        let mut new_cols: Vec<Var> = Vec::new();
        let classify = |t: &PTerm, acc: &Relation, new_cols: &mut Vec<Var>| match t {
            PTerm::Const(c) => Pos::Const(*c),
            PTerm::Range(lo, hi) => Pos::InRange(*lo, *hi),
            PTerm::Var(v) => {
                if let Some(i) = acc.column_index(v) {
                    Pos::Bound(i)
                } else if let Some(j) = new_cols.iter().position(|c| c == v) {
                    Pos::OutEq(j)
                } else {
                    new_cols.push(v.clone());
                    Pos::Out(new_cols.len() - 1)
                }
            }
        };
        let spo = [
            classify(&atom.s, acc, &mut new_cols),
            classify(&atom.p, acc, &mut new_cols),
            classify(&atom.o, acc, &mut new_cols),
        ];
        let mut out_columns = acc.columns().to_vec();
        out_columns.extend(new_cols.iter().cloned());
        BindShape {
            spo,
            new_cols,
            out_columns,
        }
    }

    /// Output columns: `acc`'s columns followed by the atom's new variables
    /// (position order).
    pub(crate) fn out_columns(&self) -> &[Var] {
        &self.out_columns
    }

    /// Caller-provided scratch for [`BindShape::probe`] so the hot loop
    /// never allocates.
    pub(crate) fn scratch(&self) -> Vec<TermId> {
        vec![TermId(0); self.new_cols.len()]
    }

    /// Probe the source with one acc row's bindings, appending every match
    /// (acc row ++ new values) to `out`.
    pub(crate) fn probe(
        &self,
        source: &dyn TripleSource,
        row: &[TermId],
        new_vals: &mut [TermId],
        out: &mut Relation,
    ) -> Result<()> {
        let fixed = |pos: Pos| -> Option<TermId> {
            match pos {
                Pos::Const(c) => Some(c),
                Pos::Bound(i) => Some(row[i]),
                Pos::InRange(..) | Pos::Out(_) | Pos::OutEq(_) => None,
            }
        };
        let pattern = IdPattern {
            s: fixed(self.spo[0]),
            p: fixed(self.spo[1]),
            o: fixed(self.spo[2]),
        };
        // `scan_into`'s callback cannot propagate errors, so a push failure
        // is captured here and surfaced after the probe completes.
        let mut push_err: Option<StorageError> = None;
        source.scan_into(pattern, &mut |t| {
            let triple = [t.s, t.p, t.o];
            let mut ok = push_err.is_none();
            for (pos, val) in self.spo.iter().zip(triple) {
                match *pos {
                    Pos::Out(j) => new_vals[j] = val,
                    Pos::OutEq(j) if new_vals[j] != val => ok = false,
                    Pos::InRange(lo, hi) if !(lo <= val && val < hi) => ok = false,
                    _ => {}
                }
            }
            if ok {
                let mut full: Vec<TermId> = Vec::with_capacity(row.len() + new_vals.len());
                full.extend_from_slice(row);
                full.extend_from_slice(new_vals);
                if let Err(e) = out.push_row(&full) {
                    push_err = Some(e);
                }
            }
        });
        match push_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Index nested-loop join: for every row of `acc`, probe the store with the
/// atom's pattern under that row's bindings. Output columns: `acc`'s columns
/// followed by the atom's new variables (position order).
fn bind_join(
    source: &dyn TripleSource,
    acc: &Relation,
    atom: &rdfref_query::ast::Atom,
) -> Result<Relation> {
    let shape = BindShape::of(acc, atom);
    let mut out = Relation::empty(shape.out_columns().to_vec());
    let mut scratch = shape.scratch();
    for row in acc.rows() {
        shape.probe(source, row, &mut scratch, &mut out)?;
    }
    Ok(out)
}

/// Convenience: evaluate a CQ whose head is all variables.
pub fn eval_cq(
    store: &dyn TripleSource,
    stats: &Stats,
    cq: &Cq,
) -> Result<(Relation, ExecMetrics)> {
    let out = head_names(cq);
    let mut metrics = ExecMetrics::default();
    let rel = Evaluator::new(store, stats).eval_cq(cq, &out, &mut metrics)?;
    Ok((rel, metrics))
}

/// Convenience: evaluate a UCQ using the first member's head names.
pub fn eval_ucq(
    store: &dyn TripleSource,
    stats: &Stats,
    ucq: &Ucq,
) -> Result<(Relation, ExecMetrics)> {
    let out = ucq.cqs.first().map(head_names).unwrap_or_default();
    let mut metrics = ExecMetrics::default();
    let rel = Evaluator::new(store, stats).eval_ucq(ucq, &out, &mut metrics)?;
    Ok((rel, metrics))
}

/// Convenience: evaluate a JUCQ.
pub fn eval_jucq(
    store: &dyn TripleSource,
    stats: &Stats,
    jucq: &Jucq,
) -> Result<(Relation, ExecMetrics)> {
    let mut metrics = ExecMetrics::default();
    let rel = Evaluator::new(store, stats).eval_jucq(jucq, &mut metrics)?;
    Ok((rel, metrics))
}

/// Column names for a CQ head: variables keep their names; bound constant
/// positions get synthetic `_col{i}` names.
pub fn head_names(cq: &Cq) -> Vec<Var> {
    cq.head
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            PTerm::Var(v) => v.clone(),
            PTerm::Const(_) | PTerm::Range(..) => Var::new(format!("_col{i}")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use rdfref_model::dictionary::ID_RDF_TYPE;
    use rdfref_model::{Dictionary, EncodedTriple, Term};
    use rdfref_query::ast::{Atom, Fragment};

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    /// Store: a small social graph.
    /// knows: a→b, b→c, a→c; type: a:Person, b:Person, c:Robot.
    fn fixture() -> (Store, Stats, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = ["a", "b", "c", "knows", "Person", "Robot"]
            .iter()
            .map(|n| d.intern(&Term::iri(*n)))
            .collect();
        let (a, b, c, knows, person, robot) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let store = Store::from_triples(&[
            EncodedTriple::new(a, knows, b),
            EncodedTriple::new(b, knows, c),
            EncodedTriple::new(a, knows, c),
            EncodedTriple::new(a, ID_RDF_TYPE, person),
            EncodedTriple::new(b, ID_RDF_TYPE, person),
            EncodedTriple::new(c, ID_RDF_TYPE, robot),
        ]);
        let stats = Stats::compute(&store);
        (store, stats, ids)
    }

    #[test]
    fn single_atom_cq() {
        let (store, stats, ids) = fixture();
        let cq = Cq::new(
            vec![v("x"), v("y")],
            vec![Atom::new(v("x"), ids[3], v("y"))],
        )
        .unwrap();
        let (rel, metrics) = eval_cq(&store, &stats, &cq).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(metrics.rows_scanned, 3);
    }

    #[test]
    fn two_atom_join() {
        let (store, stats, ids) = fixture();
        // Who does a person know? q(x,y) :- (x knows y), (x type Person)
        let cq = Cq::new(
            vec![v("x"), v("y")],
            vec![
                Atom::new(v("x"), ids[3], v("y")),
                Atom::new(v("x"), ID_RDF_TYPE, ids[4]),
            ],
        )
        .unwrap();
        let (rel, _) = eval_cq(&store, &stats, &cq).unwrap();
        assert_eq!(rel.len(), 3); // a→b, a→c, b→c (a and b are persons)
    }

    #[test]
    fn triangle_join_projection() {
        let (store, stats, ids) = fixture();
        // q(x) :- (x knows y), (y knows z), (x knows z): only x=a works.
        let cq = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), ids[3], v("y")),
                Atom::new(v("y"), ids[3], v("z")),
                Atom::new(v("x"), ids[3], v("z")),
            ],
        )
        .unwrap();
        let (rel, _) = eval_cq(&store, &stats, &cq).unwrap();
        assert_eq!(rel.to_rows(), vec![vec![ids[0]]]);
    }

    #[test]
    fn forced_wcoj_matches_bind_join() {
        let (store, stats, ids) = fixture();
        let bodies = vec![
            // triangle
            vec![
                Atom::new(v("x"), ids[3], v("y")),
                Atom::new(v("y"), ids[3], v("z")),
                Atom::new(v("x"), ids[3], v("z")),
            ],
            // chain + type filter
            vec![
                Atom::new(v("x"), ids[3], v("y")),
                Atom::new(v("x"), ID_RDF_TYPE, ids[4]),
            ],
            // single atom
            vec![Atom::new(v("x"), ids[3], v("y"))],
        ];
        for body in bodies {
            let head: Vec<Var> = vec![v("x")];
            let cq = Cq::new(head.clone(), body).unwrap();
            let mut m1 = ExecMetrics::default();
            let base = Evaluator::new(&store, &stats)
                .eval_cq(&cq, &head, &mut m1)
                .unwrap();
            for algo in [JoinAlgorithm::Wcoj, JoinAlgorithm::Auto] {
                let mut ev = Evaluator::new(&store, &stats);
                ev.join_algorithm = algo;
                let mut m2 = ExecMetrics::default();
                let got = ev.eval_cq(&cq, &head, &mut m2).unwrap();
                let mut a = base.to_rows();
                let mut b = got.to_rows();
                a.sort();
                b.sort();
                assert_eq!(a, b, "{algo:?}");
            }
        }
    }

    #[test]
    fn wcoj_dispatch_records_lfj_step_and_counters() {
        let (store, stats, ids) = fixture();
        let cq = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), ids[3], v("y")),
                Atom::new(v("y"), ids[3], v("z")),
                Atom::new(v("x"), ids[3], v("z")),
            ],
        )
        .unwrap();
        let registry = std::sync::Arc::new(rdfref_obs::MetricsRegistry::default());
        let mut ev = Evaluator::new(&store, &stats).with_obs(Obs::collecting(registry.clone()));
        ev.join_algorithm = JoinAlgorithm::Wcoj;
        let mut m = ExecMetrics::default();
        let rel = ev.eval_cq(&cq, &[v("x")], &mut m).unwrap();
        assert_eq!(rel.to_rows(), vec![vec![ids[0]]]);
        assert!(m.steps.iter().any(|s| s.label.starts_with("lfj(3 atoms)")));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("op.lfj.atoms"), 3);
        assert!(snap.counter("op.lfj.seeks") > 0);
        assert_eq!(snap.counter("op.lfj.rows"), 1);
    }

    #[test]
    fn join_algorithm_default_is_bind_join() {
        let (store, stats, _) = fixture();
        let ev = Evaluator::new(&store, &stats);
        assert_eq!(ev.join_algorithm, JoinAlgorithm::BindJoin);
        assert_eq!(JoinAlgorithm::default(), JoinAlgorithm::BindJoin);
    }

    #[test]
    fn bound_head_constant_emitted() {
        let (store, stats, ids) = fixture();
        // Reformulation-style CQ: q(x, Person) :- (x type Person).
        let cq = Cq::new_unchecked(
            vec![PTerm::Var(v("x")), PTerm::Const(ids[4])],
            vec![Atom::new(v("x"), ID_RDF_TYPE, ids[4])],
        );
        let out = vec![v("x"), v("u")];
        let mut m = ExecMetrics::default();
        let rel = Evaluator::new(&store, &stats)
            .eval_cq(&cq, &out, &mut m)
            .unwrap();
        assert_eq!(rel.len(), 2);
        for row in rel.rows() {
            assert_eq!(row[1], ids[4]);
        }
    }

    #[test]
    fn ucq_union_dedups_across_members() {
        let (store, stats, ids) = fixture();
        let knows_x = Cq::new(vec![v("x")], vec![Atom::new(v("x"), ids[3], v("y"))]).unwrap();
        let person_x = Cq::new(vec![v("x")], vec![Atom::new(v("x"), ID_RDF_TYPE, ids[4])]).unwrap();
        let ucq = Ucq::new(vec![knows_x, person_x]).unwrap();
        let (rel, _) = eval_ucq(&store, &stats, &ucq).unwrap();
        // knowers {a, b} ∪ persons {a, b} = {a, b}.
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn jucq_matches_monolithic_cq() {
        let (store, stats, ids) = fixture();
        // q(x, y) :- (x knows y), (y type Person)
        let whole = Cq::new(
            vec![v("x"), v("y")],
            vec![
                Atom::new(v("x"), ids[3], v("y")),
                Atom::new(v("y"), ID_RDF_TYPE, ids[4]),
            ],
        )
        .unwrap();
        let (expected, _) = eval_cq(&store, &stats, &whole).unwrap();

        // Same query as a two-fragment JUCQ.
        let f0 = Fragment::new(
            vec![v("x"), v("y")],
            Ucq::single(
                Cq::new(
                    vec![v("x"), v("y")],
                    vec![Atom::new(v("x"), ids[3], v("y"))],
                )
                .unwrap(),
            ),
        )
        .unwrap();
        let f1 = Fragment::new(
            vec![v("y")],
            Ucq::single(
                Cq::new(vec![v("y")], vec![Atom::new(v("y"), ID_RDF_TYPE, ids[4])]).unwrap(),
            ),
        )
        .unwrap();
        let jucq = Jucq::new(vec![v("x"), v("y")], vec![f0, f1]).unwrap();
        let (got, _) = eval_jucq(&store, &stats, &jucq).unwrap();

        let mut e = expected.clone();
        let mut g = got.clone();
        e.sort();
        g.sort();
        assert_eq!(e.to_rows(), g.to_rows());
    }

    #[test]
    fn boolean_jucq_fragment() {
        let (store, stats, ids) = fixture();
        // Boolean fragment: is there any Robot? joined with all knowers.
        let knowers = Fragment::new(
            vec![v("x")],
            Ucq::single(Cq::new(vec![v("x")], vec![Atom::new(v("x"), ids[3], v("y"))]).unwrap()),
        )
        .unwrap();
        let any_robot = Fragment::new(
            vec![],
            Ucq::single(Cq::new_unchecked(
                vec![],
                vec![Atom::new(v("z"), ID_RDF_TYPE, ids[5])],
            )),
        )
        .unwrap();
        let jucq = Jucq::new(vec![v("x")], vec![knowers, any_robot]).unwrap();
        let (rel, _) = eval_jucq(&store, &stats, &jucq).unwrap();
        assert_eq!(rel.len(), 2); // {a, b}: robot exists, so identity join
    }

    #[test]
    fn row_budget_aborts() {
        let (store, stats, ids) = fixture();
        let cq = Cq::new(
            vec![v("x"), v("y")],
            vec![Atom::new(v("x"), ids[3], v("y"))],
        )
        .unwrap();
        let mut m = ExecMetrics::default();
        let mut ev = Evaluator::new(&store, &stats);
        ev.row_budget = Some(2);
        let err = ev.eval_cq(&cq, &[v("x"), v("y")], &mut m).unwrap_err();
        assert!(matches!(err, StorageError::RowBudgetExceeded { budget: 2 }));
    }

    #[test]
    fn parallel_union_matches_sequential() {
        let (store, stats, ids) = fixture();
        let mk = |class: TermId| {
            Cq::new(vec![v("x")], vec![Atom::new(v("x"), ID_RDF_TYPE, class)]).unwrap()
        };
        // 20 disjuncts alternating Person/Robot to cross the parallel
        // threshold.
        let cqs: Vec<Cq> = (0..20)
            .map(|i| mk(if i % 2 == 0 { ids[4] } else { ids[5] }))
            .collect();
        let ucq = Ucq::new(cqs).unwrap();
        let mut seq_ev = Evaluator::new(&store, &stats);
        seq_ev.parallelism = Parallelism::Off;
        let mut par_ev = Evaluator::new(&store, &stats);
        par_ev.parallelism = Parallelism::Unions;
        let mut m1 = ExecMetrics::default();
        let mut m2 = ExecMetrics::default();
        let mut a = seq_ev.eval_ucq(&ucq, &[v("x")], &mut m1).unwrap();
        let mut b = par_ev.eval_ucq(&ucq, &[v("x")], &mut m2).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a.to_rows(), b.to_rows());
        assert_eq!(m1.rows_scanned, m2.rows_scanned);
    }

    #[test]
    fn morsel_evaluation_matches_sequential() {
        // Tiny morsels (size 1) force the maximum number of work units;
        // results and row order must be identical to sequential evaluation
        // for scans, joins, and bind-joins alike.
        let (store, stats, ids) = fixture();
        let queries = vec![
            // Single-atom scan.
            Cq::new(
                vec![v("x"), v("y")],
                vec![Atom::new(v("x"), ids[3], v("y"))],
            )
            .unwrap(),
            // Two-atom join (bind-join or hash-join per cost model).
            Cq::new(
                vec![v("x"), v("y")],
                vec![
                    Atom::new(v("x"), ids[3], v("y")),
                    Atom::new(v("x"), ID_RDF_TYPE, ids[4]),
                ],
            )
            .unwrap(),
            // Triangle: exercises repeated probes.
            Cq::new(
                vec![v("x")],
                vec![
                    Atom::new(v("x"), ids[3], v("y")),
                    Atom::new(v("y"), ids[3], v("z")),
                    Atom::new(v("x"), ids[3], v("z")),
                ],
            )
            .unwrap(),
        ];
        for (size, cq) in [1usize, 2, 4096].iter().flat_map(|s| {
            let qs = &queries;
            qs.iter().map(move |q| (*s, q))
        }) {
            let seq_ev = Evaluator::new(&store, &stats);
            let mut mor_ev = Evaluator::new(&store, &stats);
            mor_ev.parallelism = Parallelism::Morsels { size };
            let out = head_names(cq);
            let mut m1 = ExecMetrics::default();
            let mut m2 = ExecMetrics::default();
            let a = seq_ev.eval_cq(cq, &out, &mut m1).unwrap();
            let b = mor_ev.eval_cq(cq, &out, &mut m2).unwrap();
            // Exact row order must match, not just the set: morsel output
            // is stitched back in morsel order.
            assert_eq!(a.to_rows(), b.to_rows(), "size={size}");
        }
    }

    #[test]
    fn parallelism_default_is_off() {
        assert_eq!(Parallelism::default(), Parallelism::Off);
        assert_eq!(
            Parallelism::morsels(),
            Parallelism::Morsels {
                size: DEFAULT_MORSEL_SIZE
            }
        );
    }

    #[test]
    fn head_mismatch_rejected() {
        let (store, stats, ids) = fixture();
        let cq = Cq::new(vec![v("x")], vec![Atom::new(v("x"), ids[3], v("y"))]).unwrap();
        let mut m = ExecMetrics::default();
        let err = Evaluator::new(&store, &stats)
            .eval_cq(&cq, &[v("x"), v("y")], &mut m)
            .unwrap_err();
        assert!(matches!(err, StorageError::HeadMismatch { .. }));
    }

    #[test]
    fn empty_pattern_no_rows() {
        let (store, stats, _) = fixture();
        // A property id that no triple uses.
        let absent = TermId(9999);
        let cq = Cq::new(vec![v("x")], vec![Atom::new(v("x"), absent, v("y"))]).unwrap();
        let (rel, _) = eval_cq(&store, &stats, &cq).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn empty_body_constant_head_yields_one_row() {
        // Regression: a body-less CQ with an all-constant head (the shape a
        // fully-bound reformulation can collapse to) must produce exactly
        // one row of the constants, not panic in head resolution.
        let (store, stats, ids) = fixture();
        let cq = Cq::new_unchecked(vec![PTerm::Const(ids[4]), PTerm::Const(ids[5])], vec![]);
        let (rel, _) = eval_cq(&store, &stats, &cq).unwrap();
        assert_eq!(rel.to_rows(), vec![vec![ids[4], ids[5]]]);
    }

    #[test]
    fn empty_body_unbound_var_is_typed_error() {
        // Regression: a head variable no atom binds surfaces as
        // UnknownColumn — the evaluator must never panic on it.
        let (store, stats, _) = fixture();
        let cq = Cq::new_unchecked(vec![PTerm::Var(v("x"))], vec![]);
        let err = eval_cq(&store, &stats, &cq).unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn(ref c) if c == "x"));
    }

    #[test]
    fn unbound_head_var_after_joins_is_typed_error() {
        // Same property with a non-empty body: ?z never occurs in any atom.
        let (store, stats, ids) = fixture();
        let cq = Cq::new_unchecked(
            vec![PTerm::Var(v("x")), PTerm::Var(v("z"))],
            vec![Atom::new(v("x"), ids[3], v("y"))],
        );
        let err = eval_cq(&store, &stats, &cq).unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn(ref c) if c == "z"));
    }

    #[test]
    fn worker_panic_error_displays() {
        // The parallel union maps a panicked worker to a typed error rather
        // than propagating the panic; pin the variant and its message.
        let err = StorageError::WorkerPanicked;
        assert!(err.to_string().contains("worker thread panicked"));
    }
}
