//! The triple store: three sorted permutation indexes over an immutable
//! snapshot of dictionary-encoded triples.
//!
//! Every triple-pattern shape is answered by a binary-search range over one
//! of the SPO / POS / OSP orderings:
//!
//! | bound positions | index | access |
//! |-----------------|-------|--------|
//! | s p o           | SPO   | point lookup |
//! | s p ?           | SPO   | range on (s, p) |
//! | s ? ?           | SPO   | range on (s) |
//! | ? p o           | POS   | range on (p, o) |
//! | ? p ?           | POS   | range on (p) |
//! | ? ? o           | OSP   | range on (o) |
//! | s ? o           | SPO   | range on (s), residual filter on o |
//! | ? ? ?           | SPO   | full scan |

use rdfref_model::{EncodedTriple, Graph, TermId};

/// The three index orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// subject, property, object
    Spo,
    /// property, object, subject
    Pos,
    /// object, subject, property
    Osp,
}

impl Order {
    /// Permute an SPO triple into this order's key layout.
    #[inline]
    fn key(self, t: &EncodedTriple) -> [TermId; 3] {
        match self {
            Order::Spo => [t.s, t.p, t.o],
            Order::Pos => [t.p, t.o, t.s],
            Order::Osp => [t.o, t.s, t.p],
        }
    }

    /// Recover the SPO triple from this order's key layout.
    #[inline]
    fn unkey(self, k: &[TermId; 3]) -> EncodedTriple {
        match self {
            Order::Spo => EncodedTriple::new(k[0], k[1], k[2]),
            Order::Pos => EncodedTriple::new(k[2], k[0], k[1]),
            Order::Osp => EncodedTriple::new(k[1], k[2], k[0]),
        }
    }
}

/// One sorted permutation index.
#[derive(Debug, Clone)]
struct SortedIndex {
    /// Triples permuted into key layout and sorted.
    keys: Vec<[TermId; 3]>,
}

impl SortedIndex {
    fn build(order: Order, triples: &[EncodedTriple]) -> SortedIndex {
        let mut keys: Vec<[TermId; 3]> = triples.iter().map(|t| order.key(t)).collect();
        keys.sort_unstable();
        keys.dedup();
        SortedIndex { keys }
    }

    /// The sub-slice whose first key component equals `k1`.
    fn range1(&self, k1: TermId) -> &[[TermId; 3]] {
        let lo = self.keys.partition_point(|k| k[0] < k1);
        let hi = self.keys.partition_point(|k| k[0] <= k1);
        &self.keys[lo..hi]
    }

    /// The sub-slice whose first two key components equal `(k1, k2)`.
    fn range2(&self, k1: TermId, k2: TermId) -> &[[TermId; 3]] {
        let lo = self.keys.partition_point(|k| (k[0], k[1]) < (k1, k2));
        let hi = self.keys.partition_point(|k| (k[0], k[1]) <= (k1, k2));
        &self.keys[lo..hi]
    }

    fn contains(&self, key: &[TermId; 3]) -> bool {
        self.keys.binary_search(key).is_ok()
    }
}

/// A triple pattern over ids: `None` = wildcard. (The query layer translates
/// its variable patterns into this shape for scanning; repeated-variable
/// filtering happens in the executor.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdPattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Property constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl IdPattern {
    /// A fully wildcard pattern.
    pub const ALL: IdPattern = IdPattern {
        s: None,
        p: None,
        o: None,
    };

    /// How many positions are bound?
    pub fn bound_count(&self) -> usize {
        [self.s, self.p, self.o]
            .iter()
            .filter(|x| x.is_some())
            .count()
    }
}

/// The immutable store: a snapshot of a graph's triples, indexed three ways.
///
/// The store is deliberately decoupled from the [`Graph`] that produced it
/// (the saturation experiments build stores from both `G` and `G∞` over the
/// same dictionary).
#[derive(Debug, Clone)]
pub struct Store {
    spo: SortedIndex,
    pos: SortedIndex,
    osp: SortedIndex,
    len: usize,
}

impl Store {
    /// Build a store over a slice of encoded triples.
    pub fn from_triples(triples: &[EncodedTriple]) -> Store {
        let spo = SortedIndex::build(Order::Spo, triples);
        let len = spo.keys.len(); // post-dedup count
        Store {
            spo,
            pos: SortedIndex::build(Order::Pos, triples),
            osp: SortedIndex::build(Order::Osp, triples),
            len,
        }
    }

    /// Build a store over a graph's triples.
    pub fn from_graph(graph: &Graph) -> Store {
        Store::from_triples(graph.triples())
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point membership.
    pub fn contains(&self, t: &EncodedTriple) -> bool {
        self.spo.contains(&[t.s, t.p, t.o])
    }

    /// All triples matching a pattern, in SPO terms. Uses the best index for
    /// the pattern shape; the `s ? o` shape picks the smaller of the two
    /// candidate ranges and filters the residual position.
    pub fn scan(&self, pat: IdPattern) -> Vec<EncodedTriple> {
        let mut out = Vec::new();
        self.scan_into(pat, &mut |t| out.push(t));
        out
    }

    /// Streaming variant of [`Store::scan`]: invokes `f` per matching triple,
    /// avoiding materialization in the hot paths of the executor.
    pub fn scan_into(&self, pat: IdPattern, f: &mut dyn FnMut(EncodedTriple)) {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = EncodedTriple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                for k in self.spo.range2(s, p) {
                    f(Order::Spo.unkey(k));
                }
            }
            (Some(s), None, None) => {
                for k in self.spo.range1(s) {
                    f(Order::Spo.unkey(k));
                }
            }
            (None, Some(p), Some(o)) => {
                for k in self.pos.range2(p, o) {
                    f(Order::Pos.unkey(k));
                }
            }
            (None, Some(p), None) => {
                for k in self.pos.range1(p) {
                    f(Order::Pos.unkey(k));
                }
            }
            (None, None, Some(o)) => {
                for k in self.osp.range1(o) {
                    f(Order::Osp.unkey(k));
                }
            }
            (Some(s), None, Some(o)) => {
                // Pick the smaller range: subject slice of SPO vs object
                // slice of OSP.
                let s_range = self.spo.range1(s);
                let o_range = self.osp.range1(o);
                if s_range.len() <= o_range.len() {
                    for k in s_range {
                        if k[2] == o {
                            f(Order::Spo.unkey(k));
                        }
                    }
                } else {
                    for k in o_range {
                        if k[1] == s {
                            f(Order::Osp.unkey(k));
                        }
                    }
                }
            }
            (None, None, None) => {
                for k in &self.spo.keys {
                    f(Order::Spo.unkey(k));
                }
            }
        }
    }

    /// Exact number of matches for a pattern — O(log n) for all shapes
    /// except `s ? o`, which is linear in the smaller range. Used by exact
    /// statistics and by experiment reports.
    pub fn count(&self, pat: IdPattern) -> usize {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&EncodedTriple::new(s, p, o))),
            (Some(s), Some(p), None) => self.spo.range2(s, p).len(),
            (Some(s), None, None) => self.spo.range1(s).len(),
            (None, Some(p), Some(o)) => self.pos.range2(p, o).len(),
            (None, Some(p), None) => self.pos.range1(p).len(),
            (None, None, Some(o)) => self.osp.range1(o).len(),
            (Some(s), None, Some(o)) => {
                let s_range = self.spo.range1(s);
                let o_range = self.osp.range1(o);
                if s_range.len() <= o_range.len() {
                    s_range.iter().filter(|k| k[2] == o).count()
                } else {
                    o_range.iter().filter(|k| k[1] == s).count()
                }
            }
            (None, None, None) => self.len,
        }
    }

    /// Iterate over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.spo.keys.iter().map(|k| Order::Spo.unkey(k))
    }

    /// The distinct properties, with the count of triples per property, in
    /// ascending property-id order. O(number of distinct properties)
    /// group-hops over the POS index.
    pub fn property_counts(&self) -> Vec<(TermId, usize)> {
        let mut out = Vec::new();
        let keys = &self.pos.keys;
        let mut i = 0;
        while i < keys.len() {
            let p = keys[i][0];
            let end = keys.partition_point(|k| k[0] <= p);
            out.push((p, end - i));
            i = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::{Dictionary, Term};

    fn fixture() -> (Store, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = ["a", "b", "c", "p", "q", "v"]
            .iter()
            .map(|n| d.intern(&Term::iri(*n)))
            .collect();
        let (a, b, c, p, q, v) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let triples = vec![
            EncodedTriple::new(a, p, b),
            EncodedTriple::new(a, p, c),
            EncodedTriple::new(b, p, c),
            EncodedTriple::new(a, q, v),
            EncodedTriple::new(c, q, v),
            EncodedTriple::new(a, p, b), // duplicate, deduped at build
        ];
        (Store::from_triples(&triples), ids)
    }

    #[test]
    fn build_dedups() {
        let (store, _) = fixture();
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn all_pattern_shapes() {
        let (store, ids) = fixture();
        let (a, b, c, p, q, v) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let pat = |s, p, o| IdPattern { s, p, o };

        // spo point
        assert_eq!(store.scan(pat(Some(a), Some(p), Some(b))).len(), 1);
        assert_eq!(store.scan(pat(Some(a), Some(p), Some(v))).len(), 0);
        // sp?
        assert_eq!(store.scan(pat(Some(a), Some(p), None)).len(), 2);
        // s??
        assert_eq!(store.scan(pat(Some(a), None, None)).len(), 3);
        // ?po
        assert_eq!(store.scan(pat(None, Some(q), Some(v))).len(), 2);
        // ?p?
        assert_eq!(store.scan(pat(None, Some(p), None)).len(), 3);
        // ??o
        assert_eq!(store.scan(pat(None, None, Some(c))).len(), 2);
        // s?o
        assert_eq!(store.scan(pat(Some(a), None, Some(b))).len(), 1);
        assert_eq!(store.scan(pat(Some(b), None, Some(v))).len(), 0);
        // ???
        assert_eq!(store.scan(IdPattern::ALL).len(), 5);
    }

    #[test]
    fn counts_agree_with_scans() {
        let (store, ids) = fixture();
        let all_ids = [None, Some(ids[0]), Some(ids[3]), Some(ids[5])];
        for &s in &all_ids {
            for &p in &all_ids {
                for &o in &all_ids {
                    let pat = IdPattern { s, p, o };
                    assert_eq!(store.count(pat), store.scan(pat).len(), "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn scan_results_are_spo_triples() {
        let (store, ids) = fixture();
        let (p, v) = (ids[3], ids[5]);
        for t in store.scan(IdPattern {
            s: None,
            p: Some(p),
            o: None,
        }) {
            assert_eq!(t.p, p);
        }
        for t in store.scan(IdPattern {
            s: None,
            p: None,
            o: Some(v),
        }) {
            assert_eq!(t.o, v);
        }
    }

    #[test]
    fn property_counts_grouped() {
        let (store, ids) = fixture();
        let counts = store.property_counts();
        assert_eq!(counts.len(), 2);
        let get = |p: TermId| counts.iter().find(|&&(q, _)| q == p).unwrap().1;
        assert_eq!(get(ids[3]), 3);
        assert_eq!(get(ids[4]), 2);
    }

    #[test]
    fn empty_store() {
        let store = Store::from_triples(&[]);
        assert!(store.is_empty());
        assert_eq!(store.scan(IdPattern::ALL).len(), 0);
        assert_eq!(store.property_counts().len(), 0);
    }

    #[test]
    fn iter_in_spo_order() {
        let (store, _) = fixture();
        let v: Vec<_> = store.iter().collect();
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).all(|w| w[0].as_array() <= w[1].as_array()));
    }
}
