//! The triple store: three sorted permutation indexes over an immutable
//! snapshot of dictionary-encoded triples.
//!
//! Every triple-pattern shape is answered by a binary-search range over one
//! of the SPO / POS / OSP orderings:
//!
//! | bound positions | index | access |
//! |-----------------|-------|--------|
//! | s p o           | SPO   | point lookup |
//! | s p ?           | SPO   | range on (s, p) |
//! | s ? ?           | SPO   | range on (s) |
//! | ? p o           | POS   | range on (p, o) |
//! | ? p ?           | POS   | range on (p) |
//! | ? ? o           | OSP   | range on (o) |
//! | s ? o           | SPO   | range on (s), residual filter on o |
//! | ? ? ?           | SPO   | full scan |
//!
//! ## Snapshots and copy-on-write deltas
//!
//! Each index stores its sorted keys as a sequence of `Arc`-shared
//! *buckets* (runs of ~[`BUCKET_TARGET`] keys). [`Store::apply_delta`]
//! produces a new store that shares every bucket the delta does not touch
//! and rebuilds only the touched ones — so a store is cheap to snapshot
//! (`Clone` is a handful of `Arc` bumps) and cheap to evolve under small
//! update batches (cost proportional to the delta's key locality, not the
//! dataset). This is what lets the serving layer publish a fresh immutable
//! store per maintenance batch without ever rebuilding, or blocking readers
//! of, the previous one.

use rdfref_model::{EncodedTriple, Graph, TermId};
use rdfref_sync::Arc;
use std::cmp::Ordering;

/// Target keys per index bucket. Small enough that a single-triple delta
/// copies ~one bucket, large enough that range scans stay contiguous.
const BUCKET_TARGET: usize = 1024;

/// The three index orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// subject, property, object
    Spo,
    /// property, object, subject
    Pos,
    /// object, subject, property
    Osp,
}

impl Order {
    /// Permute an SPO triple into this order's key layout.
    #[inline]
    pub(crate) fn key(self, t: &EncodedTriple) -> [TermId; 3] {
        match self {
            Order::Spo => [t.s, t.p, t.o],
            Order::Pos => [t.p, t.o, t.s],
            Order::Osp => [t.o, t.s, t.p],
        }
    }

    /// Recover the SPO triple from this order's key layout.
    #[inline]
    pub(crate) fn unkey(self, k: &[TermId; 3]) -> EncodedTriple {
        match self {
            Order::Spo => EncodedTriple::new(k[0], k[1], k[2]),
            Order::Pos => EncodedTriple::new(k[2], k[0], k[1]),
            Order::Osp => EncodedTriple::new(k[1], k[2], k[0]),
        }
    }

    /// The key position (0–2) a triple position occupies in this layout,
    /// where `pos` is 0 = subject, 1 = property, 2 = object.
    #[inline]
    pub(crate) fn key_position(self, pos: usize) -> usize {
        match self {
            Order::Spo => pos,
            Order::Pos => [2, 0, 1][pos],
            Order::Osp => [1, 2, 0][pos],
        }
    }

    /// Short uppercase name, for plan rendering.
    pub fn name(self) -> &'static str {
        match self {
            Order::Spo => "SPO",
            Order::Pos => "POS",
            Order::Osp => "OSP",
        }
    }

    /// All three orderings, in a fixed tie-break order.
    pub(crate) const ALL: [Order; 3] = [Order::Spo, Order::Pos, Order::Osp];
}

/// Compare a key against a search prefix (first `prefix.len()` components).
#[inline]
fn cmp_prefix(k: &[TermId; 3], prefix: &[TermId]) -> Ordering {
    k[..prefix.len()].cmp(prefix)
}

/// One sorted permutation index: globally sorted, deduplicated keys split
/// into `Arc`-shared buckets. Buckets are non-empty and pairwise disjoint;
/// cloning the index clones only the bucket handles.
#[derive(Debug, Clone)]
pub(crate) struct SortedIndex {
    buckets: Vec<Arc<Vec<[TermId; 3]>>>,
    len: usize,
    /// Bucket sizing used when (re)building buckets for this index.
    bucket_target: usize,
}

impl SortedIndex {
    fn build(order: Order, triples: &[EncodedTriple], bucket_target: usize) -> SortedIndex {
        let mut keys: Vec<[TermId; 3]> = triples.iter().map(|t| order.key(t)).collect();
        keys.sort_unstable();
        keys.dedup();
        SortedIndex::from_sorted_keys(keys, bucket_target)
    }

    /// `keys` must be sorted and deduplicated.
    fn from_sorted_keys(keys: Vec<[TermId; 3]>, bucket_target: usize) -> SortedIndex {
        let target = bucket_target.max(1);
        let len = keys.len();
        let buckets = keys.chunks(target).map(|c| Arc::new(c.to_vec())).collect();
        SortedIndex {
            buckets,
            len,
            bucket_target: target,
        }
    }

    /// Invoke `f` on every key whose first `prefix.len()` components equal
    /// `prefix`, in sorted order.
    fn for_prefix(&self, prefix: &[TermId], f: &mut dyn FnMut(&[TermId; 3])) {
        let start = self
            .buckets
            .partition_point(|b| b.last().is_some_and(|l| cmp_prefix(l, prefix).is_lt()));
        for b in &self.buckets[start..] {
            if cmp_prefix(&b[0], prefix).is_gt() {
                break;
            }
            let lo = b.partition_point(|k| cmp_prefix(k, prefix).is_lt());
            let hi = b.partition_point(|k| !cmp_prefix(k, prefix).is_gt());
            for k in &b[lo..hi] {
                f(k);
            }
        }
    }

    /// Invoke `f` on every key `k` with `k[..lo.len()] >= lo` and
    /// `k[..hi.len()] < hi`, in sorted order — the contiguous run an
    /// interval-encoded subtree occupies. With `lo = [p, c_lo]`,
    /// `hi = [p, c_hi]` this is exactly `p`-triples whose object falls in
    /// `[c_lo, c_hi)`.
    fn for_bounds(&self, lo: &[TermId], hi: &[TermId], f: &mut dyn FnMut(&[TermId; 3])) {
        let start = self
            .buckets
            .partition_point(|b| b.last().is_some_and(|l| cmp_prefix(l, lo).is_lt()));
        for b in &self.buckets[start..] {
            if !cmp_prefix(&b[0], hi).is_lt() {
                break;
            }
            let i0 = b.partition_point(|k| cmp_prefix(k, lo).is_lt());
            let i1 = b.partition_point(|k| cmp_prefix(k, hi).is_lt());
            for k in &b[i0..i1] {
                f(k);
            }
        }
    }

    /// Number of keys whose first `prefix.len()` components equal `prefix`.
    fn count_prefix(&self, prefix: &[TermId]) -> usize {
        let start = self
            .buckets
            .partition_point(|b| b.last().is_some_and(|l| cmp_prefix(l, prefix).is_lt()));
        let mut n = 0;
        for b in &self.buckets[start..] {
            if cmp_prefix(&b[0], prefix).is_gt() {
                break;
            }
            let lo = b.partition_point(|k| cmp_prefix(k, prefix).is_lt());
            let hi = b.partition_point(|k| !cmp_prefix(k, prefix).is_gt());
            n += hi - lo;
        }
        n
    }

    /// Invoke `f` on every key, in sorted order.
    fn for_each(&self, f: &mut dyn FnMut(&[TermId; 3])) {
        for b in &self.buckets {
            for k in b.iter() {
                f(k);
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = &[TermId; 3]> {
        self.buckets.iter().flat_map(|b| b.iter())
    }

    fn contains(&self, key: &[TermId; 3]) -> bool {
        let i = self
            .buckets
            .partition_point(|b| b.last().is_some_and(|l| l < key));
        match self.buckets.get(i) {
            Some(b) => b.binary_search(key).is_ok(),
            None => false,
        }
    }

    /// The least key `>= probe`, if any — the trie *seek* primitive of the
    /// leapfrog-triejoin driver. Two binary searches: one over bucket
    /// last-keys, one inside the landing bucket. Buckets are non-empty,
    /// pairwise disjoint, and globally sorted, so if the in-bucket position
    /// falls past the bucket's end the next bucket's first key is the
    /// answer.
    pub(crate) fn seek_from(&self, probe: &[TermId; 3]) -> Option<[TermId; 3]> {
        let i = self
            .buckets
            .partition_point(|b| b.last().is_some_and(|l| l < probe));
        let b = self.buckets.get(i)?;
        let j = b.partition_point(|k| k < probe);
        match b.get(j) {
            Some(k) => Some(*k),
            // `b.last() >= probe` guarantees `j < b.len()` — defensive only.
            None => self.buckets.get(i + 1).map(|nb| nb[0]),
        }
    }

    /// Copy-on-write delta application: the result contains
    /// `(self ∪ inserts) ∖ removes`. Buckets whose key span the delta does
    /// not touch are `Arc`-shared with `self`; touched buckets are merged
    /// into fresh ones (and re-split when they outgrow the target size).
    fn apply_delta(
        &self,
        order: Order,
        inserts: &[EncodedTriple],
        removes: &[EncodedTriple],
    ) -> SortedIndex {
        let mut ins: Vec<[TermId; 3]> = inserts.iter().map(|t| order.key(t)).collect();
        ins.sort_unstable();
        ins.dedup();
        let mut rem: Vec<[TermId; 3]> = removes.iter().map(|t| order.key(t)).collect();
        rem.sort_unstable();
        rem.dedup();
        if ins.is_empty() && rem.is_empty() {
            return self.clone();
        }
        if self.buckets.is_empty() {
            // Removes can only be no-ops on an empty index.
            let mut keys = ins;
            keys.retain(|k| rem.binary_search(k).is_err());
            return SortedIndex::from_sorted_keys(keys, self.bucket_target);
        }

        let mut buckets: Vec<Arc<Vec<[TermId; 3]>>> = Vec::with_capacity(self.buckets.len() + 1);
        let mut len = 0usize;
        let (mut ii, mut ri) = (0usize, 0usize);
        for (bi, b) in self.buckets.iter().enumerate() {
            // This bucket's span ends where the next bucket begins; the
            // first bucket's span starts at -inf, the last ends at +inf, so
            // every delta key lands in exactly one span.
            let upper = self.buckets.get(bi + 1).map(|nb| nb[0]);
            let ins_end = match upper {
                Some(u) => ii + ins[ii..].partition_point(|k| *k < u),
                None => ins.len(),
            };
            let rem_end = match upper {
                Some(u) => ri + rem[ri..].partition_point(|k| *k < u),
                None => rem.len(),
            };
            if ins_end == ii && rem_end == ri {
                len += b.len();
                buckets.push(Arc::clone(b));
                continue;
            }
            let merged = merge_keys(b, &ins[ii..ins_end], &rem[ri..rem_end]);
            ii = ins_end;
            ri = rem_end;
            len += merged.len();
            if merged.len() > 2 * self.bucket_target {
                for c in merged.chunks(self.bucket_target) {
                    buckets.push(Arc::new(c.to_vec()));
                }
            } else if !merged.is_empty() {
                buckets.push(Arc::new(merged));
            }
        }
        SortedIndex {
            buckets,
            len,
            bucket_target: self.bucket_target,
        }
    }
}

/// `(base ∪ ins) ∖ rem` for sorted, deduplicated key runs.
fn merge_keys(base: &[[TermId; 3]], ins: &[[TermId; 3]], rem: &[[TermId; 3]]) -> Vec<[TermId; 3]> {
    let mut out = Vec::with_capacity(base.len() + ins.len());
    let (mut i, mut j, mut r) = (0usize, 0usize, 0usize);
    while i < base.len() || j < ins.len() {
        let k = match (base.get(i), ins.get(j)) {
            (Some(a), Some(b)) => {
                if a <= b {
                    if a == b {
                        j += 1;
                    }
                    i += 1;
                    *a
                } else {
                    j += 1;
                    *b
                }
            }
            (Some(a), None) => {
                i += 1;
                *a
            }
            (None, Some(b)) => {
                j += 1;
                *b
            }
            (None, None) => break,
        };
        while r < rem.len() && rem[r] < k {
            r += 1;
        }
        if r < rem.len() && rem[r] == k {
            continue;
        }
        out.push(k);
    }
    out
}

/// A triple pattern over ids: `None` = wildcard. (The query layer translates
/// its variable patterns into this shape for scanning; repeated-variable
/// filtering happens in the executor.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdPattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Property constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl IdPattern {
    /// A fully wildcard pattern.
    pub const ALL: IdPattern = IdPattern {
        s: None,
        p: None,
        o: None,
    };

    /// How many positions are bound?
    pub fn bound_count(&self) -> usize {
        [self.s, self.p, self.o]
            .iter()
            .filter(|x| x.is_some())
            .count()
    }
}

/// One position of a range pattern: wildcard, exact id, or a half-open
/// encoded-id interval `[lo, hi)` (interval-dictionary subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Matches anything.
    Any,
    /// Matches exactly one id.
    Const(TermId),
    /// Matches ids in `[lo, hi)`.
    Range(TermId, TermId),
}

impl Bound {
    /// Does this bound admit the id?
    #[inline]
    pub fn admits(&self, v: TermId) -> bool {
        match *self {
            Bound::Any => true,
            Bound::Const(c) => v == c,
            Bound::Range(lo, hi) => lo <= v && v < hi,
        }
    }

    /// The exact id, if this bound is a constant.
    pub fn as_const(&self) -> Option<TermId> {
        match *self {
            Bound::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// A triple pattern whose positions may be id intervals — the leaf shape of
/// the `RangeScan` operator. Patterns without any interval position degrade
/// to the exact [`IdPattern`] dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePattern {
    /// Subject constraint.
    pub s: Bound,
    /// Property constraint.
    pub p: Bound,
    /// Object constraint.
    pub o: Bound,
}

impl RangePattern {
    /// Does any position hold an interval?
    pub fn has_range(&self) -> bool {
        matches!(self.s, Bound::Range(..))
            || matches!(self.p, Bound::Range(..))
            || matches!(self.o, Bound::Range(..))
    }
}

/// The immutable store: a snapshot of a graph's triples, indexed three ways.
///
/// The store is deliberately decoupled from the [`Graph`] that produced it
/// (the saturation experiments build stores from both `G` and `G∞` over the
/// same dictionary). `Clone` is cheap — the indexes are `Arc`-shared bucket
/// sequences — and [`Store::apply_delta`] evolves a store copy-on-write.
#[derive(Debug, Clone)]
pub struct Store {
    spo: SortedIndex,
    pos: SortedIndex,
    osp: SortedIndex,
    len: usize,
}

impl Store {
    /// Build a store over a slice of encoded triples.
    pub fn from_triples(triples: &[EncodedTriple]) -> Store {
        Store::from_triples_with_bucket_target(triples, BUCKET_TARGET)
    }

    /// Build with an explicit bucket size — exposed so tests can exercise
    /// the multi-bucket paths on small datasets.
    #[doc(hidden)]
    pub fn from_triples_with_bucket_target(triples: &[EncodedTriple], target: usize) -> Store {
        let spo = SortedIndex::build(Order::Spo, triples, target);
        let len = spo.len; // post-dedup count
        Store {
            spo,
            pos: SortedIndex::build(Order::Pos, triples, target),
            osp: SortedIndex::build(Order::Osp, triples, target),
            len,
        }
    }

    /// Build a store over a graph's triples.
    pub fn from_graph(graph: &Graph) -> Store {
        Store::from_triples(graph.triples())
    }

    /// A new store containing `(self ∪ inserts) ∖ removes`, sharing every
    /// index bucket the delta does not touch. Keys present in both lists
    /// end up removed. `self` is untouched — readers of the old snapshot
    /// are never disturbed.
    pub fn apply_delta(&self, inserts: &[EncodedTriple], removes: &[EncodedTriple]) -> Store {
        let spo = self.spo.apply_delta(Order::Spo, inserts, removes);
        let len = spo.len;
        Store {
            spo,
            pos: self.pos.apply_delta(Order::Pos, inserts, removes),
            osp: self.osp.apply_delta(Order::Osp, inserts, removes),
            len,
        }
    }

    /// How many index buckets this store shares with `other` (diagnostics
    /// for the copy-on-write tests and the serving metrics).
    #[doc(hidden)]
    pub fn shared_buckets_with(&self, other: &Store) -> usize {
        let count = |a: &SortedIndex, b: &SortedIndex| {
            a.buckets
                .iter()
                .filter(|x| b.buckets.iter().any(|y| Arc::ptr_eq(x, y)))
                .count()
        };
        count(&self.spo, &other.spo) + count(&self.pos, &other.pos) + count(&self.osp, &other.osp)
    }

    /// Total index buckets across the three orderings.
    #[doc(hidden)]
    pub fn bucket_count(&self) -> usize {
        self.spo.buckets.len() + self.pos.buckets.len() + self.osp.buckets.len()
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point membership.
    pub fn contains(&self, t: &EncodedTriple) -> bool {
        self.spo.contains(&[t.s, t.p, t.o])
    }

    /// All triples matching a pattern, in SPO terms. Uses the best index for
    /// the pattern shape; the `s ? o` shape picks the smaller of the two
    /// candidate ranges and filters the residual position.
    pub fn scan(&self, pat: IdPattern) -> Vec<EncodedTriple> {
        let mut out = Vec::new();
        self.scan_into(pat, &mut |t| out.push(t));
        out
    }

    /// Streaming variant of [`Store::scan`]: invokes `f` per matching triple,
    /// avoiding materialization in the hot paths of the executor.
    pub fn scan_into(&self, pat: IdPattern, f: &mut dyn FnMut(EncodedTriple)) {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = EncodedTriple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                self.spo
                    .for_prefix(&[s, p], &mut |k| f(Order::Spo.unkey(k)));
            }
            (Some(s), None, None) => {
                self.spo.for_prefix(&[s], &mut |k| f(Order::Spo.unkey(k)));
            }
            (None, Some(p), Some(o)) => {
                self.pos
                    .for_prefix(&[p, o], &mut |k| f(Order::Pos.unkey(k)));
            }
            (None, Some(p), None) => {
                self.pos.for_prefix(&[p], &mut |k| f(Order::Pos.unkey(k)));
            }
            (None, None, Some(o)) => {
                self.osp.for_prefix(&[o], &mut |k| f(Order::Osp.unkey(k)));
            }
            (Some(s), None, Some(o)) => {
                // Pick the smaller range: subject slice of SPO vs object
                // slice of OSP.
                if self.spo.count_prefix(&[s]) <= self.osp.count_prefix(&[o]) {
                    self.spo.for_prefix(&[s], &mut |k| {
                        if k[2] == o {
                            f(Order::Spo.unkey(k));
                        }
                    });
                } else {
                    self.osp.for_prefix(&[o], &mut |k| {
                        if k[1] == s {
                            f(Order::Osp.unkey(k));
                        }
                    });
                }
            }
            (None, None, None) => {
                self.spo.for_each(&mut |k| f(Order::Spo.unkey(k)));
            }
        }
    }

    /// The `RangeScan` leaf: stream all triples matching a pattern whose
    /// positions may be id intervals. Interval positions that align with an
    /// index ordering become one contiguous key range (a `p`-constant
    /// object interval and a bare property interval are both contiguous in
    /// POS); misaligned positions fall back to residual filters. Patterns
    /// without intervals delegate to [`Store::scan_into`].
    pub fn scan_range_into(&self, pat: &RangePattern, f: &mut dyn FnMut(EncodedTriple)) {
        if !pat.has_range() {
            return self.scan_into(
                IdPattern {
                    s: pat.s.as_const(),
                    p: pat.p.as_const(),
                    o: pat.o.as_const(),
                },
                f,
            );
        }
        match (pat.s, pat.p, pat.o) {
            // Type-interval shape `(?x, p, o ∈ [lo, hi))`: one POS run.
            (Bound::Any, Bound::Const(p), Bound::Range(lo, hi)) => {
                self.pos
                    .for_bounds(&[p, lo], &[p, hi], &mut |k| f(Order::Pos.unkey(k)));
            }
            (Bound::Const(s), Bound::Const(p), Bound::Range(lo, hi)) => {
                self.spo
                    .for_bounds(&[s, p, lo], &[s, p, hi], &mut |k| f(Order::Spo.unkey(k)));
            }
            // Property-interval shape `(?x, p ∈ [lo, hi), ?y)`: one POS run,
            // with any object constraint as a residual filter.
            (Bound::Any, Bound::Range(plo, phi), o) => {
                self.pos.for_bounds(&[plo], &[phi], &mut |k| {
                    if o.admits(k[1]) {
                        f(Order::Pos.unkey(k));
                    }
                });
            }
            (Bound::Const(s), Bound::Range(plo, phi), o) => {
                self.spo.for_bounds(&[s, plo], &[s, phi], &mut |k| {
                    if o.admits(k[2]) {
                        f(Order::Spo.unkey(k));
                    }
                });
            }
            (Bound::Const(s), Bound::Any, Bound::Range(olo, ohi)) => {
                self.spo.for_prefix(&[s], &mut |k| {
                    if olo <= k[2] && k[2] < ohi {
                        f(Order::Spo.unkey(k));
                    }
                });
            }
            (Bound::Any, Bound::Any, Bound::Range(olo, ohi)) => {
                self.osp
                    .for_bounds(&[olo], &[ohi], &mut |k| f(Order::Osp.unkey(k)));
            }
            // Subject intervals (not produced by reformulation, but legal):
            // one SPO run with residual property/object filters.
            (Bound::Range(slo, shi), p, o) => {
                self.spo.for_bounds(&[slo], &[shi], &mut |k| {
                    if p.admits(k[1]) && o.admits(k[2]) {
                        f(Order::Spo.unkey(k));
                    }
                });
            }
            // Interval-free shapes were delegated above.
            _ => {
                debug_assert!(false, "non-interval pattern reached interval dispatch");
                self.spo.for_each(&mut |k| {
                    if pat.s.admits(k[0]) && pat.p.admits(k[1]) && pat.o.admits(k[2]) {
                        f(Order::Spo.unkey(k));
                    }
                });
            }
        }
    }

    /// Exact number of matches for a pattern — O(log n) per spanned bucket
    /// for all shapes except `s ? o`, which is linear in the smaller range.
    /// Used by exact statistics and by experiment reports.
    pub fn count(&self, pat: IdPattern) -> usize {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&EncodedTriple::new(s, p, o))),
            (Some(s), Some(p), None) => self.spo.count_prefix(&[s, p]),
            (Some(s), None, None) => self.spo.count_prefix(&[s]),
            (None, Some(p), Some(o)) => self.pos.count_prefix(&[p, o]),
            (None, Some(p), None) => self.pos.count_prefix(&[p]),
            (None, None, Some(o)) => self.osp.count_prefix(&[o]),
            (Some(s), None, Some(o)) => {
                let mut n = 0;
                if self.spo.count_prefix(&[s]) <= self.osp.count_prefix(&[o]) {
                    self.spo
                        .for_prefix(&[s], &mut |k| n += usize::from(k[2] == o));
                } else {
                    self.osp
                        .for_prefix(&[o], &mut |k| n += usize::from(k[1] == s));
                }
                n
            }
            (None, None, None) => self.len,
        }
    }

    /// Iterate over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.spo.iter().map(|k| Order::Spo.unkey(k))
    }

    /// The sorted permutation index for an ordering — the trie view the
    /// leapfrog-triejoin driver seeks over.
    pub(crate) fn index(&self, order: Order) -> &SortedIndex {
        match order {
            Order::Spo => &self.spo,
            Order::Pos => &self.pos,
            Order::Osp => &self.osp,
        }
    }

    /// The distinct properties, with the count of triples per property, in
    /// ascending property-id order — one grouped pass over the POS index.
    pub fn property_counts(&self) -> Vec<(TermId, usize)> {
        let mut out: Vec<(TermId, usize)> = Vec::new();
        self.pos.for_each(&mut |k| match out.last_mut() {
            Some((p, n)) if *p == k[0] => *n += 1,
            _ => out.push((k[0], 1)),
        });
        out
    }
}

/// A read-only provider of encoded triples — the abstraction the executor
/// scans through, so a query plan runs identically over one [`Store`] or a
/// predicate-partitioned [`ShardedStore`]. Implementations must answer
/// every pattern shape with the *complete* match set (sorted emission is
/// **not** part of the contract: a sharded source interleaves per-shard
/// runs; consumers that need order sort or deduplicate downstream).
pub trait TripleSource: std::fmt::Debug + Sync {
    /// Number of (distinct) triples.
    fn len(&self) -> usize;

    /// True iff the source holds no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point membership.
    fn contains(&self, t: &EncodedTriple) -> bool;

    /// Invoke `f` on every triple matching the pattern.
    fn scan_into(&self, pat: IdPattern, f: &mut dyn FnMut(EncodedTriple));

    /// Invoke `f` on every triple matching the (possibly interval) pattern.
    fn scan_range_into(&self, pat: &RangePattern, f: &mut dyn FnMut(EncodedTriple));

    /// Exact number of matches for a pattern.
    fn count(&self, pat: IdPattern) -> usize;

    /// The single [`Store`] whose sorted permutation runs can serve as trie
    /// views for an atom whose predicate constraint is `p` (`None` =
    /// variable or interval predicate). The default — and any source that
    /// cannot name one store for the atom — returns `None`, in which case
    /// the executor falls back to bind joins. A plain store always answers;
    /// a predicate-partitioned source answers for constant predicates by
    /// routing to the owning shard.
    fn trie_view(&self, p: Option<TermId>) -> Option<&Store> {
        let _ = p;
        None
    }
}

impl TripleSource for Store {
    fn len(&self) -> usize {
        Store::len(self)
    }

    fn contains(&self, t: &EncodedTriple) -> bool {
        Store::contains(self, t)
    }

    fn scan_into(&self, pat: IdPattern, f: &mut dyn FnMut(EncodedTriple)) {
        Store::scan_into(self, pat, f)
    }

    fn scan_range_into(&self, pat: &RangePattern, f: &mut dyn FnMut(EncodedTriple)) {
        Store::scan_range_into(self, pat, f)
    }

    fn count(&self, pat: IdPattern) -> usize {
        Store::count(self, pat)
    }

    fn trie_view(&self, _p: Option<TermId>) -> Option<&Store> {
        Some(self)
    }
}

/// The shard a predicate id routes to, out of `shards`. A multiplicative
/// (Fibonacci) hash spreads consecutive dictionary ids — which is what
/// schema vocabularies produce — across shards instead of clustering them.
/// This is the single routing function shared by the writer (partitioning
/// deltas) and the readers (routing scans); both sides agreeing on it is
/// what makes per-atom scatter-gather exact.
#[inline]
pub fn shard_of_predicate(p: TermId, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (((p.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards.max(1) as u64) as usize
}

/// A predicate-hash-partitioned family of stores presenting as one
/// [`TripleSource`]. Every triple lives in exactly the shard
/// [`shard_of_predicate`] names for its predicate, so:
///
/// * a pattern with a **constant predicate** scans exactly one shard;
/// * a wildcard or interval predicate **fans out** over all shards and the
///   executor unions the partial results (scatter-gather);
/// * joins run above this layer and therefore see the complete match set
///   regardless of how atoms routed.
///
/// `Clone` is cheap (`Arc` bumps per shard).
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<Arc<Store>>,
    len: usize,
}

impl ShardedStore {
    /// Assemble from per-shard stores (shard `i` must only hold triples
    /// whose predicate routes to `i`; debug-asserted under
    /// `strict-invariants`).
    pub fn from_shards(shards: Vec<Arc<Store>>) -> ShardedStore {
        #[cfg(feature = "strict-invariants")]
        for (i, s) in shards.iter().enumerate() {
            for t in s.iter() {
                debug_assert_eq!(
                    shard_of_predicate(t.p, shards.len()),
                    i,
                    "triple {t:?} misrouted to shard {i}"
                );
            }
        }
        let len = shards.iter().map(|s| s.len()).sum();
        ShardedStore { shards, len }
    }

    /// Partition triples by predicate hash and build the shard stores.
    pub fn from_triples(triples: &[EncodedTriple], shards: usize) -> ShardedStore {
        let n = shards.max(1);
        let mut parts: Vec<Vec<EncodedTriple>> = vec![Vec::new(); n];
        for t in triples {
            parts[shard_of_predicate(t.p, n)].push(*t);
        }
        ShardedStore::from_shards(
            parts
                .into_iter()
                .map(|p| Arc::new(Store::from_triples(&p)))
                .collect(),
        )
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a predicate routes to.
    pub fn route(&self, p: TermId) -> usize {
        shard_of_predicate(p, self.shards.len())
    }

    /// Shard `i`'s store.
    pub fn shard(&self, i: usize) -> &Arc<Store> {
        &self.shards[i]
    }

    /// All shard stores, in shard order.
    pub fn shards(&self) -> &[Arc<Store>] {
        &self.shards
    }

    /// Iterate all triples, shard by shard (SPO order within a shard, not
    /// globally).
    pub fn iter(&self) -> impl Iterator<Item = EncodedTriple> + '_ {
        self.shards.iter().flat_map(|s| s.iter())
    }
}

impl TripleSource for ShardedStore {
    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, t: &EncodedTriple) -> bool {
        self.shards[self.route(t.p)].contains(t)
    }

    fn scan_into(&self, pat: IdPattern, f: &mut dyn FnMut(EncodedTriple)) {
        match pat.p {
            Some(p) => self.shards[self.route(p)].scan_into(pat, f),
            None => {
                for s in &self.shards {
                    s.scan_into(pat, f);
                }
            }
        }
    }

    fn scan_range_into(&self, pat: &RangePattern, f: &mut dyn FnMut(EncodedTriple)) {
        match pat.p {
            // Constant predicate: the partition function names the one
            // shard that can match.
            Bound::Const(p) => self.shards[self.route(p)].scan_range_into(pat, f),
            // Interval or wildcard predicate: the hash partition gives no
            // contiguity guarantee over the interval, so gather from every
            // shard (each shard applies the bound locally).
            Bound::Any | Bound::Range(..) => {
                for s in &self.shards {
                    s.scan_range_into(pat, f);
                }
            }
        }
    }

    fn count(&self, pat: IdPattern) -> usize {
        match pat.p {
            Some(p) => self.shards[self.route(p)].count(pat),
            None => self.shards.iter().map(|s| s.count(pat)).sum(),
        }
    }

    fn trie_view(&self, p: Option<TermId>) -> Option<&Store> {
        match p {
            // A constant predicate routes to exactly one shard, whose
            // permutation runs are complete for the atom.
            Some(p) => Some(&self.shards[self.route(p)]),
            // Variable/interval predicates span shards — no single trie —
            // unless the "sharded" source is degenerate with one shard.
            None if self.shards.len() == 1 => Some(&self.shards[0]),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::{Dictionary, Term};

    fn fixture() -> (Store, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = ["a", "b", "c", "p", "q", "v"]
            .iter()
            .map(|n| d.intern(&Term::iri(*n)))
            .collect();
        let (a, b, c, p, q, v) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let triples = vec![
            EncodedTriple::new(a, p, b),
            EncodedTriple::new(a, p, c),
            EncodedTriple::new(b, p, c),
            EncodedTriple::new(a, q, v),
            EncodedTriple::new(c, q, v),
            EncodedTriple::new(a, p, b), // duplicate, deduped at build
        ];
        (Store::from_triples(&triples), ids)
    }

    /// A deterministic many-triple set that spans several buckets at the
    /// given bucket target.
    fn dense_triples(n: u32) -> Vec<EncodedTriple> {
        (0..n)
            .map(|i| EncodedTriple::new(TermId(i % 37), TermId(i % 11), TermId(i % 53)))
            .collect()
    }

    #[test]
    fn build_dedups() {
        let (store, _) = fixture();
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn all_pattern_shapes() {
        let (store, ids) = fixture();
        let (a, b, c, p, q, v) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let pat = |s, p, o| IdPattern { s, p, o };

        // spo point
        assert_eq!(store.scan(pat(Some(a), Some(p), Some(b))).len(), 1);
        assert_eq!(store.scan(pat(Some(a), Some(p), Some(v))).len(), 0);
        // sp?
        assert_eq!(store.scan(pat(Some(a), Some(p), None)).len(), 2);
        // s??
        assert_eq!(store.scan(pat(Some(a), None, None)).len(), 3);
        // ?po
        assert_eq!(store.scan(pat(None, Some(q), Some(v))).len(), 2);
        // ?p?
        assert_eq!(store.scan(pat(None, Some(p), None)).len(), 3);
        // ??o
        assert_eq!(store.scan(pat(None, None, Some(c))).len(), 2);
        // s?o
        assert_eq!(store.scan(pat(Some(a), None, Some(b))).len(), 1);
        assert_eq!(store.scan(pat(Some(b), None, Some(v))).len(), 0);
        // ???
        assert_eq!(store.scan(IdPattern::ALL).len(), 5);
    }

    #[test]
    fn counts_agree_with_scans() {
        let (store, ids) = fixture();
        let all_ids = [None, Some(ids[0]), Some(ids[3]), Some(ids[5])];
        for &s in &all_ids {
            for &p in &all_ids {
                for &o in &all_ids {
                    let pat = IdPattern { s, p, o };
                    assert_eq!(store.count(pat), store.scan(pat).len(), "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn scan_results_are_spo_triples() {
        let (store, ids) = fixture();
        let (p, v) = (ids[3], ids[5]);
        for t in store.scan(IdPattern {
            s: None,
            p: Some(p),
            o: None,
        }) {
            assert_eq!(t.p, p);
        }
        for t in store.scan(IdPattern {
            s: None,
            p: None,
            o: Some(v),
        }) {
            assert_eq!(t.o, v);
        }
    }

    #[test]
    fn property_counts_grouped() {
        let (store, ids) = fixture();
        let counts = store.property_counts();
        assert_eq!(counts.len(), 2);
        let get = |p: TermId| counts.iter().find(|&&(q, _)| q == p).unwrap().1;
        assert_eq!(get(ids[3]), 3);
        assert_eq!(get(ids[4]), 2);
    }

    #[test]
    fn empty_store() {
        let store = Store::from_triples(&[]);
        assert!(store.is_empty());
        assert_eq!(store.scan(IdPattern::ALL).len(), 0);
        assert_eq!(store.property_counts().len(), 0);
    }

    #[test]
    fn iter_in_spo_order() {
        let (store, _) = fixture();
        let v: Vec<_> = store.iter().collect();
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).all(|w| w[0].as_array() <= w[1].as_array()));
    }

    #[test]
    fn small_buckets_answer_every_shape_like_one_bucket() {
        let triples = dense_triples(2000);
        let coarse = Store::from_triples(&triples); // one bucket per index
        let fine = Store::from_triples_with_bucket_target(&triples, 16);
        assert_eq!(coarse.len(), fine.len());
        let ids: Vec<Option<TermId>> =
            [None, Some(TermId(0)), Some(TermId(5)), Some(TermId(36))].to_vec();
        for &s in &ids {
            for &p in &ids {
                for &o in &ids {
                    let pat = IdPattern { s, p, o };
                    assert_eq!(coarse.scan(pat), fine.scan(pat), "pattern {pat:?}");
                    assert_eq!(coarse.count(pat), fine.count(pat), "count {pat:?}");
                }
            }
        }
        assert_eq!(
            coarse.iter().collect::<Vec<_>>(),
            fine.iter().collect::<Vec<_>>()
        );
        assert_eq!(coarse.property_counts(), fine.property_counts());
    }

    #[test]
    fn apply_delta_matches_rebuild() {
        let triples = dense_triples(1500);
        let store = Store::from_triples_with_bucket_target(&triples, 32);
        let inserts: Vec<EncodedTriple> = (0..40)
            .map(|i| EncodedTriple::new(TermId(100 + i), TermId(3), TermId(7)))
            .collect();
        let removes: Vec<EncodedTriple> = triples.iter().step_by(17).copied().collect();
        let updated = store.apply_delta(&inserts, &removes);

        let mut expected: Vec<EncodedTriple> = triples.clone();
        expected.extend(inserts.iter().copied());
        let rm: std::collections::HashSet<_> = removes.iter().copied().collect();
        expected.retain(|t| !rm.contains(t));
        let rebuilt = Store::from_triples_with_bucket_target(&expected, 32);
        assert_eq!(updated.len(), rebuilt.len());
        assert_eq!(
            updated.iter().collect::<Vec<_>>(),
            rebuilt.iter().collect::<Vec<_>>()
        );
        // The original snapshot is untouched.
        assert_eq!(store.len(), Store::from_triples(&triples).len());
    }

    #[test]
    fn apply_delta_shares_untouched_buckets() {
        // Keys clustered by subject: a delta on one subject region must
        // leave distant SPO buckets shared.
        let triples: Vec<EncodedTriple> = (0..4000)
            .map(|i| EncodedTriple::new(TermId(i / 4), TermId(i % 2), TermId(i % 97)))
            .collect();
        let store = Store::from_triples_with_bucket_target(&triples, 64);
        let delta = vec![EncodedTriple::new(TermId(2), TermId(0), TermId(999))];
        let updated = store.apply_delta(&delta, &[]);
        let shared = updated.shared_buckets_with(&store);
        let total = updated.bucket_count();
        assert!(
            shared >= total - 6,
            "expected near-total bucket sharing, got {shared}/{total}"
        );
        assert_eq!(updated.len(), store.len() + 1);
        assert!(updated.contains(&delta[0]));
        assert!(!store.contains(&delta[0]));
    }

    #[test]
    fn apply_delta_handles_noop_and_empty_cases() {
        let triples = dense_triples(100);
        let store = Store::from_triples_with_bucket_target(&triples, 16);
        // Inserting existing triples and removing absent ones: no change.
        let same = store.apply_delta(
            &triples[..10],
            &[EncodedTriple::new(TermId(9999), TermId(9999), TermId(9999))],
        );
        assert_eq!(same.len(), store.len());
        // Empty delta clones (shares everything).
        let clone = store.apply_delta(&[], &[]);
        assert_eq!(clone.shared_buckets_with(&store), clone.bucket_count());
        // Delta onto an empty store.
        let empty = Store::from_triples(&[]);
        let filled = empty.apply_delta(&triples, &[]);
        assert_eq!(filled.len(), store.len());
        // Removing everything empties the store.
        let drained = store.apply_delta(&[], &triples);
        assert!(drained.is_empty());
        assert_eq!(drained.scan(IdPattern::ALL).len(), 0);
    }

    #[test]
    fn range_scans_match_filtered_full_scans() {
        let triples = dense_triples(3000);
        for target in [usize::MAX, 16] {
            let store = Store::from_triples_with_bucket_target(&triples, target);
            let bounds = [
                Bound::Any,
                Bound::Const(TermId(5)),
                Bound::Range(TermId(3), TermId(9)),
                Bound::Range(TermId(20), TermId(40)),
                Bound::Range(TermId(7), TermId(7)), // empty interval
            ];
            for &s in &bounds {
                for &p in &bounds {
                    for &o in &bounds {
                        let pat = RangePattern { s, p, o };
                        let mut got = Vec::new();
                        store.scan_range_into(&pat, &mut |t| got.push(t));
                        got.sort_by_key(|t| t.as_array());
                        let mut want: Vec<EncodedTriple> = store
                            .iter()
                            .filter(|t| s.admits(t.s) && p.admits(t.p) && o.admits(t.o))
                            .collect();
                        want.sort_by_key(|t| t.as_array());
                        assert_eq!(got, want, "pattern {pat:?} target {target}");
                    }
                }
            }
        }
    }

    #[test]
    fn range_scan_without_interval_matches_scan() {
        let (store, ids) = fixture();
        let pat = RangePattern {
            s: Bound::Any,
            p: Bound::Const(ids[3]),
            o: Bound::Any,
        };
        let mut got = Vec::new();
        store.scan_range_into(&pat, &mut |t| got.push(t));
        assert_eq!(
            got,
            store.scan(IdPattern {
                s: None,
                p: Some(ids[3]),
                o: None
            })
        );
    }

    #[test]
    fn apply_delta_key_in_both_lists_is_removed() {
        let t = EncodedTriple::new(TermId(1), TermId(2), TermId(3));
        let store = Store::from_triples(&[]);
        let out = store.apply_delta(&[t], &[t]);
        assert!(out.is_empty());
        let store2 = Store::from_triples(&[t]);
        let out2 = store2.apply_delta(&[t], &[t]);
        assert!(out2.is_empty());
    }

    /// Sorted-and-deduplicated triples of a scan, for order-insensitive
    /// comparison between single and sharded sources.
    fn sorted_scan(src: &dyn TripleSource, pat: IdPattern) -> Vec<EncodedTriple> {
        let mut out = Vec::new();
        src.scan_into(pat, &mut |t| out.push(t));
        out.sort_by_key(|t| t.as_array());
        out
    }

    #[test]
    fn sharded_store_answers_every_shape_like_single() {
        let triples = dense_triples(3000);
        let single = Store::from_triples(&triples);
        for n in [1, 3, 8] {
            let sharded = ShardedStore::from_triples(&triples, n);
            assert_eq!(TripleSource::len(&sharded), single.len());
            let ids = [None, Some(TermId(0)), Some(TermId(5)), Some(TermId(36))];
            for &s in &ids {
                for &p in &ids {
                    for &o in &ids {
                        let pat = IdPattern { s, p, o };
                        assert_eq!(
                            sorted_scan(&sharded, pat),
                            sorted_scan(&single, pat),
                            "pattern {pat:?} shards {n}"
                        );
                        assert_eq!(
                            TripleSource::count(&sharded, pat),
                            single.count(pat),
                            "count {pat:?} shards {n}"
                        );
                    }
                }
            }
            for t in single.iter() {
                assert!(TripleSource::contains(&sharded, &t));
            }
        }
    }

    #[test]
    fn sharded_range_scans_match_filtered_full_scans() {
        let triples = dense_triples(2000);
        let single = Store::from_triples(&triples);
        let sharded = ShardedStore::from_triples(&triples, 4);
        let bounds = [
            Bound::Any,
            Bound::Const(TermId(5)),
            Bound::Range(TermId(3), TermId(9)),
        ];
        for &s in &bounds {
            for &p in &bounds {
                for &o in &bounds {
                    let pat = RangePattern { s, p, o };
                    let mut got = Vec::new();
                    sharded.scan_range_into(&pat, &mut |t| got.push(t));
                    got.sort_by_key(|t| t.as_array());
                    let mut want: Vec<EncodedTriple> = single
                        .iter()
                        .filter(|t| s.admits(t.s) && p.admits(t.p) && o.admits(t.o))
                        .collect();
                    want.sort_by_key(|t| t.as_array());
                    assert_eq!(got, want, "pattern {pat:?}");
                }
            }
        }
    }

    #[test]
    fn seek_from_finds_least_key_at_or_after_probe() {
        let triples = dense_triples(3000);
        for target in [usize::MAX, 16] {
            let store = Store::from_triples_with_bucket_target(&triples, target);
            for order in Order::ALL {
                let idx = store.index(order);
                let keys: Vec<[TermId; 3]> = idx.iter().copied().collect();
                // Every present key seeks to itself; its successor seeks to
                // the next key (or None at the end).
                for (i, k) in keys.iter().enumerate() {
                    assert_eq!(idx.seek_from(k), Some(*k), "target {target}");
                    let mut succ = *k;
                    succ[2] = TermId(succ[2].0 + 1);
                    let expect = keys[i..].iter().find(|&&n| n >= succ).copied();
                    assert_eq!(idx.seek_from(&succ), expect, "target {target}");
                }
                // Probes below the first and above the last key.
                assert_eq!(idx.seek_from(&[TermId(0); 3]), keys.first().copied());
                assert_eq!(idx.seek_from(&[TermId(u32::MAX); 3]), None);
            }
        }
    }

    #[test]
    fn trie_view_routing() {
        let triples = dense_triples(500);
        let single = Store::from_triples(&triples);
        assert!(TripleSource::trie_view(&single, None).is_some());
        assert!(TripleSource::trie_view(&single, Some(TermId(3))).is_some());

        let sharded = ShardedStore::from_triples(&triples, 4);
        // Constant predicate: the routed shard holds all its triples.
        let p = TermId(3);
        let view = sharded.trie_view(Some(p)).expect("routed shard");
        assert_eq!(
            view.count(IdPattern {
                s: None,
                p: Some(p),
                o: None
            }),
            single.count(IdPattern {
                s: None,
                p: Some(p),
                o: None
            })
        );
        // Wildcard predicate spans shards: no single trie.
        assert!(sharded.trie_view(None).is_none());
        let one = ShardedStore::from_triples(&triples, 1);
        assert!(one.trie_view(None).is_some());
    }

    #[test]
    fn predicate_routing_is_total_and_stable() {
        for shards in [1, 2, 7, 16] {
            for p in 0..200u32 {
                let a = shard_of_predicate(TermId(p), shards);
                let b = shard_of_predicate(TermId(p), shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // The hash must actually spread consecutive ids (vocabulary ids are
        // dense) — with 8 shards and 64 consecutive predicates, every shard
        // sees at least one.
        let mut hit = [false; 8];
        for p in 0..64u32 {
            hit[shard_of_predicate(TermId(p), 8)] = true;
        }
        assert!(hit.iter().all(|&h| h), "routing clusters: {hit:?}");
    }
}
