//! Morsel-driven intra-query parallelism.
//!
//! Scans and bind-joins split their input into fixed-size *morsels* that
//! worker threads claim off a shared atomic counter (self-scheduling: fast
//! workers steal more morsels, so skewed morsels never straggle a static
//! partition). Each worker materializes its morsel into a private columnar
//! [`Relation`]; partials are stitched back **in morsel order** with
//! [`Relation::absorb_rows`], so the output is byte-identical to the
//! sequential evaluation — parallelism is observable only through the
//! `op.morsel.*` counters and wall time.
//!
//! Counters:
//! * `op.morsel.count`   — morsels claimed (⌈input/size⌉, min 1; exact and
//!   deterministic, pinned by `tests/metrics_exactness.rs`);
//! * `op.morsel.rows`    — input rows staged into morsels;
//! * `op.morsel.workers` — worker threads used (≤ available parallelism,
//!   hardware-dependent, so never pinned exactly in tests).

use crate::error::{Result, StorageError};
use crate::evaluator::BindShape;
use crate::exec::ScanShape;
use crate::relation::Relation;
use crate::store::TripleSource;
use rdfref_model::{EncodedTriple, TermId};
use rdfref_obs::Obs;
use rdfref_query::ast::Atom;
use rdfref_sync::atomic::{AtomicUsize, Ordering};
use rdfref_sync::Mutex;

/// How many workers to use for `n_morsels` units of work.
fn worker_count(n_morsels: usize) -> usize {
    rdfref_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(n_morsels)
        .max(1)
}

/// Run `n_morsels` work units through a self-scheduling worker pool.
/// `work(m)` produces the partial relation for morsel `m`; partials are
/// assembled in morsel order into a relation with `columns`.
pub(crate) fn run_morsels<F>(
    n_morsels: usize,
    columns: Vec<rdfref_query::Var>,
    obs: &Obs,
    work: F,
) -> Result<Relation>
where
    F: Fn(usize) -> Result<Relation> + Sync,
{
    let workers = worker_count(n_morsels);
    obs.add("op.morsel.workers", workers as u64);
    let next = AtomicUsize::new(0);
    let partials: Mutex<Vec<Option<Relation>>> = Mutex::new(vec![None; n_morsels]);
    let results: Vec<Result<()>> = rdfref_sync::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let m = next.fetch_add(1, Ordering::Relaxed);
                    if m >= n_morsels {
                        return Ok(());
                    }
                    let rel = work(m)?;
                    partials.lock()[m] = Some(rel);
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err(StorageError::WorkerPanicked)))
            .collect()
    });
    for r in results {
        r?;
    }
    let slots = partials.into_inner();
    let mut out = Relation::empty(columns);
    for slot in slots {
        let part = slot.ok_or(StorageError::WorkerPanicked)?;
        out.absorb_rows(&part)?;
    }
    Ok(out)
}

/// Morsel-parallel pattern scan: stage the matching triples from the sorted
/// runs, then filter/project them in `size`-row morsels. Output equals
/// [`crate::exec::scan_atom`] exactly, including row order.
pub(crate) fn scan_atom_morsels(
    source: &dyn TripleSource,
    atom: &Atom,
    size: usize,
    obs: &Obs,
) -> Result<Relation> {
    let size = size.max(1);
    let shape = ScanShape::of(atom);
    // Staging: one pass over the index run collects candidate triples into
    // a contiguous buffer morsel workers can slice without coordination.
    let mut staged: Vec<EncodedTriple> = Vec::new();
    source.scan_range_into(&shape.pattern, &mut |t| staged.push(t));
    let n_morsels = staged.len().div_ceil(size).max(1);
    obs.add("op.morsel.count", n_morsels as u64);
    obs.add("op.morsel.rows", staged.len() as u64);
    if n_morsels == 1 {
        obs.add("op.morsel.workers", 1);
        let mut rel = Relation::empty(shape.columns.clone());
        let mut row: Vec<TermId> = Vec::with_capacity(shape.columns.len());
        for t in &staged {
            shape.emit(t, &mut row, &mut rel)?;
        }
        return Ok(rel);
    }
    let staged = &staged;
    let shape = &shape;
    run_morsels(n_morsels, shape.columns.clone(), obs, |m| {
        let lo = m * size;
        let hi = (lo + size).min(staged.len());
        let mut rel = Relation::empty(shape.columns.clone());
        let mut row: Vec<TermId> = Vec::with_capacity(shape.columns.len());
        for t in &staged[lo..hi] {
            shape.emit(t, &mut row, &mut rel)?;
        }
        Ok(rel)
    })
}

/// Morsel-parallel bind join: chunk the accumulated rows into `size`-row
/// morsels; each worker probes the source per row of its morsel. Output
/// equals the sequential bind join exactly, including row order.
pub(crate) fn bind_join_morsels(
    source: &dyn TripleSource,
    acc: &Relation,
    atom: &Atom,
    size: usize,
    obs: &Obs,
) -> Result<Relation> {
    let size = size.max(1);
    let shape = BindShape::of(acc, atom);
    let rows: Vec<&[TermId]> = acc.rows().collect();
    let n_morsels = rows.len().div_ceil(size).max(1);
    obs.add("op.morsel.count", n_morsels as u64);
    obs.add("op.morsel.rows", rows.len() as u64);
    if n_morsels == 1 {
        obs.add("op.morsel.workers", 1);
        let mut out = Relation::empty(shape.out_columns().to_vec());
        let mut scratch = shape.scratch();
        for row in rows {
            shape.probe(source, row, &mut scratch, &mut out)?;
        }
        return Ok(out);
    }
    let rows = &rows;
    let shape = &shape;
    run_morsels(n_morsels, shape.out_columns().to_vec(), obs, |m| {
        let lo = m * size;
        let hi = (lo + size).min(rows.len());
        let mut out = Relation::empty(shape.out_columns().to_vec());
        let mut scratch = shape.scratch();
        for row in &rows[lo..hi] {
            shape.probe(source, row, &mut scratch, &mut out)?;
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scan_atom;
    use crate::store::Store;
    use rdfref_model::{Dictionary, Term};
    use rdfref_obs::Obs;
    use rdfref_query::Var;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    fn fixture() -> (Store, Vec<TermId>) {
        let mut d = Dictionary::new();
        let ids: Vec<TermId> = ["p", "q"]
            .iter()
            .map(|n| d.intern(&Term::iri(*n)))
            .collect();
        let (p, q) = (ids[0], ids[1]);
        let mut triples = Vec::new();
        for i in 0..100u32 {
            triples.push(EncodedTriple::new(TermId(100 + i), p, TermId(200 + i % 7)));
            if i % 3 == 0 {
                triples.push(EncodedTriple::new(TermId(200 + i % 7), q, TermId(300 + i)));
            }
        }
        (Store::from_triples(&triples), ids)
    }

    #[test]
    fn morsel_scan_is_order_identical_to_sequential() {
        let (store, ids) = fixture();
        let atom = Atom::new(v("x"), ids[0], v("y"));
        let expected = scan_atom(&store, &atom).unwrap();
        for size in [1, 7, 64, 4096] {
            let got = scan_atom_morsels(&store, &atom, size, &Obs::disabled()).unwrap();
            assert_eq!(expected.to_rows(), got.to_rows(), "size={size}");
        }
    }

    #[test]
    fn morsel_counters_are_exact() {
        let (store, ids) = fixture();
        let atom = Atom::new(v("x"), ids[0], v("y")); // 100 matching rows
        let registry = std::sync::Arc::new(rdfref_obs::MetricsRegistry::default());
        let obs = Obs::collecting(registry.clone());
        scan_atom_morsels(&store, &atom, 32, &obs).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("op.morsel.count"), 4); // ceil(100/32)
        assert_eq!(snap.counter("op.morsel.rows"), 100);
        let workers = snap.counter("op.morsel.workers");
        assert!((1..=4).contains(&workers));
    }

    #[test]
    fn empty_scan_is_one_empty_morsel() {
        let (store, _) = fixture();
        let atom = Atom::new(v("x"), TermId(9999), v("y"));
        let registry = std::sync::Arc::new(rdfref_obs::MetricsRegistry::default());
        let obs = Obs::collecting(registry.clone());
        let rel = scan_atom_morsels(&store, &atom, 8, &obs).unwrap();
        assert!(rel.is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("op.morsel.count"), 1);
        assert_eq!(snap.counter("op.morsel.rows"), 0);
    }

    #[test]
    fn morsel_bind_join_is_order_identical_to_sequential() {
        let (store, ids) = fixture();
        // acc = scan (?x p ?y), then bind-join (?y q ?z).
        let first = Atom::new(v("x"), ids[0], v("y"));
        let second = Atom::new(v("y"), ids[1], v("z"));
        let acc = scan_atom(&store, &first).unwrap();
        let expected = {
            let shape = BindShape::of(&acc, &second);
            let mut out = Relation::empty(shape.out_columns().to_vec());
            let mut scratch = shape.scratch();
            for row in acc.rows() {
                shape.probe(&store, row, &mut scratch, &mut out).unwrap();
            }
            out
        };
        for size in [1, 7, 64, 4096] {
            let got = bind_join_morsels(&store, &acc, &second, size, &Obs::disabled()).unwrap();
            assert_eq!(expected.to_rows(), got.to_rows(), "size={size}");
        }
    }
}
