//! The database-textbook cost model — the function `c` of §4 of the paper.
//!
//! "To select the cover leading to the most efficient evaluation, we rely on
//! a cost estimation function `c` which, for a JUCQ `q`, returns the cost of
//! evaluating it through an RDBMS storing the database. […] in \[5\] we
//! computed `c` based on database textbook formulas."
//!
//! Implemented here:
//! * **cardinality estimation** per triple pattern from exact per-property /
//!   per-class statistics; System-R style join selectivity
//!   `1 / max(V(l, v), V(r, v))` per shared variable, with distinct-value
//!   (`V`) propagation through joins;
//! * **cost formulas** mirroring the executor: scans pay per emitted row,
//!   hash joins pay per input and output row, union deduplication pays per
//!   row, and — crucially for the paper's Example 1 — each CQ disjunct pays
//!   a fixed *compilation* overhead (`parse_cost_per_cq`/`_atom`), modeling
//!   the RDBMS's parse/optimize time that made the 318,096-CQ UCQ fail
//!   outright.

use crate::stats::Stats;
use rdfref_model::dictionary::ID_RDF_TYPE;
use rdfref_model::fxhash::FxHashMap;
use rdfref_query::ast::{Atom, Cq, Jucq, PTerm, Ucq};
use rdfref_query::Var;

/// Tunable cost constants (abstract units; only relative magnitudes matter).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Cost per row emitted by an index scan.
    pub scan_cost_per_row: f64,
    /// Cost per row flowing into or out of a hash join.
    pub join_cost_per_row: f64,
    /// Cost per row of union/projection deduplication.
    pub dedup_cost_per_row: f64,
    /// Cost per index probe of a bind (index nested-loop) join.
    pub probe_cost_per_row: f64,
    /// Fixed compile/optimize overhead per CQ disjunct sent to the engine.
    pub parse_cost_per_cq: f64,
    /// Compile overhead per atom of the query text.
    pub parse_cost_per_atom: f64,
    /// Minimum second-smallest atom cardinality of a star body before the
    /// `Auto` join policy prefers WCOJ over chained bind joins: below this,
    /// intermediate results are too small for the leapfrog setup to pay off.
    pub wcoj_star_min_card: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            scan_cost_per_row: 1.0,
            join_cost_per_row: 1.5,
            dedup_cost_per_row: 0.2,
            probe_cost_per_row: 4.0,
            parse_cost_per_cq: 25.0,
            parse_cost_per_atom: 5.0,
            wcoj_star_min_card: 64.0,
        }
    }
}

/// A cost-model verdict for a (sub)query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated result cardinality.
    pub cardinality: f64,
    /// Estimated total evaluation cost (abstract units).
    pub cost: f64,
}

/// Per-variable distinct-value estimates, propagated through joins.
type VMap = FxHashMap<Var, f64>;

/// The cost model's `Auto` verdict for a CQ body's physical join algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinChoice {
    /// The chosen algorithm (`BindJoin` or `Wcoj`, never `Auto`).
    pub algorithm: crate::evaluator::JoinAlgorithm,
    /// Human-readable rationale, rendered by `explain analyze`.
    pub reason: String,
}

/// The cost model: statistics + parameters.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    /// The statistics of the store the query will run against.
    pub stats: &'a Stats,
    /// Cost constants.
    pub params: CostParams,
}

impl<'a> CostModel<'a> {
    /// A model with default parameters.
    pub fn new(stats: &'a Stats) -> Self {
        CostModel {
            stats,
            params: CostParams::default(),
        }
    }

    /// Estimated number of triples matching one pattern.
    pub fn atom_cardinality(&self, atom: &Atom) -> f64 {
        let s = self.stats;
        let card = match &atom.p {
            PTerm::Const(p) if *p == ID_RDF_TYPE => {
                // Class-membership atom. A range object is an interval-encoded
                // class subtree: its cardinality is the exact sum of the
                // member classes' instance counts.
                match (&atom.s, &atom.o) {
                    (_, PTerm::Const(c)) => {
                        let base = s.class_count(*c) as f64;
                        match &atom.s {
                            PTerm::Const(_) => {
                                let ds = s.property(ID_RDF_TYPE).distinct_subjects.max(1) as f64;
                                (base / ds).min(1.0)
                            }
                            PTerm::Var(_) | PTerm::Range(..) => base,
                        }
                    }
                    (_, PTerm::Range(lo, hi)) => {
                        let base = s.class_count_range(*lo, *hi) as f64;
                        match &atom.s {
                            PTerm::Const(_) => {
                                let ds = s.property(ID_RDF_TYPE).distinct_subjects.max(1) as f64;
                                (base / ds).min(1.0)
                            }
                            PTerm::Var(_) | PTerm::Range(..) => base,
                        }
                    }
                    (PTerm::Const(_), PTerm::Var(_)) => {
                        let ps = s.property(ID_RDF_TYPE);
                        ps.count as f64 / ps.distinct_subjects.max(1) as f64
                    }
                    (PTerm::Var(_) | PTerm::Range(..), PTerm::Var(_)) => s.type_triples as f64,
                }
            }
            PTerm::Const(p) => {
                let ps = s.property(*p);
                let mut base = ps.count as f64;
                if matches!(atom.s, PTerm::Const(_)) {
                    base /= ps.distinct_subjects.max(1) as f64;
                }
                if matches!(atom.o, PTerm::Const(_)) {
                    base /= ps.distinct_objects.max(1) as f64;
                }
                base
            }
            PTerm::Range(lo, hi) => {
                // Interval-encoded property subtree: exact triple count over
                // the member properties; per-position constants divide by the
                // aggregated (upper-bound) distinct counts.
                let ps = s.property_range(*lo, *hi);
                let mut base = ps.count as f64;
                if matches!(atom.s, PTerm::Const(_)) {
                    base /= ps.distinct_subjects.max(1) as f64;
                }
                if matches!(atom.o, PTerm::Const(_)) {
                    base /= ps.distinct_objects.max(1) as f64;
                }
                base
            }
            PTerm::Var(_) => {
                let mut base = s.total as f64;
                if matches!(atom.s, PTerm::Const(_)) {
                    base /= s.distinct_subjects.max(1) as f64;
                }
                if matches!(atom.o, PTerm::Const(_)) {
                    base /= s.distinct_objects.max(1) as f64;
                }
                base
            }
        };
        // Repeated variable inside one atom: an equality filter.
        let mut vars: Vec<&Var> = atom.vars().collect();
        vars.sort();
        let dups = vars.windows(2).filter(|w| w[0] == w[1]).count();
        let sel = (1.0 / (self.stats.distinct_subjects.max(2) as f64)).powi(dups as i32);
        (card * sel).max(0.0)
    }

    /// Estimated distinct values of `var` in the scan of `atom`.
    fn atom_var_distinct(&self, atom: &Atom, var: &Var) -> f64 {
        let s = self.stats;
        let card = self.atom_cardinality(atom);
        let mut v = card;
        if atom.s.as_var() == Some(var) {
            v = match &atom.p {
                PTerm::Const(p) => s.property(*p).distinct_subjects as f64,
                PTerm::Range(lo, hi) => s.property_range(*lo, *hi).distinct_subjects as f64,
                PTerm::Var(_) => s.distinct_subjects as f64,
            };
        } else if atom.o.as_var() == Some(var) {
            v = match &atom.p {
                PTerm::Const(p) if *p == ID_RDF_TYPE => s.distinct_classes() as f64,
                PTerm::Const(p) => s.property(*p).distinct_objects as f64,
                PTerm::Range(lo, hi) => s.property_range(*lo, *hi).distinct_objects as f64,
                PTerm::Var(_) => s.distinct_objects as f64,
            };
        } else if atom.p.as_var() == Some(var) {
            v = s.distinct_properties as f64;
        }
        v.min(card).max(if card > 0.0 { 1.0 } else { 0.0 })
    }

    /// Greedy join order for a CQ body: start from the lowest-cardinality
    /// atom, repeatedly add the lowest-cardinality atom connected (by a
    /// shared variable) to what has been joined so far, falling back to a
    /// cross product only when the remainder is disconnected. Returns atom
    /// indices. Shared by the estimator and the executor so the estimate
    /// models the plan that actually runs.
    pub fn order_atoms(&self, body: &[Atom]) -> Vec<usize> {
        let n = body.len();
        if n == 0 {
            return Vec::new();
        }
        let cards: Vec<f64> = body.iter().map(|a| self.atom_cardinality(a)).collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        let mut bound: Vec<Var> = Vec::new();

        let Some(first) = remaining
            .iter()
            .min_by(|&&a, &&b| cards[a].total_cmp(&cards[b]))
            .copied()
        else {
            debug_assert!(false, "remaining starts non-empty when n > 0");
            return Vec::new();
        };
        remaining.retain(|&i| i != first);
        order.push(first);
        bound.extend(body[first].vars().cloned());

        while !remaining.is_empty() {
            let connected: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| body[i].vars().any(|v| bound.contains(v)))
                .collect();
            let pool = if connected.is_empty() {
                &remaining
            } else {
                &connected
            };
            let Some(next) = pool
                .iter()
                .min_by(|&&a, &&b| cards[a].total_cmp(&cards[b]))
                .copied()
            else {
                debug_assert!(false, "pool falls back to non-empty remaining");
                break;
            };
            remaining.retain(|&i| i != next);
            order.push(next);
            for v in body[next].vars() {
                if !bound.contains(v) {
                    bound.push(v.clone());
                }
            }
        }
        order
    }

    /// The `Auto` physical-join verdict for a CQ body. Purely structural +
    /// statistical, never data-touching:
    ///
    /// * fewer than 3 atoms — bind join (a single binary join cannot lose
    ///   asymptotically);
    /// * cyclic variable hypergraph (GYO) — WCOJ: binary plans on cyclic
    ///   bodies materialize intermediates a worst-case-optimal join never
    ///   builds (the triangle's `O(N^{3/2})` vs `O(N²)`);
    /// * star body (a hub variable in ≥ 3 atoms) whose second-smallest atom
    ///   is estimated above [`CostParams::wcoj_star_min_card`] — WCOJ: the
    ///   leapfrog intersects the hub's adjacency lists instead of chaining
    ///   bind joins through them;
    /// * otherwise — bind join.
    pub fn choose_join_algorithm(&self, body: &[Atom]) -> JoinChoice {
        use crate::evaluator::JoinAlgorithm;
        use rdfref_query::varorder;
        if body.len() < 3 {
            return JoinChoice {
                algorithm: JoinAlgorithm::BindJoin,
                reason: "auto: fewer than 3 atoms".to_string(),
            };
        }
        if varorder::is_cyclic(body) {
            return JoinChoice {
                algorithm: JoinAlgorithm::Wcoj,
                reason: "auto: cyclic join graph".to_string(),
            };
        }
        if let Some((hub, n)) = varorder::hub(body) {
            let mut cards: Vec<f64> = body.iter().map(|a| self.atom_cardinality(a)).collect();
            cards.sort_by(f64::total_cmp);
            let second_smallest = cards.get(1).copied().unwrap_or(0.0);
            if second_smallest >= self.params.wcoj_star_min_card {
                return JoinChoice {
                    algorithm: JoinAlgorithm::Wcoj,
                    reason: format!("auto: star join (?{} in {} atoms)", hub.name(), n),
                };
            }
        }
        JoinChoice {
            algorithm: JoinAlgorithm::BindJoin,
            reason: "auto: acyclic, bind-join chain is cheap".to_string(),
        }
    }

    /// Estimate a CQ: cardinality + cost, and the distinct-value map of its
    /// variables at the output (used by the JUCQ estimator).
    fn cq_estimate_full(&self, cq: &Cq) -> (CostEstimate, VMap) {
        let p = &self.params;
        if cq.body.is_empty() {
            return (
                CostEstimate {
                    cardinality: 1.0,
                    cost: 0.0,
                },
                VMap::default(),
            );
        }
        let order = self.order_atoms(&cq.body);
        let mut iter = order.iter();
        let Some(&first_idx) = iter.next() else {
            // order_atoms returns one index per atom and the body is
            // non-empty (checked above) — treat a broken order as empty.
            debug_assert!(false, "order_atoms covers every atom");
            return (
                CostEstimate {
                    cardinality: 1.0,
                    cost: 0.0,
                },
                VMap::default(),
            );
        };
        let first = &cq.body[first_idx];
        let mut card = self.atom_cardinality(first);
        let mut cost = p.scan_cost_per_row * card;
        let mut vmap: VMap = VMap::default();
        for v in first.vars() {
            vmap.insert(v.clone(), self.atom_var_distinct(first, v));
        }
        for &idx in iter {
            let atom = &cq.body[idx];
            let a_card = self.atom_cardinality(atom);
            let mut selectivity = 1.0;
            let mut shares = false;
            let mut atom_vs: Vec<(Var, f64)> = Vec::new();
            for v in atom.vars() {
                let av = self.atom_var_distinct(atom, v);
                if let Some(&rv) = vmap.get(v) {
                    selectivity /= rv.max(av).max(1.0);
                    shares = true;
                }
                atom_vs.push((v.clone(), av));
            }
            let out = card * a_card * selectivity;
            // The executor picks scan+hash or index nested-loop (bind) join
            // by the same criterion; price whichever it will use.
            let hash_cost =
                p.scan_cost_per_row * a_card + p.join_cost_per_row * (card + a_card + out);
            let bind_cost = p.probe_cost_per_row * card + p.scan_cost_per_row * out;
            if shares && card * p.probe_cost_per_row < a_card {
                cost += bind_cost;
            } else {
                cost += hash_cost;
            }
            card = out;
            for (v, av) in atom_vs {
                let merged = match vmap.get(&v) {
                    Some(&rv) => rv.min(av),
                    None => av,
                };
                vmap.insert(v, merged.min(card).max(if card > 0.0 { 1.0 } else { 0.0 }));
            }
            for val in vmap.values_mut() {
                *val = val.min(card).max(if card > 0.0 { 1.0 } else { 0.0 });
            }
        }
        (
            CostEstimate {
                cardinality: card,
                cost,
            },
            vmap,
        )
    }

    /// Estimate one CQ.
    pub fn cq_estimate(&self, cq: &Cq) -> CostEstimate {
        self.cq_estimate_full(cq).0
    }

    /// Estimate a UCQ evaluated as union-distinct of its disjuncts, with the
    /// per-disjunct compile overhead included.
    pub fn ucq_estimate(&self, ucq: &Ucq) -> CostEstimate {
        self.ucq_estimate_full(ucq, &[]).0
    }

    /// UCQ estimate plus distinct-value estimates for named output columns.
    fn ucq_estimate_full(&self, ucq: &Ucq, columns: &[Var]) -> (CostEstimate, VMap) {
        let p = &self.params;
        let mut card = 0.0;
        let mut cost = 0.0;
        let mut col_vs: VMap = VMap::default();
        for cq in &ucq.cqs {
            let (est, vmap) = self.cq_estimate_full(cq);
            card += est.cardinality;
            cost += est.cost;
            for (pos, col) in columns.iter().enumerate() {
                let member_v = match cq.head.get(pos) {
                    Some(PTerm::Var(v)) => vmap.get(v).copied().unwrap_or(est.cardinality),
                    Some(PTerm::Const(_) | PTerm::Range(..)) => 1.0_f64.min(est.cardinality),
                    None => 0.0,
                };
                *col_vs.entry(col.clone()).or_insert(0.0) += member_v;
            }
        }
        cost += p.dedup_cost_per_row * card;
        cost += p.parse_cost_per_cq * ucq.len() as f64;
        cost += p.parse_cost_per_atom * ucq.total_atoms() as f64;
        for v in col_vs.values_mut() {
            *v = v.min(card).max(if card > 0.0 { 1.0 } else { 0.0 });
        }
        (
            CostEstimate {
                cardinality: card,
                cost,
            },
            col_vs,
        )
    }

    /// Estimate a JUCQ: fragment estimates plus the join of fragment
    /// results, ordered smallest-first preferring shared columns (mirroring
    /// the executor).
    pub fn jucq_estimate(&self, jucq: &Jucq) -> CostEstimate {
        let p = &self.params;
        let mut card_total_cost = 0.0;
        let mut frags: Vec<(f64, VMap, Vec<Var>)> = Vec::new();
        for frag in &jucq.fragments {
            let (est, vs) = self.ucq_estimate_full(&frag.ucq, &frag.columns);
            card_total_cost += est.cost;
            frags.push((est.cardinality, vs, frag.columns.clone()));
        }
        if frags.is_empty() {
            return CostEstimate {
                cardinality: 0.0,
                cost: card_total_cost,
            };
        }
        // Greedy join order over fragments.
        let mut remaining: Vec<usize> = (0..frags.len()).collect();
        remaining.sort_by(|&a, &b| frags[a].0.total_cmp(&frags[b].0));
        let first = remaining.remove(0);
        let (mut card, mut vmap, mut cols) = frags[first].clone();
        let mut cost = card_total_cost;
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&i| frags[i].2.iter().any(|c| cols.contains(c)))
                .unwrap_or(0);
            let idx = remaining.remove(pos);
            let (f_card, f_vs, f_cols) = frags[idx].clone();
            let mut selectivity = 1.0;
            for c in &f_cols {
                if cols.contains(c) {
                    let lv = vmap.get(c).copied().unwrap_or(card);
                    let rv = f_vs.get(c).copied().unwrap_or(f_card);
                    selectivity /= lv.max(rv).max(1.0);
                }
            }
            let out = card * f_card * selectivity;
            cost += p.join_cost_per_row * (card + f_card + out);
            card = out;
            for c in &f_cols {
                let fv = f_vs.get(c).copied().unwrap_or(f_card);
                let merged = match vmap.get(c) {
                    Some(&lv) => lv.min(fv),
                    None => fv,
                };
                vmap.insert(c.clone(), merged);
                if !cols.contains(c) {
                    cols.push(c.clone());
                }
            }
            for v in vmap.values_mut() {
                *v = v.min(card).max(if card > 0.0 { 1.0 } else { 0.0 });
            }
        }
        // Final projection + dedup on the head.
        cost += p.dedup_cost_per_row * card;
        CostEstimate {
            cardinality: card,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use rdfref_model::{Dictionary, EncodedTriple, Term, TermId};
    use rdfref_query::ast::Fragment;

    /// A small store: 100 `p` triples over 10 subjects, 20 `type C1`,
    /// 2 `type C2`.
    fn fixture() -> (Stats, Vec<TermId>) {
        let mut d = Dictionary::new();
        let p = d.intern(&Term::iri("p"));
        let c1 = d.intern(&Term::iri("C1"));
        let c2 = d.intern(&Term::iri("C2"));
        let mut triples = Vec::new();
        let id = |n: String, d: &mut Dictionary| d.intern(&Term::iri(n));
        for i in 0..10 {
            let s = id(format!("s{i}"), &mut d);
            for j in 0..10 {
                let o = id(format!("o{j}"), &mut d);
                triples.push(EncodedTriple::new(s, p, o));
            }
        }
        for i in 0..20 {
            let s = id(format!("s{}", i % 10), &mut d);
            let extra = id(format!("t{i}"), &mut d);
            let _ = extra;
            triples.push(EncodedTriple::new(
                s,
                ID_RDF_TYPE,
                if i < 18 { c1 } else { c2 },
            ));
        }
        let store = Store::from_triples(&triples);
        (Stats::compute(&store), vec![p, c1, c2])
    }

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn auto_join_choice_triangle_star_chain() {
        use crate::evaluator::JoinAlgorithm;
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        let triangle = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("x"), p, v("z")),
        ];
        let chain = vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("z"), p, v("w")),
        ];
        let star = vec![
            Atom::new(v("h"), p, v("a")),
            Atom::new(v("h"), p, v("b")),
            Atom::new(v("h"), p, v("c")),
        ];
        let two = vec![Atom::new(v("x"), p, v("y")), Atom::new(v("y"), p, v("z"))];
        let c = m.choose_join_algorithm(&triangle);
        assert_eq!(c.algorithm, JoinAlgorithm::Wcoj);
        assert!(c.reason.contains("cyclic"), "{}", c.reason);
        let c = m.choose_join_algorithm(&chain);
        assert_eq!(c.algorithm, JoinAlgorithm::BindJoin, "{}", c.reason);
        // Star over the 100-row p-relation: every atom card = 100 ≥ 64.
        let c = m.choose_join_algorithm(&star);
        assert_eq!(c.algorithm, JoinAlgorithm::Wcoj);
        assert!(c.reason.contains("star"), "{}", c.reason);
        let c = m.choose_join_algorithm(&two);
        assert_eq!(c.algorithm, JoinAlgorithm::BindJoin);
        assert!(c.reason.contains("fewer than 3"), "{}", c.reason);
    }

    #[test]
    fn small_star_stays_bind_join() {
        use crate::evaluator::JoinAlgorithm;
        let (stats, ids) = fixture();
        let mut m = CostModel::new(&stats);
        // Raise the gate above the 100-row atoms: the star falls back.
        m.params.wcoj_star_min_card = 1_000.0;
        let p = ids[0];
        let star = vec![
            Atom::new(v("h"), p, v("a")),
            Atom::new(v("h"), p, v("b")),
            Atom::new(v("h"), p, v("c")),
        ];
        let c = m.choose_join_algorithm(&star);
        assert_eq!(c.algorithm, JoinAlgorithm::BindJoin, "{}", c.reason);
    }

    #[test]
    fn atom_cardinalities_follow_stats() {
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        // (?x p ?y): all 100 p-triples.
        let all = Atom::new(v("x"), p, v("y"));
        assert!((m.atom_cardinality(&all) - 100.0).abs() < 1e-9);
        // (s p ?y): 100 / 10 subjects = 10.
        let s_bound = Atom::new(TermId(7), p, v("y"));
        assert!((m.atom_cardinality(&s_bound) - 10.0).abs() < 1e-9);
        // Type atoms use class counts: C2 has 2 instances, C1 has 10
        // (each subject typed; duplicates dedup to 10 and 2... class_count reflects store).
        let c2_atom = Atom::new(v("x"), ID_RDF_TYPE, ids[2]);
        assert_eq!(
            m.atom_cardinality(&c2_atom),
            stats.class_count(ids[2]) as f64
        );
        // Variable property: whole store.
        let any = Atom::new(v("x"), v("p"), v("y"));
        assert_eq!(m.atom_cardinality(&any), stats.total as f64);
    }

    #[test]
    fn join_selectivity_reduces_cardinality() {
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        let two_atoms = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), p, v("y")),
                Atom::new(v("x"), ID_RDF_TYPE, ids[2]),
            ],
        )
        .unwrap();
        let est = m.cq_estimate(&two_atoms);
        // Joining with the selective C2 atom must shrink below 100.
        assert!(est.cardinality < 100.0);
        assert!(est.cardinality > 0.0);
        assert!(est.cost > 0.0);
    }

    #[test]
    fn order_atoms_puts_selective_first() {
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        let body = vec![
            Atom::new(v("x"), p, v("y")),           // card 100
            Atom::new(v("x"), ID_RDF_TYPE, ids[2]), // card 2
        ];
        let order = m.order_atoms(&body);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn order_atoms_prefers_connected() {
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        // (x type C2) [selective], (x p y) [connected], (a p b) [disconnected but equally big]
        let body = vec![
            Atom::new(v("a"), p, v("b")),
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("x"), ID_RDF_TYPE, ids[2]),
        ];
        let order = m.order_atoms(&body);
        assert_eq!(order[0], 2);
        assert_eq!(order[1], 1, "connected atom joins before cross product");
    }

    #[test]
    fn ucq_cost_includes_per_cq_overhead() {
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        let cq = Cq::new(vec![v("x")], vec![Atom::new(v("x"), p, v("y"))]).unwrap();
        let one = Ucq::new(vec![cq.clone()]).unwrap();
        let many = Ucq::new(vec![cq.clone(); 100]).unwrap();
        let est1 = m.ucq_estimate(&one);
        let est100 = m.ucq_estimate(&many);
        // 100 identical disjuncts: ≥ 100x the data cost plus 100x overhead.
        assert!(est100.cost > 99.0 * est1.cost);
        assert!(est100.cost - 100.0 * est1.cost < 1e-6);
    }

    #[test]
    fn jucq_estimate_prefers_selective_grouping() {
        // The Example-1 effect in miniature: joining the huge type scan
        // with a selective atom inside one fragment beats joining two
        // fragment results where one is huge.
        let (stats, ids) = fixture();
        let m = CostModel::new(&stats);
        let p = ids[0];
        let type_atom = Atom::new(v("x"), ID_RDF_TYPE, v("u"));
        let sel_atom = Atom::new(TermId(7), p, v("x"));

        // Cover A (SCQ-like): two singleton fragments.
        let f1 = Fragment::new(
            vec![v("x"), v("u")],
            Ucq::new(vec![Cq::new_unchecked(
                vec![v("x").into(), v("u").into()],
                vec![type_atom.clone()],
            )])
            .unwrap(),
        )
        .unwrap();
        let f2 = Fragment::new(
            vec![v("x")],
            Ucq::new(vec![Cq::new_unchecked(
                vec![v("x").into()],
                vec![sel_atom.clone()],
            )])
            .unwrap(),
        )
        .unwrap();
        let scq = Jucq::new(vec![v("x"), v("u")], vec![f1, f2]).unwrap();

        // Cover B (grouped): one fragment with both atoms.
        let grouped = Jucq::new(
            vec![v("x"), v("u")],
            vec![Fragment::new(
                vec![v("x"), v("u")],
                Ucq::new(vec![Cq::new_unchecked(
                    vec![v("x").into(), v("u").into()],
                    vec![type_atom, sel_atom],
                )])
                .unwrap(),
            )
            .unwrap()],
        )
        .unwrap();

        let est_scq = m.jucq_estimate(&scq);
        let est_grouped = m.jucq_estimate(&grouped);
        assert!(
            est_grouped.cost < est_scq.cost,
            "grouped {} !< scq {}",
            est_grouped.cost,
            est_scq.cost
        );
    }

    #[test]
    fn empty_body_cq() {
        let (stats, _) = fixture();
        let m = CostModel::new(&stats);
        let cq = Cq::new_unchecked(vec![], vec![]);
        let est = m.cq_estimate(&cq);
        assert_eq!(est.cardinality, 1.0);
        assert_eq!(est.cost, 0.0);
    }
}
