//! # rdfref-storage — an RDBMS-style triple store substrate
//!
//! The demonstrated system evaluates reformulated queries "through
//! performant RDBMSs". This crate is the stand-in engine (see the
//! substitution table in `DESIGN.md`): a dictionary-encoded triple table
//! with sorted permutation indexes, statistics, a materializing executor for
//! CQ/UCQ/JUCQ plans, and the database-textbook cost model that drives the
//! paper's cost-based cover selection.
//!
//! * [`store::Store`] — immutable snapshot of a graph's triples with three
//!   sorted permutation indexes (SPO, POS, OSP) answering any triple-pattern
//!   shape with binary-search ranges;
//! * [`stats::Stats`] — per-property and per-class cardinalities, distinct
//!   counts and value distributions (the demo's "dataset statistics"
//!   screen, experiment E7);
//! * [`relation::Relation`] — a flat, columnar-named materialized relation,
//!   the unit of data flow between operators;
//! * [`exec`] — operators: pattern scan, hash join, union-distinct,
//!   projection; plus greedy join ordering for CQ bodies;
//! * [`evaluator`] — entry points `eval_cq` / `eval_ucq` / `eval_jucq`, with
//!   per-operator row metrics ([`exec::ExecMetrics`]) so experiments can
//!   report intermediate-result sizes exactly as Example 1 of the paper
//!   does;
//! * [`cost`] — cardinality estimation + cost formulas for CQs, UCQs and
//!   JUCQs (the function `c` of §4 of the paper);
//! * [`wcoj`] — a worst-case-optimal leapfrog-triejoin executor over the
//!   same permutation indexes, selected per CQ by the
//!   [`evaluator::JoinAlgorithm`] policy.

#![forbid(unsafe_code)]

pub mod cost;
pub mod error;
pub mod evaluator;
pub mod exec;
mod morsel;
pub mod relation;
pub mod stats;
pub mod store;
pub mod wcoj;

pub use cost::{CostEstimate, CostModel, JoinChoice};
pub use error::{Result, StorageError};
pub use evaluator::{
    eval_cq, eval_jucq, eval_ucq, JoinAlgorithm, Parallelism, DEFAULT_MORSEL_SIZE,
};
pub use exec::ExecMetrics;
pub use relation::Relation;
pub use stats::{Stats, StatsMaintainer};
pub use store::{shard_of_predicate, Bound, RangePattern, ShardedStore, Store, TripleSource};
pub use wcoj::{physical_choice, PhysicalChoice, WcojPlan};
