//! Fixture tests for the dataflow lints (L012–L014): every lint fires on
//! its seeded violations with the expected def-use witness chain, and
//! stays silent on the clean twin.

use std::path::PathBuf;
use xtask::{lint_sources, Config, FileContext, Violation};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_one(src: &str) -> Vec<Violation> {
    let sources = vec![(
        FileContext {
            path: "crates/core/src/fixture.rs".to_string(),
            crate_name: "core".to_string(),
        },
        src.to_string(),
    )];
    let (violations, _graph) = lint_sources(sources, &Config::default());
    violations
}

fn of<'a>(violations: &'a [Violation], lint: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.lint == lint).collect()
}

// ---- L012 ------------------------------------------------------------------

#[test]
fn l012_fires_on_undcoded_flows_with_witness_chains() {
    let v = lint_one(&fixture("l012_taint.rs"));
    let f = of(&v, "L012");
    assert_eq!(f.len(), 2, "violations: {v:?}");
    // Direct flow: encode_cq → plan → relation → QueryAnswer.
    let direct = &f[0];
    assert!(direct.message.contains("QueryAnswer"), "{}", direct.message);
    assert!(
        direct.related.len() >= 3,
        "witness should span source, steps and sink: {:?}",
        direct.related
    );
    assert!(
        direct.related[0].message.contains("originates"),
        "{:?}",
        direct.related[0]
    );
    assert!(
        direct.related.last().unwrap().message.contains("sink"),
        "{:?}",
        direct.related
    );
    // Witness steps name the bindings the value flowed through.
    let steps: Vec<&str> = direct
        .related
        .iter()
        .filter(|r| r.message.contains("binding"))
        .map(|r| r.message.as_str())
        .collect();
    assert!(
        steps.iter().any(|m| m.contains("`plan`"))
            && steps.iter().any(|m| m.contains("`relation`")),
        "steps: {steps:?}"
    );
    // Inter-procedural flow through the `ref_plan` carrier also fires.
    assert!(f[1].line > f[0].line, "{v:?}");
}

#[test]
fn l012_silent_on_decode_boundaries() {
    let v = lint_one(&fixture("l012_taint_clean.rs"));
    assert_eq!(of(&v, "L012").len(), 0, "violations: {v:?}");
}

#[test]
fn l012_covers_the_wcoj_columnar_batch_boundary() {
    // The leapfrog executor adds a hop — encoded ids travel inside a
    // columnar batch before row assembly — and the taint must survive it:
    // the undecoded path fires, the `decode_*`-sanitized twin stays silent.
    let v = lint_one(&fixture("l012_wcoj_batch.rs"));
    let f = of(&v, "L012");
    assert_eq!(f.len(), 1, "violations: {v:?}");
    assert!(f[0].message.contains("QueryAnswer"), "{}", f[0].message);
    let steps: Vec<&str> = f[0]
        .related
        .iter()
        .filter(|r| r.message.contains("binding"))
        .map(|r| r.message.as_str())
        .collect();
    assert!(
        steps.iter().any(|m| m.contains("`batch`")),
        "witness must traverse the batch hop: {steps:?}"
    );
}

// ---- L013 ------------------------------------------------------------------

#[test]
fn l013_fires_on_protocol_violations() {
    let v = lint_one(&fixture("l013_atomics.rs"));
    let f = of(&v, "L013");
    assert_eq!(f.len(), 4, "violations: {v:?}");
    assert!(f[0].message.contains("store must use Ordering::Release"));
    assert!(f[1].message.contains("load must use Ordering::Acquire"));
    assert!(f[2].message.contains("written after the Release store"));
    assert!(f[3].message.contains("read-modify-write"));
    // The write-after-store finding points back at the store.
    assert_eq!(f[2].related.len(), 1, "{:?}", f[2].related);
    assert!(f[2].related[0].message.contains("Release store"));
    assert!(f[2].related[0].line < f[2].line);
}

#[test]
fn l013_silent_on_correct_protocol_and_plain_counters() {
    let v = lint_one(&fixture("l013_atomics_clean.rs"));
    assert_eq!(of(&v, "L013").len(), 0, "violations: {v:?}");
}

// ---- L014 ------------------------------------------------------------------

#[test]
fn l014_fires_on_unpinned_cache_calls_with_call_chain() {
    let v = lint_one(&fixture("l014_epoch.rs"));
    let f = of(&v, "L014");
    assert_eq!(f.len(), 2, "violations: {v:?}");
    assert!(f[0].message.contains("`lookup`"), "{}", f[0].message);
    assert!(f[0].message.contains("lookup_at"), "{}", f[0].message);
    assert!(f[1].message.contains("`insert`"), "{}", f[1].message);
    // The witness names the serving-path hop the call was reached by.
    assert!(
        f[0].related
            .iter()
            .any(|r| r.message.contains("Snapshot::run")),
        "{:?}",
        f[0].related
    );
}

#[test]
fn l014_silent_on_pinned_variants_and_offline_callers() {
    let v = lint_one(&fixture("l014_epoch_clean.rs"));
    assert_eq!(of(&v, "L014").len(), 0, "violations: {v:?}");
}

// ---- determinism -----------------------------------------------------------

#[test]
fn flow_findings_are_deterministic_across_runs() {
    let fire = [
        fixture("l012_taint.rs"),
        fixture("l013_atomics.rs"),
        fixture("l014_epoch.rs"),
    ]
    .join("\n");
    let a = lint_one(&fire);
    let b = lint_one(&fire);
    assert_eq!(a, b);
}
