//! Fixture tests for the sync-facade coverage lint (L015), the L013
//! wrapper-soundness companion, and the `include_mutation_cfg` gate that
//! lets CI point the flow lints at the seeded `modelcheck_mutation` twins.

use std::path::PathBuf;
use xtask::{lint_sources, Config, FileContext, Violation};

fn lint_in_crate(krate: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let sources = vec![(
        FileContext {
            path: format!("crates/{krate}/src/fixture.rs"),
            crate_name: krate.to_string(),
        },
        src.to_string(),
    )];
    let (violations, _graph) = lint_sources(sources, cfg);
    violations
}

fn of<'a>(violations: &'a [Violation], lint: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.lint == lint).collect()
}

// ---- L015 — raw sync primitive outside the facade --------------------------

#[test]
fn l015_fires_on_each_raw_sync_path_in_a_scoped_crate() {
    let src = r#"
use std::sync::Arc;

pub fn work() {
    let handle = std::thread::spawn(|| 1u64);
    let m = parking_lot::Mutex::new(0u64);
    drop((handle, m));
}
"#;
    let v = lint_in_crate("core", src, &Config::default());
    let f = of(&v, "L015");
    assert_eq!(f.len(), 3, "one finding per raw path: {f:?}");
    assert!(f[0].message.contains("std::sync"), "{}", f[0].message);
    assert!(f[1].message.contains("std::thread"), "{}", f[1].message);
    assert!(f[2].message.contains("parking_lot"), "{}", f[2].message);
    // Every message points at the facade.
    assert!(f.iter().all(|v| v.message.contains("rdfref_sync")));
}

#[test]
fn l015_is_silent_outside_the_scoped_crates_and_in_test_code() {
    let src = "use std::sync::Arc;\npub fn f() -> Arc<u64> { Arc::new(1) }\n";
    // `query` is not in the default `sync_scope_crates`.
    assert!(of(&lint_in_crate("query", src, &Config::default()), "L015").is_empty());
    // Test code in a scoped crate is exempt: tests never run under the
    // scheduler, so they are not coverage holes.
    let test_only = r#"
#[cfg(test)]
mod tests {
    use std::sync::Arc;
    #[test]
    fn t() {
        let _ = Arc::new(std::sync::Mutex::new(0));
    }
}
"#;
    assert!(of(
        &lint_in_crate("core", test_only, &Config::default()),
        "L015"
    )
    .is_empty());
}

#[test]
fn l015_single_segment_patterns_require_path_position() {
    // A local binding that happens to be called `parking_lot` is not a
    // sync primitive; only `parking_lot::…` path usage fires.
    let src = "pub fn f() -> u64 { let parking_lot = 3; parking_lot }\n";
    assert!(of(&lint_in_crate("core", src, &Config::default()), "L015").is_empty());
}

#[test]
fn l015_scope_is_configurable() {
    let src = "use std::sync::Arc;\npub fn f() -> Arc<u64> { Arc::new(1) }\n";
    let cfg = Config {
        sync_scope_crates: vec!["query".to_string()],
        ..Config::default()
    };
    assert_eq!(of(&lint_in_crate("query", src, &cfg), "L015").len(), 1);
    assert!(of(&lint_in_crate("core", src, &cfg), "L015").is_empty());
}

// ---- L013 wrapper soundness ------------------------------------------------

#[test]
fn l013_accepts_publication_atomics_typed_through_std_or_the_facade() {
    let std_typed = r#"
use std::sync::atomic::AtomicU64;
pub struct Cell {
    version: AtomicU64,
    slot: u64,
}
"#;
    // The std import trips L015 in a scoped crate but the type itself is
    // sound for L013 — the two rules are independent.
    let v = lint_in_crate("core", std_typed, &Config::default());
    assert!(of(&v, "L013").is_empty(), "{v:?}");

    let facade_typed = r#"
pub struct Cell {
    version: rdfref_sync::atomic::AtomicU64,
    slot: u64,
}
"#;
    let v = lint_in_crate("core", facade_typed, &Config::default());
    assert!(of(&v, "L013").is_empty(), "{v:?}");
}

#[test]
fn l013_flags_a_publication_atomic_resolved_to_a_foreign_crate() {
    let src = r#"
use crossbeam::atomic::AtomicU64;
pub struct Cell {
    version: AtomicU64,
}
"#;
    let v = lint_in_crate("core", src, &Config::default());
    let f = of(&v, "L013");
    assert_eq!(f.len(), 1, "{v:?}");
    assert!(
        f[0].message.contains("crossbeam::atomic::AtomicU64"),
        "{}",
        f[0].message
    );
}

#[test]
fn l013_flags_a_publication_atomic_with_a_non_atomic_type() {
    let src = "pub struct Cell { version: u64 }\n";
    let v = lint_in_crate("core", src, &Config::default());
    let f = of(&v, "L013");
    assert_eq!(f.len(), 1, "{v:?}");
    assert!(f[0].message.contains("names no atomic"), "{}", f[0].message);
}

#[test]
fn l013_stays_silent_on_unresolvable_atomic_types_and_test_structs() {
    // No import in scope: could be a glob re-export — benefit of the doubt.
    let bare = "pub struct Cell { version: AtomicU64 }\n";
    assert!(of(&lint_in_crate("core", bare, &Config::default()), "L013").is_empty());
    // Test-only structs are exempt like everything else.
    let test_struct = r#"
#[cfg(test)]
mod tests {
    struct Cell {
        version: u64,
    }
}
"#;
    assert!(of(
        &lint_in_crate("core", test_struct, &Config::default()),
        "L013"
    )
    .is_empty());
}

// ---- include_mutation_cfg — pointing the flow lints at the seeded twins ----

const MUTATION_TWIN: &str = r#"
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cell {
    version: AtomicU64,
    slot: u64,
}

#[cfg(modelcheck_mutation = "relaxed_version")]
impl Cell {
    pub fn publish(&self, v: u64) {
        self.version.store(v, Ordering::Relaxed);
    }
}

#[cfg(not(modelcheck_mutation = "relaxed_version"))]
impl Cell {
    pub fn publish(&self, v: u64) {
        self.version.store(v, Ordering::Release);
    }
}
"#;

#[test]
fn mutation_twins_are_skipped_by_default_and_flagged_when_opted_in() {
    let v = lint_in_crate("core", MUTATION_TWIN, &Config::default());
    assert!(
        of(&v, "L013").is_empty(),
        "mutation twin leaked into the default sweep: {v:?}"
    );

    let cfg = Config {
        include_mutation_cfg: true,
        ..Config::default()
    };
    let v = lint_in_crate("core", MUTATION_TWIN, &cfg);
    let f = of(&v, "L013");
    assert_eq!(f.len(), 1, "{v:?}");
    assert!(
        f[0].message.contains("Relaxed") || f[0].message.contains("Release"),
        "{}",
        f[0].message
    );
}

// ---- end to end over the real tree -----------------------------------------

fn real_core_sources() -> Vec<(FileContext, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    ["pubcell", "serving", "answer", "cache", "engine"]
        .iter()
        .map(|name| {
            let rel = format!("crates/core/src/{name}.rs");
            let src = std::fs::read_to_string(root.join(&rel))
                .unwrap_or_else(|e| panic!("read {rel}: {e}"));
            (
                FileContext {
                    path: rel,
                    crate_name: "core".to_string(),
                },
                src,
            )
        })
        .collect()
}

/// The two statically-detectable seeded mutations (the third,
/// `publish_order`, is a pure reordering only the model checker can see)
/// are invisible to the default sweep and caught when CI opts in.
#[test]
fn seeded_mutations_in_the_real_tree_are_caught_exactly_when_opted_in() {
    let sources = real_core_sources();

    let (v, _) = lint_sources(sources.clone(), &Config::default());
    assert!(of(&v, "L013").is_empty(), "{v:?}");
    assert!(of(&v, "L014").is_empty(), "{v:?}");
    assert!(
        of(&v, "L015").is_empty(),
        "facade migration regressed: {v:?}"
    );

    let cfg = Config {
        include_mutation_cfg: true,
        ..Config::default()
    };
    let (v, _) = lint_sources(sources, &cfg);
    let l013 = of(&v, "L013");
    assert_eq!(l013.len(), 1, "{v:?}");
    assert!(l013[0].file.ends_with("pubcell.rs"), "{}", l013[0].file);
    assert!(l013[0].message.contains("Relaxed"), "{}", l013[0].message);
    let l014 = of(&v, "L014");
    assert_eq!(l014.len(), 1, "{v:?}");
    assert!(l014[0].file.ends_with("answer.rs"), "{}", l014[0].file);
}
