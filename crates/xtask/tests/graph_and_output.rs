//! Item-graph structure tests plus the output-path guarantees: SARIF
//! round-trip validity, `--write-allowlist` determinism, and the scan-root
//! exclusion of `vendor/` and `target/`.

use std::path::PathBuf;
use xtask::{
    collect_files, lint_sources, parse_config, parse_items, regenerate_allowlist, render_config,
    run_lints, scan_roots, to_sarif, Config, FileContext, ItemKind, ParsedFile,
};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

// ---- item parser over the nested fixture -----------------------------------

#[test]
fn item_parser_handles_nested_modules_and_use_trees() {
    let src = fixture("items_nested.rs");
    let pf = ParsedFile::parse(
        FileContext {
            path: "crates/rdf/src/fixture.rs".to_string(),
            crate_name: "rdf".to_string(),
        },
        &src,
    );
    // The two use declarations expand: one glob, `deep`, and the alias.
    let mut globs = 0;
    let mut aliases = Vec::new();
    for item in &pf.items {
        if let ItemKind::Use { targets } = &item.kind {
            for t in targets {
                if t.glob {
                    globs += 1;
                    assert_eq!(t.path, ["std", "collections"]);
                } else {
                    aliases.push((t.alias.clone(), t.path.clone()));
                }
            }
        }
    }
    assert_eq!(globs, 1);
    assert!(aliases
        .iter()
        .any(|(a, p)| { a == "deep" && p == &["crate", "outer", "inner", "deep"] }));
    assert!(aliases
        .iter()
        .any(|(a, p)| { a == "util" && p == &["crate", "outer", "inner", "helpers"] }));

    // outer > inner > helpers nesting, with cfg(test) on `checks` only.
    let outer = pf
        .items
        .iter()
        .find(|i| i.name == "outer")
        .expect("mod outer");
    let inner = outer
        .children
        .iter()
        .find(|i| i.name == "inner")
        .expect("mod inner");
    assert!(inner.children.iter().any(|i| i.name == "helpers"));
    assert!(!inner.cfg_test);
    let checks = outer
        .children
        .iter()
        .find(|i| i.name == "checks")
        .expect("mod checks");
    assert!(checks.cfg_test);
    assert!(checks.children.iter().all(|i| i.cfg_test));
}

#[test]
fn cfg_test_subtree_is_invisible_to_the_lints() {
    let src = fixture("items_nested.rs");
    let (violations, graph) = lint_sources(
        vec![(
            FileContext {
                path: "crates/rdf/src/fixture.rs".to_string(),
                crate_name: "rdf".to_string(),
            },
            src,
        )],
        &Config::default(),
    );
    // The panic! lives in #[cfg(test)] — no L002 (or anything else).
    assert!(violations.is_empty(), "violations: {violations:?}");
    // The graph still indexes the production fns.
    assert!(graph
        .free_fns
        .contains_key(&("rdf".to_string(), "top".to_string())));
    assert!(graph
        .free_fns
        .contains_key(&("rdf".to_string(), "deep".to_string())));
}

#[test]
fn parse_items_flags_only_test_subtrees() {
    let toks = xtask::lexer::lex(&fixture("items_nested.rs"));
    let items = parse_items(&toks);
    let test_marked: Vec<&str> = collect_names(&items, true);
    assert!(test_marked.contains(&"checks"));
    assert!(!test_marked.contains(&"inner"));
    assert!(!test_marked.contains(&"top"));
}

fn collect_names(items: &[xtask::Item], cfg_test: bool) -> Vec<&str> {
    let mut out = Vec::new();
    for i in items {
        if i.cfg_test == cfg_test {
            out.push(i.name.as_str());
        }
        out.extend(collect_names(&i.children, cfg_test));
    }
    out
}

// ---- mini-repo helpers ------------------------------------------------------

fn mini_repo(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir()
        .join(format!("xtask-graph-tests-{}", std::process::id()))
        .join(name);
    // Start clean so reruns see exactly these files.
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, src).unwrap();
    }
    root
}

fn rdf_only_config() -> Config {
    Config {
        library_crates: vec!["rdf".to_string()],
        allow: Vec::new(),
        ..Config::default()
    }
}

const DIRTY_LIB: &str =
    "#![forbid(unsafe_code)]\npub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n";

// ---- SARIF round-trip -------------------------------------------------------

#[test]
fn sarif_output_round_trips_as_valid_2_1_0() {
    let root = mini_repo("sarif", &[("crates/rdf/src/lib.rs", DIRTY_LIB)]);
    let mut cfg = rdf_only_config();
    cfg.allow.push(xtask::AllowEntry {
        lint: "L001".to_string(),
        file: "crates/rdf/src/lib.rs".to_string(),
        count: 1,
        reason: "fixture budget".to_string(),
    });
    let report = run_lints(&root, &cfg).unwrap();
    assert!(report.clean());
    let sarif = to_sarif(&report, &cfg);

    // Round-trip through the obs JSON parser: syntactic validity plus the
    // SARIF 2.1.0 shape the CI upload needs.
    let doc = rdfref_obs::json::parse(&sarif).expect("SARIF must be valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let runs = doc.get("runs").and_then(|r| r.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(|n| n.as_str()),
        Some("xtask-lint")
    );
    let rules = driver
        .get("rules")
        .and_then(|r| r.as_array())
        .expect("rules");
    assert_eq!(rules.len(), 15, "one rule per catalog entry");
    assert_eq!(rules[0].get("id").and_then(|i| i.as_str()), Some("L001"));

    let results = runs[0]
        .get("results")
        .and_then(|r| r.as_array())
        .expect("results");
    assert_eq!(results.len(), report.violations.len());
    let r0 = &results[0];
    assert_eq!(r0.get("ruleId").and_then(|v| v.as_str()), Some("L001"));
    assert_eq!(r0.get("level").and_then(|v| v.as_str()), Some("error"));
    let loc = r0
        .get("locations")
        .and_then(|l| l.as_array())
        .and_then(|l| l.first())
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        loc.get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|u| u.as_str()),
        Some("crates/rdf/src/lib.rs")
    );
    assert!(loc
        .get("region")
        .and_then(|r| r.get("startLine"))
        .and_then(|l| l.as_f64())
        .is_some());
    // The allowlisted finding carries an accepted suppression.
    let supp = r0
        .get("suppressions")
        .and_then(|s| s.as_array())
        .expect("suppressions");
    assert_eq!(
        supp[0].get("justification").and_then(|j| j.as_str()),
        Some("fixture budget")
    );
}

#[test]
fn sarif_emission_is_deterministic() {
    let root = mini_repo("sarif-det", &[("crates/rdf/src/lib.rs", DIRTY_LIB)]);
    let cfg = rdf_only_config();
    let a = to_sarif(&run_lints(&root, &cfg).unwrap(), &cfg);
    let b = to_sarif(&run_lints(&root, &cfg).unwrap(), &cfg);
    assert_eq!(a, b);
}

#[test]
fn sarif_renders_witness_chains_as_related_locations() {
    // A flow-lint finding carries its def-use witness; SARIF must emit it
    // as `relatedLocations`, in flow order, byte-identically across runs.
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/l012_taint.rs"),
    )
    .unwrap();
    let cfg = Config::default();
    let lint_once = || {
        let sources = vec![(
            FileContext {
                path: "crates/core/src/fixture.rs".to_string(),
                crate_name: "core".to_string(),
            },
            src.clone(),
        )];
        let (violations, _) = xtask::lint_sources(sources, &cfg);
        xtask::LintReport {
            violations,
            over_budget: Vec::new(),
            stale: Vec::new(),
            files_scanned: 1,
        }
    };
    let report = lint_once();
    let sarif = to_sarif(&report, &cfg);
    assert_eq!(sarif, to_sarif(&lint_once(), &cfg), "must be deterministic");

    let doc = rdfref_obs::json::parse(&sarif).expect("SARIF must be valid JSON");
    let results = doc.get("runs").and_then(|r| r.as_array()).unwrap()[0]
        .get("results")
        .and_then(|r| r.as_array())
        .expect("results");
    let flow = results
        .iter()
        .find(|r| r.get("ruleId").and_then(|i| i.as_str()) == Some("L012"))
        .expect("an L012 result");
    let related = flow
        .get("relatedLocations")
        .and_then(|r| r.as_array())
        .expect("relatedLocations");
    assert!(related.len() >= 3, "source, steps, sink");
    let first_msg = related[0]
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(|t| t.as_str())
        .expect("message.text");
    assert!(first_msg.contains("originates"), "{first_msg}");
    for r in related {
        let loc = r.get("physicalLocation").expect("physicalLocation");
        assert!(loc
            .get("region")
            .and_then(|g| g.get("startLine"))
            .and_then(|l| l.as_f64())
            .is_some());
    }
}

// ---- --changed filtering ----------------------------------------------------

#[test]
fn filtered_run_reports_only_the_requested_files() {
    // Two dirty files; the filter keeps only one in the report, and allow
    // entries for out-of-scope files are neither stale nor budget-checked.
    let root = mini_repo(
        "changed-filter",
        &[
            ("crates/rdf/src/lib.rs", DIRTY_LIB),
            (
                "crates/rdf/src/extra.rs",
                "pub fn g(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
            ),
        ],
    );
    let mut cfg = rdf_only_config();
    cfg.allow.push(xtask::AllowEntry {
        lint: "L001".to_string(),
        file: "crates/rdf/src/lib.rs".to_string(),
        count: 1,
        reason: "out of scope for this run".to_string(),
    });
    let only: std::collections::BTreeSet<String> = ["crates/rdf/src/extra.rs".to_string()]
        .into_iter()
        .collect();
    let report = xtask::run_lints_filtered(&root, &cfg, Some(&only)).unwrap();
    assert_eq!(report.files_scanned, 1);
    assert!(report
        .violations
        .iter()
        .all(|v| v.file == "crates/rdf/src/extra.rs"));
    assert!(report.stale.is_empty(), "{:?}", report.stale);
    // extra.rs has findings (unwrap + missing forbid) and no budget.
    assert!(!report.clean());
    assert!(report
        .over_budget
        .iter()
        .all(|(_, f, _, _)| f == "crates/rdf/src/extra.rs"));

    // The unfiltered run still sees both files.
    let full = run_lints(&root, &cfg).unwrap();
    assert_eq!(full.files_scanned, 2);
    assert!(full
        .violations
        .iter()
        .any(|v| v.file == "crates/rdf/src/lib.rs"));
}

// ---- allowlist determinism --------------------------------------------------

#[test]
fn write_allowlist_is_byte_identical_across_a_double_run() {
    let root = mini_repo(
        "allow-det",
        &[
            ("crates/rdf/src/lib.rs", "#![forbid(unsafe_code)]\nmod b;\nmod a;\npub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n"),
            ("crates/rdf/src/a.rs", "pub fn g(v: &[u32]) -> u32 { *v.first().unwrap() }\n"),
            ("crates/rdf/src/b.rs", "pub fn h(v: &[u32]) -> u32 { v.first().copied().expect(\"h\") }\n"),
        ],
    );
    let cfg = rdf_only_config();
    // First run: regenerate from scratch.
    let report1 = run_lints(&root, &cfg).unwrap();
    let text1 = render_config(&regenerate_allowlist(&cfg, &report1.violations));
    // Second run: parse the written config back in and regenerate again.
    let cfg2 = parse_config(&text1).unwrap();
    let report2 = run_lints(&root, &cfg2).unwrap();
    let text2 = render_config(&regenerate_allowlist(&cfg2, &report2.violations));
    assert_eq!(text1, text2, "allowlist must be stable across runs");
    // And it is sorted: entries appear in (lint, file) order.
    let files: Vec<&str> = text1
        .lines()
        .filter_map(|l| l.strip_prefix("file = "))
        .collect();
    let mut sorted = files.clone();
    sorted.sort();
    assert_eq!(files, sorted, "allow entries must be sorted by file");
}

// ---- scan-root exclusion ----------------------------------------------------

#[test]
fn vendor_and_target_stay_outside_the_scan_roots() {
    let cfg = Config::default();
    let root = PathBuf::from("/repo");
    let roots = scan_roots(&root, &cfg);
    assert_eq!(roots.len(), cfg.library_crates.len());
    for r in &roots {
        let s = r.to_string_lossy();
        assert!(
            !s.contains("vendor") && !s.contains("target"),
            "scan root {s} must not cover vendor/ or target/"
        );
        assert!(
            s.ends_with("/src"),
            "every scan root is a crate src dir, got {s}"
        );
    }

    // And end-to-end: planted violations under vendor/ and target/ are
    // never collected, let alone reported.
    let bad = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    let root = mini_repo(
        "excluded",
        &[
            (
                "crates/rdf/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn ok() {}\n",
            ),
            ("vendor/dep/src/lib.rs", bad),
            ("target/debug/build/gen.rs", bad),
            ("crates/rdf/target/out.rs", bad),
        ],
    );
    let cfg = rdf_only_config();
    let files = collect_files(&root, &cfg);
    assert_eq!(files.len(), 1, "only crates/rdf/src is scanned: {files:?}");
    let report = run_lints(&root, &cfg).unwrap();
    assert!(report.clean(), "over: {:?}", report.over_budget);
    assert_eq!(report.files_scanned, 1);
}
