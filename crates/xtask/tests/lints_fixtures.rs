//! End-to-end lint tests: every lint fires on a seeded fixture, exempt
//! regions stay silent, and the exact-budget allowlist semantics hold on a
//! synthetic mini-repo.

use std::path::PathBuf;
use xtask::{lint_file, parse_config, run_lints, AllowEntry, Config, FileContext};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as library code of `crate_name` at `path`.
fn lint(name: &str, crate_name: &str, path: &str) -> Vec<xtask::Violation> {
    let ctx = FileContext {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
    };
    lint_file(&fixture(name), &ctx, &Config::default())
}

fn count(violations: &[xtask::Violation], lint: &str) -> usize {
    violations.iter().filter(|v| v.lint == lint).count()
}

#[test]
fn l001_fires_on_unwrap_and_expect() {
    let v = lint("l001_unwrap.rs", "rdf", "crates/rdf/src/fixture.rs");
    assert_eq!(count(&v, "L001"), 2, "violations: {v:?}");
    // rdf is not a result_crate, so the panicking pub fns are not L004.
    assert_eq!(count(&v, "L004"), 0, "violations: {v:?}");
    // Findings carry 1-based positions pointing at the method name.
    let first = v.iter().find(|x| x.lint == "L001").unwrap();
    assert!(first.line >= 1 && first.col >= 1);
}

#[test]
fn l002_fires_on_panic_family_macros() {
    let v = lint("l002_panic.rs", "rdf", "crates/rdf/src/fixture.rs");
    assert_eq!(count(&v, "L002"), 3, "violations: {v:?}");
}

#[test]
fn l003_fires_in_libraries_but_not_bins() {
    let v = lint("l003_println.rs", "rdf", "crates/rdf/src/fixture.rs");
    assert_eq!(count(&v, "L003"), 2, "violations: {v:?}");
    // The same source under src/bin/ is a CLI entry point — exempt.
    let v = lint(
        "l003_println.rs",
        "datagen",
        "crates/datagen/src/bin/tool.rs",
    );
    assert_eq!(count(&v, "L003"), 0, "violations: {v:?}");
    // So is a crate not configured as a library crate at all.
    let v = lint("l003_println.rs", "bench", "crates/bench/src/fixture.rs");
    assert_eq!(count(&v, "L003"), 0, "violations: {v:?}");
}

#[test]
fn l004_fires_on_panicking_pub_fn_without_result() {
    let v = lint("l004_pub_fn.rs", "core", "crates/core/src/fixture.rs");
    // `risky` panics without returning Result; `safe` returns Result and
    // `internal` is pub(crate) — both exempt.
    assert_eq!(count(&v, "L004"), 1, "violations: {v:?}");
    let l004 = v.iter().find(|x| x.lint == "L004").unwrap();
    assert!(l004.message.contains("risky"), "message: {}", l004.message);
    // The unwraps in `risky` and `internal` are still L001 sites.
    assert_eq!(count(&v, "L001"), 2, "violations: {v:?}");
    // Outside a result_crate the same file has no L004 findings.
    let v = lint("l004_pub_fn.rs", "rdf", "crates/rdf/src/fixture.rs");
    assert_eq!(count(&v, "L004"), 0, "violations: {v:?}");
}

#[test]
fn l005_fires_on_guard_live_across_answer() {
    let v = lint("l005_guard.rs", "core", "crates/core/src/fixture.rs");
    assert_eq!(count(&v, "L005"), 1, "violations: {v:?}");
    let l005 = v.iter().find(|x| x.lint == "L005").unwrap();
    assert!(l005.message.contains("guard"), "message: {}", l005.message);
    // L005 is scoped to guard_paths — the same source elsewhere is clean.
    let v = lint("l005_guard.rs", "storage", "crates/storage/src/fixture.rs");
    assert_eq!(count(&v, "L005"), 0, "violations: {v:?}");
}

#[test]
fn l005_fires_on_guard_live_across_publish() {
    let v = lint("l005_publish.rs", "core", "crates/core/src/fixture.rs");
    // `bad` publishes under a live shard guard; `good` drops it first and
    // `unguarded_calls_are_fine` calls a name outside guarded_calls.
    assert_eq!(count(&v, "L005"), 1, "violations: {v:?}");
    let l005 = v.iter().find(|x| x.lint == "L005").unwrap();
    assert!(
        l005.message.contains("publish"),
        "message must name the guarded call: {}",
        l005.message
    );

    // The guarded-call list is configuration, not a hardcode: without
    // `publish` in guarded_calls the same source is clean.
    let cfg = parse_config("guarded_calls = [\"answer\"]\n").unwrap();
    let ctx = FileContext {
        path: "crates/core/src/fixture.rs".to_string(),
        crate_name: "core".to_string(),
    };
    let v = lint_file(&fixture("l005_publish.rs"), &ctx, &cfg);
    assert_eq!(count(&v, "L005"), 0, "violations: {v:?}");
}

#[test]
fn l006_fires_on_heavy_clone_in_loop() {
    let v = lint("l006_clone_loop.rs", "rdf", "crates/rdf/src/fixture.rs");
    // graph.clone() and dict.clone() inside the for body; the out-of-loop
    // graph clone and the in-loop String clone are clean.
    assert_eq!(count(&v, "L006"), 2, "violations: {v:?}");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let v = lint("exempt_test_code.rs", "rdf", "crates/rdf/src/fixture.rs");
    assert!(v.is_empty(), "expected no findings, got: {v:?}");
}

// ---- allowlist semantics over a synthetic mini-repo -----------------------

/// Build `<tmp>/<name>/crates/rdf/src/lib.rs` containing `src` and return
/// the mini-repo root. Each caller uses a distinct `name`, and the pid keeps
/// concurrent test processes apart.
fn mini_repo(name: &str, src: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join(format!("xtask-lint-tests-{}", std::process::id()))
        .join(name);
    let src_dir = root.join("crates/rdf/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(src_dir.join("lib.rs"), src).unwrap();
    root
}

fn rdf_only_config() -> Config {
    Config {
        library_crates: vec!["rdf".to_string()],
        allow: Vec::new(),
        ..Config::default()
    }
}

// The forbid attribute keeps L011 quiet so these tests see exactly one
// (L001) finding.
const ONE_UNWRAP: &str =
    "#![forbid(unsafe_code)]\npub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n";

fn allow_one_unwrap(count: usize) -> AllowEntry {
    AllowEntry {
        lint: "L001".to_string(),
        file: "crates/rdf/src/lib.rs".to_string(),
        count,
        reason: "fixture".to_string(),
    }
}

#[test]
fn unbudgeted_violation_fails_the_run() {
    let root = mini_repo("unbudgeted", ONE_UNWRAP);
    let report = run_lints(&root, &rdf_only_config()).unwrap();
    assert!(!report.clean());
    assert_eq!(report.files_scanned, 1);
    // One finding against an implicit budget of 0.
    assert_eq!(
        report.over_budget,
        vec![(
            "L001".to_string(),
            "crates/rdf/src/lib.rs".to_string(),
            1,
            0
        )]
    );
}

#[test]
fn exact_budget_makes_the_run_clean() {
    let root = mini_repo("exact", ONE_UNWRAP);
    let mut cfg = rdf_only_config();
    cfg.allow.push(allow_one_unwrap(1));
    let report = run_lints(&root, &cfg).unwrap();
    assert!(report.clean(), "over: {:?}", report.over_budget);
    assert_eq!(report.violations.len(), 1);
}

#[test]
fn over_generous_budget_fails_as_mismatch() {
    // count=2 but only 1 finding: the budget must be ratcheted down, not
    // left slack for a new violation to hide in.
    let root = mini_repo("slack", ONE_UNWRAP);
    let mut cfg = rdf_only_config();
    cfg.allow.push(allow_one_unwrap(2));
    let report = run_lints(&root, &cfg).unwrap();
    assert!(!report.clean());
    assert_eq!(
        report.over_budget,
        vec![(
            "L001".to_string(),
            "crates/rdf/src/lib.rs".to_string(),
            1,
            2
        )]
    );
}

#[test]
fn entry_with_no_findings_is_stale() {
    let root = mini_repo(
        "stale",
        "#![forbid(unsafe_code)]\npub fn f(v: &[u32]) -> Option<u32> {\n    v.first().copied()\n}\n",
    );
    let mut cfg = rdf_only_config();
    cfg.allow.push(allow_one_unwrap(1));
    let report = run_lints(&root, &cfg).unwrap();
    assert!(!report.clean());
    assert!(report.over_budget.is_empty());
    assert_eq!(report.stale.len(), 1);
    assert_eq!(report.stale[0].lint, "L001");
}

#[test]
fn repo_allowlist_parses_and_counts_stay_under_the_cap() {
    // The checked-in lints.toml must parse, and the residual-site cap from
    // the error-handling policy (< 75) must hold.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("lints.toml");
    let cfg = parse_config(&std::fs::read_to_string(path).unwrap()).unwrap();
    assert!(
        cfg.allowed_sites() < 75,
        "allowlist budgets {} residual sites",
        cfg.allowed_sites()
    );
}
