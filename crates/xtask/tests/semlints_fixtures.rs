//! Fixture tests for the semantic lints (L007–L011) and the graph-aware
//! L001 refinement: every lint fires on its seeded violation and stays
//! silent on the clean twin.

use std::path::PathBuf;
use xtask::{lint_sources, Config, FileContext, Violation};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Run the full two-phase catalog over in-memory files.
fn lint_multi(files: &[(&str, &str, &str)]) -> Vec<Violation> {
    let sources = files
        .iter()
        .map(|(krate, path, src)| {
            (
                FileContext {
                    path: path.to_string(),
                    crate_name: krate.to_string(),
                },
                src.to_string(),
            )
        })
        .collect();
    let (violations, _graph) = lint_sources(sources, &Config::default());
    violations
}

fn count(violations: &[Violation], lint: &str) -> usize {
    violations.iter().filter(|v| v.lint == lint).count()
}

// ---- L007 ------------------------------------------------------------------

#[test]
fn l007_fires_on_abba_lock_cycle() {
    let src = fixture("l007_lock_cycle.rs");
    let v = lint_multi(&[("core", "crates/core/src/fixture.rs", &src)]);
    assert_eq!(count(&v, "L007"), 1, "violations: {v:?}");
    let f = v.iter().find(|x| x.lint == "L007").unwrap();
    assert!(f.message.contains("Shards.a"), "message: {}", f.message);
    assert!(f.message.contains("Shards.b"), "message: {}", f.message);
}

#[test]
fn l007_silent_on_consistent_order_and_dropped_guards() {
    let src = fixture("l007_lock_order_clean.rs");
    let v = lint_multi(&[("core", "crates/core/src/fixture.rs", &src)]);
    assert_eq!(count(&v, "L007"), 0, "violations: {v:?}");
}

#[test]
fn l007_sees_cycles_through_the_call_graph() {
    // The two orders only conflict transitively: each method holds one
    // lock and calls a helper that takes the other.
    let src = r#"
        use std::sync::Mutex;
        pub struct Maint { epochs: Mutex<u32>, plans: Mutex<u32> }
        impl Maint {
            pub fn refresh(&self) {
                let g = self.epochs.lock();
                self.note();
            }
            fn note(&self) {
                let g = self.plans.lock();
            }
            pub fn invalidate(&self) {
                let g = self.plans.lock();
                self.bump();
            }
            fn bump(&self) {
                let g = self.epochs.lock();
            }
        }
    "#;
    let v = lint_multi(&[("core", "crates/core/src/maint.rs", src)]);
    assert_eq!(count(&v, "L007"), 1, "violations: {v:?}");
}

// ---- L008 ------------------------------------------------------------------

const STORAGE_SIDE: &str = r#"
    pub enum StorageError { Io }
    pub type Result<T> = std::result::Result<T, StorageError>;
    pub fn scan_spill() -> Result<u32> { Ok(1) }
"#;

const CORE_CALLER: &str = r#"
    use rdfref_storage::scan_spill;
    pub enum CoreError { Plan }
    pub fn plan() -> std::result::Result<u32, CoreError> {
        let n = scan_spill()?;
        Ok(n)
    }
"#;

#[test]
fn l008_fires_on_unmapped_cross_crate_question_mark() {
    let v = lint_multi(&[
        ("storage", "crates/storage/src/spill.rs", STORAGE_SIDE),
        ("core", "crates/core/src/plan.rs", CORE_CALLER),
    ]);
    assert_eq!(count(&v, "L008"), 1, "violations: {v:?}");
    let f = v.iter().find(|x| x.lint == "L008").unwrap();
    assert!(f.message.contains("StorageError"), "message: {}", f.message);
    assert!(f.message.contains("CoreError"), "message: {}", f.message);
}

#[test]
fn l008_silent_when_a_from_impl_bridges_the_crates() {
    let core_with_from = format!(
        "{CORE_CALLER}\n    impl From<StorageError> for CoreError {{\n        fn from(_e: StorageError) -> CoreError {{ CoreError::Plan }}\n    }}\n"
    );
    let v = lint_multi(&[
        ("storage", "crates/storage/src/spill.rs", STORAGE_SIDE),
        ("core", "crates/core/src/plan.rs", &core_with_from),
    ]);
    assert_eq!(count(&v, "L008"), 0, "violations: {v:?}");
}

#[test]
fn l008_silent_on_map_err_and_same_crate_question_mark() {
    let mapped = r#"
        use rdfref_storage::scan_spill;
        pub enum CoreError { Plan }
        pub fn plan() -> std::result::Result<u32, CoreError> {
            let n = scan_spill().map_err(|_| CoreError::Plan)?;
            local()?;
            Ok(n)
        }
        fn local() -> std::result::Result<u32, CoreError> { Ok(2) }
    "#;
    let v = lint_multi(&[
        ("storage", "crates/storage/src/spill.rs", STORAGE_SIDE),
        ("core", "crates/core/src/plan.rs", mapped),
    ]);
    assert_eq!(count(&v, "L008"), 0, "violations: {v:?}");
}

#[test]
fn l008_fires_on_boxed_dyn_error_in_pub_signature() {
    let src = r#"
        pub fn anon() -> std::result::Result<u32, Box<dyn std::error::Error>> {
            Ok(1)
        }
    "#;
    let v = lint_multi(&[("core", "crates/core/src/anon.rs", src)]);
    assert_eq!(count(&v, "L008"), 1, "violations: {v:?}");
    assert!(
        v[0].message.contains("Box<dyn Error>"),
        "message: {}",
        v[0].message
    );
}

// ---- L009 ------------------------------------------------------------------

#[test]
fn l009_fires_on_all_four_hygiene_failures() {
    let src = fixture("l009_span.rs");
    let v = lint_multi(&[("obs", "crates/obs/src/fixture.rs", &src)]);
    assert_eq!(count(&v, "L009"), 4, "violations: {v:?}");
    let msgs: Vec<&str> = v
        .iter()
        .filter(|x| x.lint == "L009")
        .map(|x| x.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("bound to `_`")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("statement position")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("stranded")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("mem::forget")), "{msgs:?}");
}

#[test]
fn l009_silent_on_named_guards_and_read_stopwatches() {
    let src = fixture("l009_span_clean.rs");
    let v = lint_multi(&[("obs", "crates/obs/src/fixture.rs", &src)]);
    assert_eq!(count(&v, "L009"), 0, "violations: {v:?}");
}

// ---- L010 ------------------------------------------------------------------

#[test]
fn l010_fires_on_blocking_workers_and_sleepy_spans() {
    let src = fixture("l010_blocking.rs");
    let v = lint_multi(&[("storage", "crates/storage/src/fixture.rs", &src)]);
    // worker sleep + worker fs::read + span-body sleep.
    assert_eq!(count(&v, "L010"), 3, "violations: {v:?}");
}

#[test]
fn l010_silent_on_pure_workers_and_spans() {
    let src = fixture("l010_blocking_clean.rs");
    let v = lint_multi(&[("storage", "crates/storage/src/fixture.rs", &src)]);
    assert_eq!(count(&v, "L010"), 0, "violations: {v:?}");
}

// ---- L011 ------------------------------------------------------------------

#[test]
fn l011_fires_on_missing_forbid_attribute() {
    let v = lint_multi(&[("rdf", "crates/rdf/src/lib.rs", "pub fn ok() {}\n")]);
    assert_eq!(count(&v, "L011"), 1, "violations: {v:?}");
    assert!(v.iter().any(|x| x.message.contains("missing")));
}

#[test]
fn l011_silent_when_the_attribute_is_present() {
    let v = lint_multi(&[(
        "rdf",
        "crates/rdf/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn ok() {}\n",
    )]);
    assert_eq!(count(&v, "L011"), 0, "violations: {v:?}");
}

#[test]
fn l011_fires_on_unsafe_bypass_anywhere_in_the_crate() {
    let v = lint_multi(&[
        (
            "rdf",
            "crates/rdf/src/lib.rs",
            "#![forbid(unsafe_code)]\nmod deep;\n",
        ),
        (
            "rdf",
            "crates/rdf/src/deep.rs",
            "#[allow(unsafe_code)]\npub fn sneaky() { let p = 0u8; }\n",
        ),
    ]);
    assert_eq!(count(&v, "L011"), 1, "violations: {v:?}");
    assert!(v.iter().any(|x| x.message.contains("allow(unsafe_code)")));
    // The `unsafe` keyword itself is also a finding — but not in tests.
    let v = lint_multi(&[(
        "rdf",
        "crates/rdf/src/lib.rs",
        "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    fn f() { unsafe { } }\n}\n",
    )]);
    assert_eq!(count(&v, "L011"), 0, "violations: {v:?}");
}

// ---- L001 refinement -------------------------------------------------------

#[test]
fn l001_spares_domain_expect_methods_but_not_option_expect() {
    let src = fixture("l001_expect_method.rs");
    let v = lint_multi(&[("obs", "crates/obs/src/fixture.rs", &src)]);
    assert_eq!(count(&v, "L001"), 1, "violations: {v:?}");
    let f = v.iter().find(|x| x.lint == "L001").unwrap();
    // The surviving finding is the Option::expect, not the parser helper.
    let line: u32 = f.line;
    let src_line = src.lines().nth(line as usize - 1).unwrap();
    assert!(src_line.contains("v.expect"), "flagged line: {src_line}");
}
