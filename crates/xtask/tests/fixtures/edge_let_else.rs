//! Edge-case fixture: `let … else { … }` statements. The diverging else
//! block must not be mistaken for a new item or truncate the fn body.

pub fn first_even(xs: &[u32]) -> u32 {
    let Some(&first) = xs.iter().find(|x| *x % 2 == 0) else {
        return 0;
    };
    first
}

pub fn parse_pair(s: &str) -> Option<(u32, u32)> {
    let Some((a, b)) = s.split_once(',') else {
        return None;
    };
    let Ok(a) = a.trim().parse::<u32>() else {
        return None;
    };
    let Ok(b) = b.trim().parse::<u32>() else {
        return None;
    };
    Some((a, b))
}

pub fn after_let_else(x: u32) -> u32 {
    // A fn *after* the let-else ones: proves body spans stayed aligned.
    x * 2
}
