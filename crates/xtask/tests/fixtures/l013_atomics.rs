//! L013 fixture (fires): four publication-protocol violations on a
//! `SnapshotCell`-shaped type — the Relaxed-downgrade bugs the lint
//! exists to catch.

use std::sync::atomic::{AtomicU64, Ordering};

struct Cell {
    version: AtomicU64,
    slot: u64,
}

impl Cell {
    /// Finding 1: a publication store downgraded to Relaxed.
    fn publish_relaxed(&self, seq: u64) {
        self.version.store(seq, Ordering::Relaxed);
    }

    /// Finding 2: a publication load downgraded to Relaxed.
    fn read_relaxed(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Finding 3: the slot is written *after* the Release store — the
    /// publish is visible before its payload.
    fn publish_then_write(&mut self, seq: u64, snap: u64) {
        self.version.store(seq, Ordering::Release);
        self.slot = snap;
    }

    /// Finding 4: a read-modify-write on the publication atomic with
    /// Relaxed ordering.
    fn bump(&self) -> u64 {
        self.version.fetch_add(1, Ordering::Relaxed)
    }
}
