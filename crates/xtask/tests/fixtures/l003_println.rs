//! Fixture: two L003 sites (stdout/stderr prints) in a library crate.
//! The same source linted with a `/bin/` path must produce zero L003.

pub fn trace(msg: &str) {
    println!("{msg}");
    eprintln!("warn: {msg}");
}

pub fn fine(msg: &str) -> String {
    format!("formatted: {msg}")
}
