//! L013 clean twin: the publication protocol done right, plus patterns
//! the lint must not confuse with it.

use std::sync::atomic::{AtomicU64, Ordering};

struct Cell {
    version: AtomicU64,
    tick: AtomicU64,
    slot: u64,
}

impl Cell {
    /// Correct publish: payload first, Release store last.
    fn publish(&mut self, seq: u64, snap: u64) {
        self.slot = snap;
        self.version.store(seq, Ordering::Release);
    }

    /// Correct read side.
    fn current(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// SeqCst is an acceptable (stronger) ordering on both sides.
    fn publish_seqcst(&mut self, seq: u64, snap: u64) {
        self.slot = snap;
        self.version.store(seq, Ordering::SeqCst);
    }

    fn current_seqcst(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// `tick` is a stats counter, not a configured publication atomic:
    /// Relaxed is fine there.
    fn bump_stats(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Republishing in a loop: each iteration's slot write precedes its
    /// *own* Release store — the back edge is not "after the store".
    fn republish(&mut self, seqs: Vec<u64>) {
        for s in seqs {
            self.slot = s;
            self.version.store(s, Ordering::Release);
        }
    }
}
