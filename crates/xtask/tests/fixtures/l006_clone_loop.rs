//! Fixture: two L006 sites — heavy values cloned inside a loop body.
//! Clones of heavy values outside loops, and clones of light values inside
//! loops, are clean.

pub fn copy_all(graphs: &[Graph], dict: &Dictionary) -> Vec<(Graph, Dictionary)> {
    let mut out = Vec::new();
    for graph in graphs {
        out.push((graph.clone(), dict.clone()));
    }
    out
}

pub fn fine_outside(graph: &Graph) -> Graph {
    graph.clone()
}

pub fn fine_light(names: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for name in names {
        out.push(name.clone());
    }
    out
}
