//! L007 fire fixture: two methods acquire the same two shard locks in
//! opposite orders — the classic ABBA deadlock.

use std::sync::Mutex;

pub struct Shards {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Shards {
    pub fn sum_ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        0
    }

    pub fn sum_ba(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        0
    }
}
