//! Item-parser fixture: nested modules, glob + group imports, a cfg(test)
//! subtree whose contents must stay invisible to every lint.

use std::collections::*;
use crate::outer::inner::{deep, helpers as util};

pub mod outer {
    pub mod inner {
        pub fn deep() -> u32 {
            1
        }

        pub mod helpers {
            pub fn assist() -> u32 {
                2
            }
        }
    }

    #[cfg(test)]
    mod checks {
        pub fn boom() {
            panic!("test-only code may panic");
        }
    }
}

pub fn top() -> u32 {
    3
}
