//! Fixture: one L004 site — a `pub fn` that panics internally but does not
//! return `Result`. (`risky` is also an L001 finding; L004 points at the
//! signature.)

pub fn risky(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn safe(v: &[u32]) -> Result<u32, String> {
    v.first().copied().ok_or_else(|| "empty".to_string())
}

pub(crate) fn internal(v: &[u32]) -> u32 {
    // pub(crate) is not public API — exempt from L004 (still an L001 site).
    *v.first().unwrap()
}
