//! L012 fixture (fires): encoded-space values reach the base-space
//! `QueryAnswer` without a decode boundary — the exact bug of dropping
//! the `map_values(decode)` rebind out of `run_query`.

pub struct QueryAnswer {
    rows: Vec<u64>,
}

struct Encoder;

impl Encoder {
    fn encode_cq(&self, q: u64) -> u64 {
        q + 1
    }
    fn decode(&self, id: u64) -> u64 {
        id - 1
    }
}

struct Engine {
    enc: Encoder,
}

fn eval(plan: u64) -> Vec<u64> {
    vec![plan]
}

impl Engine {
    /// Direct flow: source → let chain → sink literal, no decode.
    fn run_query(&self, q: u64) -> QueryAnswer {
        let plan = self.enc.encode_cq(q);
        let relation = eval(plan);
        QueryAnswer { rows: relation }
    }

    /// A carrier: its return path is tainted by the source call.
    fn ref_plan(&self) -> u64 {
        self.enc.encode_cq(1)
    }

    /// Inter-procedural flow: the carrier's return feeds the sink.
    fn run_cached(&self) -> QueryAnswer {
        let plan = self.ref_plan();
        QueryAnswer { rows: eval(plan) }
    }
}
