//! Fixture: two L001 sites (`.unwrap()` / `.expect()`) in library code.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("need two elements")
}

pub fn fine(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
