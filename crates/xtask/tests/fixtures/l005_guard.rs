//! Fixture: one L005 site — a lock guard held live across a call into
//! `answer`. The second function drops the guard first and is clean.

pub fn bad(db: &Database, cache: &Mutex<State>, q: &Cq) -> usize {
    let guard = cache.lock().unwrap();
    let n = db.answer(q);
    guard.record(n);
    n
}

pub fn good(db: &Database, cache: &Mutex<State>, q: &Cq) -> usize {
    let guard = cache.lock().unwrap();
    let hint = guard.hint();
    drop(guard);
    db.answer(q) + hint
}
