//! L009 fire fixture: four distinct span/stopwatch hygiene failures.

pub struct Obs;

pub fn run(obs: &Obs) -> u64 {
    let _ = obs.span("parse");
    obs.span("plan");
    let sw = obs.stopwatch("eval");
    42
}

pub fn leak(obs: &Obs) {
    let _span = obs.span("answer");
    std::mem::forget(_span);
}
