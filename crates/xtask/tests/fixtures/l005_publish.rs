//! Fixture: L005 with `guarded_calls` — snapshot publication reached while
//! a shard lock guard is live. The clean variant drops the guard before
//! publishing; the last function calls an unguarded name and stays silent.

pub fn bad(cell: &SnapshotCell, shards: &Mutex<Shards>, snap: Arc<Snapshot>) {
    let shard = shards.lock().unwrap();
    shard.note_epoch(snap.seq);
    cell.publish(snap);
}

pub fn good(cell: &SnapshotCell, shards: &Mutex<Shards>, snap: Arc<Snapshot>) {
    let shard = shards.lock().unwrap();
    let epoch = shard.epoch();
    drop(shard);
    cell.publish(snap.with_epoch(epoch));
}

pub fn unguarded_calls_are_fine(shards: &Mutex<Shards>) -> usize {
    let shard = shards.lock().unwrap();
    shard.describe()
}
