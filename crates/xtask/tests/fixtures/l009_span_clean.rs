//! L009 clean twin: every guard is named and reaches end of scope, and the
//! stopwatch's measurement is read.

pub struct Obs;

pub fn run(obs: &Obs) -> u128 {
    let _span = obs.span("parse");
    let sw = obs.stopwatch("eval");
    let n = compute();
    sw.elapsed() + n
}

fn compute() -> u128 {
    7
}
