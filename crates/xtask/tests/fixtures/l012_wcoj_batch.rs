//! L012 fixture for the WCOJ columnar-batch boundary: leapfrog output is
//! columnar encoded-id batches, so the taint must survive the extra
//! batch-assembly hop and still fire when the batch reaches the
//! base-space `QueryAnswer` without a decode — and stay silent when the
//! rows pass the `decode_*` boundary first.

pub struct QueryAnswer {
    rows: Vec<u64>,
}

struct Encoder;

impl Encoder {
    fn encode_cq(&self, q: u64) -> u64 {
        q + 1
    }
    fn decode(&self, id: u64) -> u64 {
        id - 1
    }
}

/// The wcoj operator's output shape: columns of encoded ids.
fn leapfrog(plan: u64) -> Vec<u64> {
    vec![plan]
}

fn batch_to_rows(cols: Vec<u64>) -> Vec<u64> {
    cols
}

fn decode_batch(enc: &Encoder, cols: Vec<u64>) -> Vec<u64> {
    cols.into_iter().map(|id| enc.decode(id)).collect()
}

struct Engine {
    enc: Encoder,
}

impl Engine {
    /// FIRES: encode → leapfrog batch → row assembly → sink, no decode.
    fn run_wcoj(&self, q: u64) -> QueryAnswer {
        let plan = self.enc.encode_cq(q);
        let batch = leapfrog(plan);
        let rows = batch_to_rows(batch);
        QueryAnswer { rows }
    }

    /// Clean: the batch passes the `decode_*` boundary before the sink.
    fn run_wcoj_decoded(&self, q: u64) -> QueryAnswer {
        let plan = self.enc.encode_cq(q);
        let batch = leapfrog(plan);
        let rows = decode_batch(&self.enc, batch_to_rows(batch));
        QueryAnswer { rows }
    }
}
