//! L012 clean twin: every encoded-space value passes a decode boundary
//! (sanitizer call) before reaching the base-space sink.

pub struct QueryAnswer {
    rows: Vec<u64>,
}

struct Encoder;

impl Encoder {
    fn encode_cq(&self, q: u64) -> u64 {
        q + 1
    }
    fn decode(&self, id: u64) -> u64 {
        id - 1
    }
}

struct Engine {
    enc: Encoder,
}

fn eval(plan: u64) -> Vec<u64> {
    vec![plan]
}

fn decode_rows(enc: &Encoder, rows: Vec<u64>) -> Vec<u64> {
    rows
}

impl Engine {
    /// The real `run_query` shape: the sanitizing rebind cleanses the
    /// relation before it reaches the answer.
    fn run_query(&self, q: u64) -> QueryAnswer {
        let plan = self.enc.encode_cq(q);
        let relation = eval(plan);
        let relation = relation.map_values(&mut |id| self.enc.decode(id));
        QueryAnswer { rows: relation }
    }

    fn ref_plan(&self) -> u64 {
        self.enc.encode_cq(1)
    }

    /// Carrier output decoded (by a `decode_*` helper) before the sink.
    fn run_cached(&self) -> QueryAnswer {
        let plan = self.ref_plan();
        let rows = eval(plan);
        let rows = decode_rows(&self.enc, rows);
        QueryAnswer { rows }
    }

    /// Decode inline in the sink expression is also a boundary.
    fn one_row(&self) -> QueryAnswer {
        let id = self.enc.encode_cq(9);
        QueryAnswer { rows: vec![self.enc.decode(id)] }
    }

    /// Untainted data may flow to the sink freely.
    fn empty(&self) -> QueryAnswer {
        let rows = Vec::new();
        QueryAnswer { rows }
    }
}
