//! Edge-case fixture: deeply nested generics in fn signatures. The `>`
//! tokens must not be confused with comparison operators, and `->` inside
//! a boxed closure type must not terminate return-type scanning early.

use std::collections::BTreeMap;

pub struct Holder<T> {
    inner: Vec<T>,
}

impl<T: Clone + Ord> Holder<T> {
    pub fn group(&self, keys: BTreeMap<String, Vec<(T, u32)>>) -> Option<Vec<Vec<T>>> {
        let _ = keys;
        Some(vec![self.inner.clone()])
    }
}

pub fn transform(
    input: BTreeMap<String, Vec<Option<Box<[u8]>>>>,
    f: Box<dyn Fn(Vec<u32>) -> Result<Vec<u32>, String>>,
) -> Result<BTreeMap<String, u32>, String> {
    let _ = (input, f);
    Ok(BTreeMap::new())
}

pub fn compare(a: u32, b: u32) -> bool {
    // Genuine comparisons next to generic-looking idents.
    a < b && b > a
}
