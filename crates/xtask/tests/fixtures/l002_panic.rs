//! Fixture: three L002 sites (panic-family macros) in library code.

pub fn check(x: u32) {
    if x == 0 {
        panic!("zero is not allowed");
    }
}

pub fn not_written_yet() {
    todo!()
}

pub fn impossible(x: bool) {
    if !x {
        unreachable!();
    }
}

pub fn fine() -> u32 {
    // Mentioning panic in a comment or string must not count.
    let _doc = "this function never calls panic!";
    7
}
