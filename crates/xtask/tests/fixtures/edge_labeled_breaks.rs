//! Edge-case fixture: labeled loops and breaks. Lifetimes-as-labels must
//! lex as `Lifetime` tokens, and `break 'outer value` must not be read as
//! the start of a char literal.

pub fn search(grid: &[Vec<u32>], needle: u32) -> Option<(usize, usize)> {
    let mut hit = None;
    'outer: for (i, row) in grid.iter().enumerate() {
        for (j, &cell) in row.iter().enumerate() {
            if cell == needle {
                hit = Some((i, j));
                break 'outer;
            }
            if cell > needle {
                continue 'outer;
            }
        }
    }
    hit
}

pub fn drain(mut budget: i64) -> i64 {
    let result = 'outer: loop {
        let mut step = 0;
        'inner: loop {
            step += 1;
            if step > 3 {
                break 'inner;
            }
            budget -= step;
            if budget < 0 {
                break 'outer budget;
            }
        }
        if budget == 0 {
            break 'outer 0;
        }
    };
    result
}
