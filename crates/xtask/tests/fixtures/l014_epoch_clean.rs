//! L014 clean twin: serving paths use the epoch-pinned `_at` variants,
//! and unpinned calls outside any serving path are fine.

struct PlanCache;

impl PlanCache {
    fn lookup(&self, k: u64) -> Option<u64> {
        None
    }
    fn lookup_at(&self, k: u64, se: u64, de: u64) -> Option<u64> {
        None
    }
    fn insert(&self, k: u64, v: u64) {}
    fn insert_at(&self, k: u64, v: u64, se: u64, de: u64) {}
}

struct Inner {
    cache: PlanCache,
}

impl Inner {
    /// Epoch-pinned: the serving path is disciplined.
    fn plan(&self, k: u64, se: u64, de: u64) -> Option<u64> {
        self.cache.lookup_at(k, se, de)
    }

    fn remember(&self, k: u64, v: u64, se: u64, de: u64) {
        self.cache.insert_at(k, v, se, de)
    }
}

struct Snapshot {
    inner: Inner,
}

impl Snapshot {
    fn run(&self, k: u64) -> Option<u64> {
        self.inner.plan(k, 0, 0)
    }

    fn store_result(&self, k: u64, v: u64) {
        self.inner.remember(k, v, 0, 0)
    }
}

struct OfflineTool {
    cache: PlanCache,
}

impl OfflineTool {
    /// Unpinned lookup in a batch tool no serving type can reach: fine.
    fn warm(&self, k: u64) -> Option<u64> {
        self.cache.lookup(k)
    }
}
