//! Edge-case fixture: raw strings whose contents would desynchronise a
//! naive brace/quote tracker — `{`, `}`, `"`, `}`-heavy JSON, and hash
//! fences. The item parser must still see exactly two fns with bodies.

pub fn render() -> String {
    let tpl = r#"{"key": "value", "nested": {"a": [1, 2, 3]}}"#;
    let fence = r##"a raw string with "quotes" and a # inside"##;
    let braces = r"unbalanced } } { in a raw string";
    format!("{tpl}{fence}{braces}")
}

pub fn after_raw(x: u32) -> u32 {
    // If the raw strings above leaked, this body would be mis-spanned.
    x + 1
}
