//! L014 fixture (fires): unpinned `PlanCache::lookup`/`insert` reachable
//! from a serving-path type through a helper — the epoch-pinned `_at`
//! variants must be used on these paths.

struct PlanCache;

impl PlanCache {
    fn lookup(&self, k: u64) -> Option<u64> {
        None
    }
    fn lookup_at(&self, k: u64, se: u64, de: u64) -> Option<u64> {
        None
    }
    fn insert(&self, k: u64, v: u64) {}
    fn insert_at(&self, k: u64, v: u64, se: u64, de: u64) {}
}

struct Inner {
    cache: PlanCache,
}

impl Inner {
    /// Finding 1: unpinned lookup, two hops from `Snapshot::run`.
    fn plan(&self, k: u64) -> Option<u64> {
        self.cache.lookup(k)
    }

    /// Finding 2: unpinned insert on the same serving path.
    fn remember(&self, k: u64, v: u64) {
        self.cache.insert(k, v)
    }
}

struct Snapshot {
    inner: Inner,
}

impl Snapshot {
    fn run(&self, k: u64) -> Option<u64> {
        self.inner.plan(k)
    }

    fn store_result(&self, k: u64, v: u64) {
        self.inner.remember(k, v)
    }
}
