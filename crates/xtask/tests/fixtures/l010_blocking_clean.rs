//! L010 clean twin: workers only compute, and the span body is pure.

pub struct Obs;

pub fn workers(chunks: &[u32]) -> u32 {
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || chunk.wrapping_mul(3));
        }
    });
    0
}

pub fn spanned(obs: &Obs, xs: &[u32]) -> u32 {
    let _span = obs.span("answer");
    xs.iter().sum()
}
