//! L001 regression fixture: a domain method named `expect` (the obs JSON
//! parser idiom) must not be flagged, while `Option::expect` still is.

pub struct Cursor {
    pos: usize,
}

impl Cursor {
    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.pos += usize::from(b);
        Ok(())
    }

    pub fn parse(&mut self) -> Result<(), String> {
        self.expect(1)?;
        self.expect(2)?;
        Ok(())
    }
}

pub fn still_flagged(v: Option<u32>) -> u32 {
    v.expect("boom")
}
