//! L007 clean twin: both methods honour the same a-before-b order, and a
//! third drops its first guard before taking the second.

use std::sync::Mutex;

pub struct Shards {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Shards {
    pub fn sum_ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        0
    }

    pub fn also_ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        1
    }

    pub fn disjoint(&self) -> u32 {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        2
    }
}
