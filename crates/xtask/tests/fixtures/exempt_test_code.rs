//! Fixture: violations of every lint inside `#[cfg(test)] mod tests` —
//! all exempt, the file must lint clean.

pub fn add(a: u32, b: u32) -> u32 {
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_in_tests() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        if add(1, 1) != 2 {
            panic!("math broke");
        }
        println!("done");
    }

    #[test]
    fn clones_in_loops_are_fine_in_tests() {
        let graph = vec![1u32];
        for _ in 0..3 {
            let _copy = graph.clone();
        }
    }
}
