//! L010 fire fixture: a worker closure sleeps and does file I/O, and a
//! sleep happens while a span guard is live.

pub struct Obs;

pub fn workers(chunks: &[u32]) -> u32 {
    std::thread::scope(|scope| {
        for _chunk in chunks {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                let _bytes = std::fs::read("spill.bin");
            });
        }
    });
    0
}

pub fn spanned(obs: &Obs) {
    let _span = obs.span("answer");
    std::thread::sleep(std::time::Duration::from_millis(1));
}
