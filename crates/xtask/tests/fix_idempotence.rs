//! `--fix` idempotence over the whole fixture corpus: lint + fix, re-lint
//! the fixed text, fix again — the second pass must be a no-op (`None`) or
//! return byte-identical text. Running `--fix` twice in a row must never
//! ping-pong a file.

use std::path::PathBuf;
use xtask::{apply_fixes, lint_sources, Config, FileContext, Violation};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_one(src: &str) -> Vec<Violation> {
    let sources = vec![(
        FileContext {
            path: "crates/core/src/fixture.rs".to_string(),
            crate_name: "core".to_string(),
        },
        src.to_string(),
    )];
    let (violations, _graph) = lint_sources(sources, &Config::default());
    violations
}

#[test]
fn fixes_are_idempotent_across_the_fixture_corpus() {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
        .collect();
    entries.sort();
    assert!(entries.len() >= 20, "corpus shrank: {}", entries.len());

    let mut fixed_any = 0usize;
    for path in entries {
        let src = std::fs::read_to_string(&path).unwrap();
        let first = lint_sources_fix(&src);
        let Some((fixed, n)) = first else {
            continue; // nothing mechanical to fix in this fixture
        };
        fixed_any += 1;
        assert!(n > 0, "{path:?}: Some(..) with zero fixes");
        // Second pass over the fixed text: no-op or byte-identical.
        match lint_sources_fix(&fixed) {
            None => {}
            Some((again, m)) => {
                assert_eq!(
                    again, fixed,
                    "{path:?}: second --fix pass changed the text again ({m} fixes)"
                );
            }
        }
    }
    assert!(
        fixed_any >= 1,
        "expected the L009 fixture to exercise the fixer, got {fixed_any}"
    );
}

#[test]
fn forbid_insertion_is_idempotent() {
    // L011's mechanical fix (inserting `#![forbid(unsafe_code)]`) only
    // fires on a crate root, which the on-disk fixtures are not — drive it
    // through an in-memory lib.rs instead.
    let src = "//! A library.\n\npub fn id(x: u32) -> u32 {\n    x\n}\n";
    let lint_lib = |text: &str| {
        let sources = vec![(
            FileContext {
                path: "crates/core/src/lib.rs".to_string(),
                crate_name: "core".to_string(),
            },
            text.to_string(),
        )];
        lint_sources(sources, &Config::default()).0
    };
    let (fixed, n) = apply_fixes(src, &lint_lib(src)).expect("missing forbid must be fixable");
    assert_eq!(n, 1);
    assert!(fixed.contains("#![forbid(unsafe_code)]"));
    match apply_fixes(&fixed, &lint_lib(&fixed)) {
        None => {}
        Some((again, _)) => assert_eq!(again, fixed, "second pass must not duplicate the attr"),
    }
}

/// One lint+fix round, like the binary's `--fix` path.
fn lint_sources_fix(src: &str) -> Option<(String, usize)> {
    let violations = lint_one(src);
    apply_fixes(src, &violations)
}

#[test]
fn fixed_sources_do_not_reintroduce_the_fixed_lints() {
    // The span fixture is the canonical L009 fire; after fixing, no
    // *mechanically fixable* finding may remain (stranded stopwatches need
    // a human and rightly survive).
    let src = std::fs::read_to_string(fixtures_dir().join("l009_span.rs")).expect("l009 fixture");
    let violations = lint_one(&src);
    let (fixed, _) = apply_fixes(&src, &violations).expect("the fixture must need fixes");
    assert!(
        apply_fixes(&fixed, &lint_one(&fixed)).is_none(),
        "fix left a mechanically fixable finding behind"
    );
}
