//! Edge-case coverage for the lexer and item parser: raw strings, deeply
//! nested generics in signatures, labeled breaks, and `let … else`. Each
//! fixture exists because the construct once desynchronised a naive
//! tracker; the assertions pin the parsed *shape*, not just "no panic".

use std::path::PathBuf;
use xtask::lexer::{lex, TokKind};
use xtask::{parse_items, Item, ItemKind};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every fn item in the tree, depth-first.
fn fns(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    for i in items {
        if matches!(i.kind, ItemKind::Fn(_)) {
            out.push(i);
        }
        out.extend(fns(&i.children));
    }
    out
}

fn body_of(item: &Item) -> (usize, usize) {
    match &item.kind {
        ItemKind::Fn(sig) => sig.body.expect("fn should have a body"),
        k => panic!("not a fn: {k:?}"),
    }
}

// ---- raw strings ------------------------------------------------------------

#[test]
fn raw_strings_lex_as_single_tokens() {
    let toks = lex(&fixture("edge_raw_strings.rs"));
    // Each raw literal collapses to a single Str token (the lexer keeps a
    // `"…"` marker, not the contents): three raw strings plus the
    // `format!` template.
    let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
    assert_eq!(strs, 4, "each raw literal must be exactly one Str token");
    // No quote inside a raw string opened a phantom literal that would
    // swallow real code: `format` still lexes as an identifier after them.
    assert!(toks.iter().any(|t| t.is_ident("format")));
    // No brace inside a raw string leaked as a Punct token: the only
    // Punct braces are the two fn bodies.
    let open = toks.iter().filter(|t| t.is_punct('{')).count();
    let close = toks.iter().filter(|t| t.is_punct('}')).count();
    assert_eq!(open, 2, "raw-string braces leaked into the token stream");
    assert_eq!(open, close);
}

#[test]
fn items_survive_raw_string_payloads() {
    let toks = lex(&fixture("edge_raw_strings.rs"));
    let items = parse_items(&toks);
    let fs = fns(&items);
    let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["render", "after_raw"]);
    // Body spans are disjoint and properly bracketed.
    let (o1, c1) = body_of(fs[0]);
    let (o2, c2) = body_of(fs[1]);
    assert!(toks[o1].is_punct('{') && toks[c1].is_punct('}'));
    assert!(c1 < o2, "render's body must close before after_raw opens");
    assert!(toks[o2].is_punct('{') && toks[c2].is_punct('}'));
}

// ---- nested generics --------------------------------------------------------

#[test]
fn nested_generics_leave_signatures_intact() {
    let toks = lex(&fixture("edge_nested_generics.rs"));
    let items = parse_items(&toks);
    let fs = fns(&items);
    let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["group", "transform", "compare"]);
    for f in &fs {
        assert!(f.is_pub, "{} should be pub", f.name);
    }
    // `transform`'s return-type span covers the Result, not a fragment cut
    // at the closure's inner `->`.
    let ItemKind::Fn(sig) = &fs[1].kind else {
        unreachable!()
    };
    let ret: Vec<&str> = toks[sig.ret.0..=sig.ret.1]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(ret.first().copied(), Some("Result"));
    assert!(ret.contains(&"BTreeMap"), "ret tokens: {ret:?}");
    // Param list spans the whole nested type, `(` to `)`.
    assert!(toks[sig.params.0].is_punct('('));
    assert!(toks[sig.params.1].is_punct(')'));
    let params: Vec<&str> = toks[sig.params.0..=sig.params.1]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    assert!(params.contains(&"dyn"), "params: {params:?}");
}

// ---- labeled breaks ---------------------------------------------------------

#[test]
fn labels_lex_as_lifetimes_not_chars() {
    let toks = lex(&fixture("edge_labeled_breaks.rs"));
    let labels: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    // The lexer stores lifetime/label text without the leading quote.
    assert!(labels.contains(&"outer"), "labels: {labels:?}");
    assert!(labels.contains(&"inner"), "labels: {labels:?}");
    assert!(
        !toks.iter().any(|t| t.kind == TokKind::Char),
        "a label was mis-lexed as a char literal"
    );
}

#[test]
fn labeled_break_bodies_parse_as_two_fns() {
    let toks = lex(&fixture("edge_labeled_breaks.rs"));
    let items = parse_items(&toks);
    let fs = fns(&items);
    let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["search", "drain"]);
    // `break 'outer budget` sits *inside* drain's body span (rposition:
    // the first `budget` is the parameter, before the body opens).
    let (open, close) = body_of(fs[1]);
    let break_kw = toks
        .iter()
        .rposition(|t| t.is_ident("break"))
        .expect("a break keyword");
    assert!(toks[break_kw + 1].kind == TokKind::Lifetime);
    assert!(open < break_kw && break_kw < close);
}

// ---- let-else ---------------------------------------------------------------

#[test]
fn let_else_does_not_truncate_bodies() {
    let toks = lex(&fixture("edge_let_else.rs"));
    let items = parse_items(&toks);
    let fs = fns(&items);
    let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["first_even", "parse_pair", "after_let_else"]);
    // parse_pair holds three let-else statements; its body must span all
    // of them and close exactly before after_let_else's attributes/doc.
    let (open, close) = body_of(fs[1]);
    let elses = toks[open..=close]
        .iter()
        .filter(|t| t.is_ident("else"))
        .count();
    assert_eq!(elses, 3, "all three let-else blocks inside the body span");
    assert!(close < fs[2].start);
}

#[test]
fn let_else_divergence_shows_up_in_the_cfg() {
    // The CFG lowers each let-else's else block as a diverging branch:
    // first_even's body must contain an edge into the exit besides the
    // tail-expression fallthrough.
    let toks = lex(&fixture("edge_let_else.rs"));
    let items = parse_items(&toks);
    let fs = fns(&items);
    let (open, close) = body_of(fs[0]);
    let cfg = xtask::build_cfg(&toks, open, close);
    let exit_preds = cfg
        .blocks
        .iter()
        .filter(|b| b.succs.contains(&cfg.exit))
        .count();
    assert!(
        exit_preds >= 2,
        "let-else divergence and the tail expression both reach exit: {exit_preds}"
    );
}
