//! **Fixpoint dataflow** over the CFGs of [`crate::cfg`].
//!
//! A small trait-based engine (forward or backward, join to fixpoint)
//! with three instances:
//!
//! * **Reaching definitions** — classic gen/kill over `let`-bindings,
//!   assignments and `for`-patterns; powers the def-use witness chains
//!   the flow lints attach to findings.
//! * **Liveness** — the textbook backward analysis; exercised in tests to
//!   keep the backward direction honest.
//! * **Taint** — may-analysis tracking values that originate from
//!   configured *source* calls (or from *carrier* functions whose return
//!   path is tainted, resolved via the item graph) through `let`-bindings,
//!   field accesses and assignments, until a *sanitizer* call cleanses
//!   them. Joins pick the lexicographically smallest witness so results
//!   are deterministic regardless of iteration order.
//!
//! Everything here works on token ranges — there is no AST. That keeps
//! the transfer functions conservative: a statement the classifier does
//! not model simply neither gens nor kills.

use crate::cfg::{build_cfg, Cfg};
use crate::graph::{Call, FnNode, ItemGraph};
use crate::items::receiver_chain;
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Facts flow entry → exit along successor edges.
    Forward,
    /// Facts flow exit → entry against successor edges.
    Backward,
}

/// A dataflow problem: a lattice of facts with a per-block transfer.
pub trait Analysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;
    /// Which way facts flow.
    fn dir(&self) -> Dir;
    /// Fact at the boundary (entry for forward, exit for backward).
    fn boundary(&self) -> Self::Fact;
    /// Initial fact for every other block (the lattice bottom).
    fn bottom(&self) -> Self::Fact;
    /// Apply the block's statements to an incoming fact.
    fn transfer(&self, block: usize, fact: &Self::Fact) -> Self::Fact;
    /// Merge `from` into `into`; return true when `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;
}

/// Iterate to fixpoint. Returns the fact at each block's **input** (its
/// entry for a forward analysis, its exit for a backward one).
pub fn solve<A: Analysis>(cfg: &Cfg, a: &A) -> Vec<A::Fact> {
    let n = cfg.blocks.len();
    let mut input: Vec<A::Fact> = (0..n).map(|_| a.bottom()).collect();
    match a.dir() {
        Dir::Forward => input[cfg.entry] = a.boundary(),
        Dir::Backward => input[cfg.exit] = a.boundary(),
    }
    // Round-robin to fixpoint; the lattices here are finite-height, so a
    // generous pass cap is only a guard against pathological inputs.
    let cap = 4 * n + 16;
    for _ in 0..cap {
        let mut changed = false;
        match a.dir() {
            Dir::Forward => {
                for b in 0..n {
                    let out = a.transfer(b, &input[b]);
                    for &s in &cfg.blocks[b].succs {
                        if a.join(&mut input[s], &out) {
                            changed = true;
                        }
                    }
                }
            }
            Dir::Backward => {
                for b in (0..n).rev() {
                    // A block's input (exit fact) is the join of its
                    // successors' transferred facts.
                    for &s in &cfg.blocks[b].succs {
                        let through = a.transfer(s, &input[s]);
                        if a.join(&mut input[b], &through) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    input
}

// ---------------------------------------------------------------------------
// Statement classification shared by the instances.
// ---------------------------------------------------------------------------

const STMT_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "let", "else", "use",
    "mod", "const", "static", "unsafe",
];

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "else"
            | "as"
            | "in"
            | "move"
            | "ref"
            | "mut"
            | "box"
            | "dyn"
            | "fn"
            | "impl"
            | "where"
            | "self"
            | "Self"
            | "true"
            | "false"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "await"
            | "async"
            | "unsafe"
    )
}

fn is_primitive(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "bool"
            | "str"
            | "char"
    )
}

/// Two adjacent tokens forming one multi-char operator (`==`, `=>`, `+=`).
fn glued(a: &Tok, b: &Tok) -> bool {
    a.line == b.line && a.col + 1 == b.col
}

/// The top-level `=` of a `let`/assignment in `[from, to)`: a `=` at
/// delimiter depth 0 that is not half of `==`/`=>`/`<=`/`>=`/`!=`/`+=`-
/// style compounds (multi-char operators are glued; a real assignment's
/// `=` never glues to an operator punct on its left or `=`/`>` on its
/// right in rustfmt'ed code, and the depth guard covers the rest).
pub(crate) fn plain_eq(toks: &[Tok], from: usize, to: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let to = to.min(toks.len());
    for i in from..to {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct('=') if paren == 0 && bracket == 0 && brace == 0 => {
                let left_op = i > from
                    && matches!(
                        toks[i - 1].kind,
                        TokKind::Punct(
                            '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                        )
                    )
                    && glued(&toks[i - 1], t);
                let right_op = toks
                    .get(i + 1)
                    .map(|n| matches!(n.kind, TokKind::Punct('=' | '>')) && glued(t, n))
                    .unwrap_or(false);
                if !left_op && !right_op {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Variable names bound by the pattern tokens `[from, to)` (a `let` or
/// `for` pattern), with the token index of each name. Collects lowercase
/// non-keyword identifiers that are not path segments; uppercase idents
/// (types, variants) and primitives are skipped, and for `let` the caller
/// cuts the range at any top-level `:` type ascription.
pub fn pattern_bindings(toks: &[Tok], from: usize, to: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let to = to.min(toks.len());
    for i in from..to {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if name == "_" || is_keyword(name) || is_primitive(name) {
            continue;
        }
        if name
            .chars()
            .next()
            .map(|c| c.is_uppercase())
            .unwrap_or(true)
        {
            continue;
        }
        // Path segment (`mod_name::Variant`)?
        if toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
        {
            continue;
        }
        // Struct-pattern field name that rebinds (`S { field: var }`)
        // still collects both names — over-approximating bindings is
        // harmless for a may-analysis.
        out.push((t.text.clone(), i));
    }
    out
}

/// What a statement does to the variable environment.
pub enum StmtShape {
    /// `let PAT [: TY] = RHS` — bindings plus the RHS range; `rhs` is
    /// `None` for a declaration without initializer.
    Let {
        /// `(name, name-token)` pairs bound by the pattern.
        binds: Vec<(String, usize)>,
        /// RHS token range `[start, end)`.
        rhs: Option<(usize, usize)>,
    },
    /// `for PAT in ITER` header.
    For {
        /// Bindings introduced by the loop pattern.
        binds: Vec<(String, usize)>,
        /// The iterated expression's token range.
        rhs: (usize, usize),
    },
    /// `lvalue = RHS` or `lvalue op= RHS`; `root` is the base variable.
    Assign {
        /// Base variable of the lvalue path (`x` in `x.field = …`).
        root: (String, usize),
        /// RHS token range.
        rhs: (usize, usize),
        /// Compound (`+=` …): the old value still flows, so no kill.
        compound: bool,
    },
    /// Anything else: expression statement, `match`/`if` header, `return`.
    Other,
}

/// Classify the statement `[from, to)`.
pub fn stmt_shape(toks: &[Tok], from: usize, to: usize) -> StmtShape {
    let to = to.min(toks.len());
    if from >= to {
        return StmtShape::Other;
    }
    let t0 = &toks[from];
    if t0.is_ident("let") {
        // Pattern runs to the top-level `:` (type ascription) or `=`.
        let eq = plain_eq(toks, from, to);
        let pat_end = {
            let stop = eq.unwrap_or(to);
            let mut cut = stop;
            let mut depth = 0i32;
            for i in from + 1..stop {
                match toks[i].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(':') if depth == 0 => {
                        let double = toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                            || (i > from && toks[i - 1].is_punct(':'));
                        if !double {
                            cut = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            cut
        };
        let binds = pattern_bindings(toks, from + 1, pat_end);
        // A `let … else` statement's RHS stops before the `else` (the
        // CFG builder already splits the else block off; when it did not,
        // including it is still conservative).
        return StmtShape::Let {
            binds,
            rhs: eq.map(|e| (e + 1, to)),
        };
    }
    if t0.is_ident("for") {
        let in_pos = (from + 1..to).find(|&i| toks[i].is_ident("in"));
        if let Some(ip) = in_pos {
            return StmtShape::For {
                binds: pattern_bindings(toks, from + 1, ip),
                rhs: (ip + 1, to),
            };
        }
        return StmtShape::Other;
    }
    if STMT_KEYWORDS.contains(&t0.text.as_str()) && t0.kind == TokKind::Ident {
        return StmtShape::Other;
    }
    // Assignment? `IDENT (.IDENT | [..])* [op]= RHS`
    if t0.kind == TokKind::Ident && !is_keyword(&t0.text) || t0.is_ident("self") {
        let mut j = from + 1;
        loop {
            if j >= to {
                break;
            }
            let t = &toks[j];
            if t.is_punct('.') {
                j += 1;
                if j < to && toks[j].kind == TokKind::Ident {
                    j += 1;
                    continue;
                }
                break;
            }
            if t.is_punct('[') {
                match crate::items::matching(toks, j, '[', ']') {
                    Some(c) if c < to => {
                        j = c + 1;
                        continue;
                    }
                    _ => break,
                }
            }
            if t.is_punct('=') {
                let compound_left = j > from
                    && matches!(
                        toks[j - 1].kind,
                        TokKind::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')
                    )
                    && glued(&toks[j - 1], t);
                let is_cmp = toks
                    .get(j + 1)
                    .map(|n| matches!(n.kind, TokKind::Punct('=' | '>')) && glued(t, n))
                    .unwrap_or(false)
                    || (j > from
                        && matches!(toks[j - 1].kind, TokKind::Punct('=' | '!' | '<' | '>'))
                        && glued(&toks[j - 1], t));
                if is_cmp {
                    break;
                }
                return StmtShape::Assign {
                    root: (t0.text.clone(), from),
                    rhs: (j + 1, to),
                    compound: compound_left,
                };
            }
            if matches!(
                t.kind,
                TokKind::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')
            ) && toks
                .get(j + 1)
                .map(|n| n.is_punct('=') && glued(t, n))
                .unwrap_or(false)
            {
                j += 1;
                continue;
            }
            break;
        }
    }
    StmtShape::Other
}

// ---------------------------------------------------------------------------
// Reaching definitions.
// ---------------------------------------------------------------------------

/// Reaching definitions: which binding sites may define each variable.
pub struct ReachingDefs<'a> {
    /// The graph being analysed.
    pub cfg: &'a Cfg,
    /// The file's tokens.
    pub toks: &'a [Tok],
}

impl<'a> Analysis for ReachingDefs<'a> {
    type Fact = BTreeMap<String, BTreeSet<usize>>;

    fn dir(&self) -> Dir {
        Dir::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn bottom(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn transfer(&self, block: usize, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        for &(s, e) in &self.cfg.blocks[block].stmts {
            match stmt_shape(self.toks, s, e) {
                StmtShape::Let { binds, .. } | StmtShape::For { binds, .. } => {
                    for (name, site) in binds {
                        out.insert(name, BTreeSet::from([site]));
                    }
                }
                StmtShape::Assign {
                    root: (name, site),
                    compound,
                    ..
                } => {
                    if compound {
                        out.entry(name).or_default().insert(site);
                    } else {
                        out.insert(name, BTreeSet::from([site]));
                    }
                }
                StmtShape::Other => {}
            }
        }
        out
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let mut changed = false;
        for (k, sites) in from {
            let slot = into.entry(k.clone()).or_default();
            for &s in sites {
                changed |= slot.insert(s);
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Liveness (backward).
// ---------------------------------------------------------------------------

/// Live variables: names that may be read before their next definition.
pub struct Liveness<'a> {
    /// The graph being analysed.
    pub cfg: &'a Cfg,
    /// The file's tokens.
    pub toks: &'a [Tok],
}

/// Identifier uses in `[from, to)`: lowercase non-keyword idents that are
/// not field/method names (preceded by `.`), call names (followed by `(`)
/// or macro names (followed by `!`).
fn ident_uses(toks: &[Tok], from: usize, to: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let to = to.min(toks.len());
    for i in from..to {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || is_keyword(&t.text)
            || is_primitive(&t.text)
            || t.text
                .chars()
                .next()
                .map(|c| c.is_uppercase() || c == '_')
                .unwrap_or(true)
        {
            continue;
        }
        if i > from && toks[i - 1].is_punct('.') {
            continue;
        }
        if let Some(n) = toks.get(i + 1) {
            if n.is_punct('(') || n.is_punct('!') {
                continue;
            }
            if n.is_punct(':') && toks.get(i + 2).map(|m| m.is_punct(':')).unwrap_or(false) {
                continue;
            }
        }
        out.insert(t.text.clone());
    }
    out
}

impl<'a> Analysis for Liveness<'a> {
    type Fact = BTreeSet<String>;

    fn dir(&self) -> Dir {
        Dir::Backward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn bottom(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn transfer(&self, block: usize, fact: &Self::Fact) -> Self::Fact {
        // Backward: walk the block's statements in reverse from its exit
        // fact to produce the fact at its entry.
        let mut live = fact.clone();
        for &(s, e) in self.cfg.blocks[block].stmts.iter().rev() {
            match stmt_shape(self.toks, s, e) {
                StmtShape::Let { binds, rhs } => {
                    for (name, _) in &binds {
                        live.remove(name);
                    }
                    if let Some((rs, re)) = rhs {
                        live.extend(ident_uses(self.toks, rs, re));
                    }
                }
                StmtShape::For { binds, rhs } => {
                    for (name, _) in &binds {
                        live.remove(name);
                    }
                    live.extend(ident_uses(self.toks, rhs.0, rhs.1));
                }
                StmtShape::Assign {
                    root: (name, _),
                    rhs,
                    compound,
                } => {
                    if !compound {
                        live.remove(&name);
                    }
                    live.extend(ident_uses(self.toks, rhs.0, rhs.1));
                }
                StmtShape::Other => {
                    live.extend(ident_uses(self.toks, s, e));
                }
            }
        }
        live
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(from.iter().cloned());
        into.len() != before
    }
}

// ---------------------------------------------------------------------------
// Taint.
// ---------------------------------------------------------------------------

/// A taint mark: where the value originated and the def-use chain it
/// traveled (token indexes of the bindings, in order). `Ord` makes the
/// join deterministic: the lexicographically smallest witness wins.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Taint {
    /// Token index of the originating source (or carrier) call.
    pub src: usize,
    /// Binding-site token indexes the value flowed through, oldest first.
    pub steps: Vec<usize>,
}

/// Witness chains longer than this stop growing (the finding still fires;
/// only the related-locations list is truncated).
const MAX_STEPS: usize = 8;

/// Does `name` match the config pattern `pat` (`encode*` prefix, `*_raw`
/// suffix, or exact)?
pub fn name_matches(pat: &str, name: &str) -> bool {
    if let Some(prefix) = pat.strip_suffix('*') {
        name.starts_with(prefix)
    } else if let Some(suffix) = pat.strip_prefix('*') {
        name.ends_with(suffix)
    } else {
        pat == name
    }
}

/// Reconstruct the [`Call`] at the name token `i` (which must be followed
/// by `(`), mirroring what [`crate::graph`]'s body scan records.
pub fn call_at(toks: &[Tok], i: usize) -> Call {
    let method = i > 0 && toks[i - 1].is_punct('.');
    let recv_self = method
        && receiver_chain(toks, i - 1)
            .first()
            .map(|s| s == "self")
            .unwrap_or(false);
    let qualifier = if !method
        && i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == TokKind::Ident
    {
        Some(toks[i - 3].text.clone())
    } else {
        None
    };
    Call {
        name: toks[i].text.clone(),
        tok: i,
        method,
        recv_self,
        qualifier,
    }
}

/// The taint problem for one function body.
pub struct TaintAnalysis<'a> {
    /// The function's CFG.
    pub cfg: &'a Cfg,
    /// The file's tokens.
    pub toks: &'a [Tok],
    /// The whole-workspace item graph (for carrier resolution).
    pub graph: &'a ItemGraph,
    /// The function being analysed.
    pub caller: &'a FnNode,
    /// Source-call name patterns (`encode*`).
    pub sources: &'a [String],
    /// Sanitizer-call name patterns (`decode`, `map_values`).
    pub sanitizers: &'a [String],
    /// Fn indexes whose return value is tainted.
    pub carriers: &'a BTreeSet<usize>,
}

/// The environment: variable → smallest taint witness.
pub type TaintFact = BTreeMap<String, Taint>;

impl<'a> TaintAnalysis<'a> {
    /// Taint of the expression `[from, to)` under `env`: `None` when a
    /// sanitizer call appears (the decode boundary cleanses the whole
    /// expression — conservative in the *clean* direction, which is what
    /// keeps the real decode-then-wrap pattern quiet), otherwise the
    /// smallest witness among source calls, carrier calls and tainted
    /// variable uses.
    pub fn expr_taint(&self, from: usize, to: usize, env: &TaintFact) -> Option<Taint> {
        let to = to.min(self.toks.len());
        let mut best: Option<Taint> = None;
        for i in from..to {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let callish = self
                .toks
                .get(i + 1)
                .map(|n| n.is_punct('('))
                .unwrap_or(false);
            if callish {
                if self.sanitizers.iter().any(|p| name_matches(p, &t.text)) {
                    return None;
                }
                if self.sources.iter().any(|p| name_matches(p, &t.text)) {
                    consider(
                        &mut best,
                        Taint {
                            src: i,
                            steps: Vec::new(),
                        },
                    );
                    continue;
                }
                if !self.carriers.is_empty() {
                    let call = call_at(self.toks, i);
                    if let Some(target) = self.graph.resolve_call(self.caller, &call) {
                        if self.carriers.contains(&target) {
                            consider(
                                &mut best,
                                Taint {
                                    src: i,
                                    steps: Vec::new(),
                                },
                            );
                        }
                    }
                }
                continue;
            }
            // Variable use: field/method names and path segments excluded.
            if i > from && self.toks[i - 1].is_punct('.') {
                continue;
            }
            if let Some(taint) = env.get(&t.text) {
                consider(&mut best, taint.clone());
            }
        }
        best
    }

    /// Apply one statement to the environment.
    pub fn stmt_transfer(&self, s: usize, e: usize, env: &mut TaintFact) {
        match stmt_shape(self.toks, s, e) {
            StmtShape::Let { binds, rhs } => {
                let taint = rhs.and_then(|(rs, re)| self.expr_taint(rs, re, env));
                self.bind(binds, taint, env);
            }
            StmtShape::For { binds, rhs } => {
                let taint = self.expr_taint(rhs.0, rhs.1, env);
                self.bind(binds, taint, env);
            }
            StmtShape::Assign {
                root: (name, site),
                rhs,
                compound,
            } => match self.expr_taint(rhs.0, rhs.1, env) {
                Some(mut t) => {
                    if t.steps.len() < MAX_STEPS {
                        t.steps.push(site);
                    }
                    match env.get(&name) {
                        Some(old) if compound && *old <= t => {}
                        _ => {
                            env.insert(name, t);
                        }
                    }
                }
                None => {
                    if !compound {
                        env.remove(&name);
                    }
                }
            },
            StmtShape::Other => {}
        }
    }

    fn bind(&self, binds: Vec<(String, usize)>, taint: Option<Taint>, env: &mut TaintFact) {
        for (name, site) in binds {
            match &taint {
                Some(t) => {
                    let mut t = t.clone();
                    if t.steps.len() < MAX_STEPS {
                        t.steps.push(site);
                    }
                    env.insert(name, t);
                }
                None => {
                    env.remove(&name);
                }
            }
        }
    }
}

fn consider(best: &mut Option<Taint>, cand: Taint) {
    match best {
        Some(b) if *b <= cand => {}
        _ => *best = Some(cand),
    }
}

impl<'a> Analysis for TaintAnalysis<'a> {
    type Fact = TaintFact;

    fn dir(&self) -> Dir {
        Dir::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn bottom(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn transfer(&self, block: usize, fact: &Self::Fact) -> Self::Fact {
        let mut env = fact.clone();
        for &(s, e) in &self.cfg.blocks[block].stmts {
            self.stmt_transfer(s, e, &mut env);
        }
        env
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let mut changed = false;
        for (k, t) in from {
            match into.get(k) {
                Some(old) if old <= t => {}
                _ => {
                    into.insert(k.clone(), t.clone());
                    changed = true;
                }
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Whole-graph plumbing: CFG cache and carrier fixpoint.
// ---------------------------------------------------------------------------

/// Build the CFG of every function body in the graph (`None` for bodyless
/// trait declarations). Index-aligned with [`ItemGraph::fns`].
pub fn build_cfgs(graph: &ItemGraph) -> Vec<Option<Cfg>> {
    graph
        .fns
        .iter()
        .map(|f| {
            f.sig
                .body
                .map(|(open, close)| build_cfg(&graph.files[f.file].toks, open, close))
        })
        .collect()
}

/// Does the function's return path carry taint under `env`s computed from
/// `sources`/`sanitizers`/`carriers`? Checks `return EXPR;` statements and
/// the tail expression of blocks that fall through to exit.
fn returns_taint(ta: &TaintAnalysis<'_>, facts: &[TaintFact]) -> bool {
    let cfg = ta.cfg;
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut env = facts[b].clone();
        let falls_to_exit = block.succs.contains(&cfg.exit);
        let n = block.stmts.len();
        for (k, &(s, e)) in block.stmts.iter().enumerate() {
            if ta.toks[s].is_ident("return") {
                if ta.expr_taint(s + 1, e, &env).is_some() {
                    return true;
                }
            } else if falls_to_exit && k + 1 == n {
                // Candidate tail expression: skip statement forms that
                // cannot be the fn's value.
                let head = &ta.toks[s].text;
                let is_stmt_form =
                    ta.toks[s].kind == TokKind::Ident && STMT_KEYWORDS.contains(&head.as_str());
                if !is_stmt_form
                    && !matches!(stmt_shape(ta.toks, s, e), StmtShape::Assign { .. })
                    && ta.expr_taint(s, e, &env).is_some()
                {
                    return true;
                }
            }
            ta.stmt_transfer(s, e, &mut env);
        }
    }
    false
}

/// Fixpoint over the item graph: the set of functions whose return value
/// is tainted (directly by a source call, or transitively by calling
/// another carrier). Test-only fns are skipped.
pub fn compute_carriers(
    graph: &ItemGraph,
    cfgs: &[Option<Cfg>],
    sources: &[String],
    sanitizers: &[String],
) -> BTreeSet<usize> {
    let mut carriers: BTreeSet<usize> = BTreeSet::new();
    // Each round can only add carriers; the chain length is bounded by
    // the call-graph depth, and a small cap keeps pathological inputs
    // cheap (missing a >6-deep carrier chain is a conservative miss).
    for _ in 0..6 {
        let mut grew = false;
        for (idx, f) in graph.fns.iter().enumerate() {
            if f.cfg_test || carriers.contains(&idx) {
                continue;
            }
            let Some(cfg) = cfgs[idx].as_ref() else {
                continue;
            };
            let ta = TaintAnalysis {
                cfg,
                toks: &graph.files[f.file].toks,
                graph,
                caller: f,
                sources,
                sanitizers,
                carriers: &carriers,
            };
            let facts = solve(cfg, &ta);
            if returns_taint(&ta, &facts) {
                carriers.insert(idx);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    carriers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::graph::ParsedFile;
    use crate::lints::FileContext;

    fn graph_of(src: &str) -> ItemGraph {
        let ctx = FileContext {
            path: "crates/core/src/x.rs".into(),
            crate_name: "core".into(),
        };
        ItemGraph::build(vec![ParsedFile::parse(ctx, src)], &Config::default())
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Taint environment at the end of fn `name`'s fall-through path.
    fn exit_env(graph: &ItemGraph, name: &str, sources: &[&str], sans: &[&str]) -> TaintFact {
        let idx = graph.fns.iter().position(|f| f.name == name).unwrap();
        let f = &graph.fns[idx];
        let cfgs = build_cfgs(graph);
        let cfg = cfgs[idx].as_ref().unwrap();
        let sources = strings(sources);
        let sans = strings(sans);
        let carriers = BTreeSet::new();
        let ta = TaintAnalysis {
            cfg,
            toks: &graph.files[f.file].toks,
            graph,
            caller: f,
            sources: &sources,
            sanitizers: &sans,
            carriers: &carriers,
        };
        let facts = solve(cfg, &ta);
        // Fold every block that reaches exit through its transfer.
        let mut out = TaintFact::new();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if block.succs.contains(&cfg.exit) {
                let env = ta.transfer(b, &facts[b]);
                for (k, t) in env {
                    out.entry(k).or_insert(t);
                }
            }
        }
        out
    }

    #[test]
    fn reaching_defs_kill_and_branch_union() {
        let src = "fn f(c: bool) { let x = 1; if c { x = 2; } use_it(x); }";
        let g = graph_of(src);
        let f = &g.fns[0];
        let toks = &g.files[f.file].toks;
        let (open, close) = f.sig.body.unwrap();
        let cfg = build_cfg(toks, open, close);
        let rd = ReachingDefs { cfg: &cfg, toks };
        let facts = solve(&cfg, &rd);
        // At the join before use_it(x), both definitions of x reach.
        let join = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|&(s, _)| toks[s].is_ident("use_it")))
            .unwrap();
        assert_eq!(facts[join].get("x").map(|s| s.len()), Some(2), "{facts:?}");
    }

    #[test]
    fn liveness_sees_use_across_branch() {
        let src = "fn f(c: bool) { let x = 1; if c { touch(); } use_it(x); }";
        let g = graph_of(src);
        let f = &g.fns[0];
        let toks = &g.files[f.file].toks;
        let (open, close) = f.sig.body.unwrap();
        let cfg = build_cfg(toks, open, close);
        let lv = Liveness { cfg: &cfg, toks };
        let facts = solve(&cfg, &lv);
        // x is live at the exit of the then-branch block.
        let then = cfg.blocks[cfg.entry].succs[0];
        assert!(facts[then].contains("x"), "{facts:?}");
        // …but dead at the function exit.
        assert!(facts[cfg.exit].is_empty());
    }

    #[test]
    fn taint_flows_through_let_chain() {
        let src = "fn f(e: E) { let a = e.encode(7); let b = a; sink(b); }";
        let g = graph_of(src);
        let env = exit_env(&g, "f", &["encode*"], &["decode"]);
        let b = env.get("b").expect("b tainted");
        assert_eq!(b.steps.len(), 2, "{b:?}"); // a's site, then b's site
        assert!(env.contains_key("a"));
    }

    #[test]
    fn sanitizer_cleanses_rebinding() {
        let src = "fn f(e: E) { let a = e.encode(7); let b = e.decode(a); sink(b); }";
        let g = graph_of(src);
        let env = exit_env(&g, "f", &["encode*"], &["decode"]);
        assert!(env.contains_key("a"));
        assert!(!env.contains_key("b"), "{env:?}");
    }

    #[test]
    fn branch_join_keeps_taint_from_either_arm() {
        let src = "fn f(e: E, c: bool) { let mut a = clean(); if c { a = e.encode(1); } sink(a); }";
        let g = graph_of(src);
        let env = exit_env(&g, "f", &["encode*"], &["decode"]);
        assert!(env.contains_key("a"), "{env:?}");
    }

    #[test]
    fn assignment_overwrite_kills_taint() {
        let src = "fn f(e: E) { let mut a = e.encode(1); a = clean(); sink(a); }";
        let g = graph_of(src);
        let env = exit_env(&g, "f", &["encode*"], &["decode"]);
        assert!(!env.contains_key("a"), "{env:?}");
    }

    #[test]
    fn taint_survives_loop_back_edge() {
        let src = "fn f(e: E) { let mut a = clean(); loop { if done() { break; } a = e.encode(1); } sink(a); }";
        let g = graph_of(src);
        let env = exit_env(&g, "f", &["encode*"], &["decode"]);
        assert!(env.contains_key("a"), "{env:?}");
    }

    #[test]
    fn carrier_fixpoint_marks_wrapping_fns() {
        let src = "
            impl E { fn encode(&self, x: u32) -> u32 { x } }
            fn direct(e: &E) -> u32 { e.encode(3) }
            fn wrapped(e: &E) -> u32 { let v = direct(e); v }
            fn cleansed(e: &E) -> u32 { let v = direct(e); decode(v) }
            fn decode(v: u32) -> u32 { v }
        ";
        let g = graph_of(src);
        let cfgs = build_cfgs(&g);
        let carriers = compute_carriers(&g, &cfgs, &strings(&["encode*"]), &strings(&["decode"]));
        let by_name = |n: &str| g.fns.iter().position(|f| f.name == n).unwrap();
        assert!(carriers.contains(&by_name("direct")));
        assert!(carriers.contains(&by_name("wrapped")), "{carriers:?}");
        assert!(!carriers.contains(&by_name("cleansed")), "{carriers:?}");
    }

    #[test]
    fn wildcard_matching() {
        assert!(name_matches("encode*", "encode_cq"));
        assert!(name_matches("encode*", "encode"));
        assert!(!name_matches("encode*", "decode"));
        assert!(name_matches("*_raw", "scan_raw"));
        assert!(name_matches("decode", "decode"));
        assert!(!name_matches("decode", "decode_triple"));
    }
}
