//! The crate-wide **item graph**: every parsed file of every workspace
//! crate, flattened into tables the semantic lints (L007–L011) query.
//!
//! The graph records, per function: its crate, impl self-type, signature,
//! the lock acquisitions in its body (with how long each guard is held),
//! and its call sites. Across functions it indexes free functions by
//! `(crate, name)`, methods by self-type, error enums (`*Error`), crate
//! `Result` aliases, `From<X> for Y` impls, and each file's `use` imports.
//!
//! Name resolution is deliberately conservative: a call is resolved only
//! when the target is unambiguous — `self.m(…)` against the enclosing impl,
//! a free `f(…)` defined or imported in scope, a `crate_ident::f(…)` path,
//! or a method name defined on exactly one type in the whole graph.
//! Ambiguity means "unknown", and unknown never produces a finding.

use crate::config::Config;
use crate::items::{parse_items, receiver_chain, stmt_end, stmt_start, FnSig, Item, ItemKind};
use crate::lexer::{lex, Tok, TokKind};
use crate::lints::FileContext;
use std::collections::{BTreeMap, BTreeSet};

/// One lexed + item-parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Scoping context (repo-relative path, crate name).
    pub ctx: FileContext,
    /// The file's tokens.
    pub toks: Vec<Tok>,
    /// The file's item tree.
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Lex and item-parse one file.
    pub fn parse(ctx: FileContext, src: &str) -> ParsedFile {
        let toks = lex(src);
        let items = parse_items(&toks);
        ParsedFile { ctx, toks, items }
    }
}

/// A lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Lock class, e.g. `core::PlanCache.shard_of` — see
    /// [`ItemGraph::lock_class`] for the naming rule.
    pub class: String,
    /// Token index of the acquiring call (`lock`/`read`/`write`/wrapper).
    pub tok: usize,
    /// One past the last token where the guard is still held.
    pub hold_end: usize,
    /// Guard binding name when `let`-bound (`None` for temporaries).
    pub guard: Option<String>,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name (`answer`, `eval_cq`, …).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// `.name(…)` (method) vs `name(…)` (free).
    pub method: bool,
    /// For methods: the receiver chain bottoms out at `self`.
    pub recv_self: bool,
    /// For free calls: the path segment before `::`, if any.
    pub qualifier: Option<String>,
}

/// One function (free or method) in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`ItemGraph::files`].
    pub file: usize,
    /// Crate directory name (`core`, `storage`, …).
    pub krate: String,
    /// Enclosing impl's self type for methods.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// `pub` without restriction.
    pub is_pub: bool,
    /// Inside test-only code.
    pub cfg_test: bool,
    /// Behind a positive `modelcheck_mutation` cfg (seeded bug twin).
    pub cfg_mutation: bool,
    /// Parsed signature (token indexes into the file).
    pub sig: FnSig,
    /// 1-based position of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockAcq>,
    /// Call sites in the body.
    pub calls: Vec<Call>,
    /// Error type of a `Result` return, when determinable.
    pub err_ty: Option<String>,
}

/// The assembled graph.
#[derive(Debug)]
pub struct ItemGraph {
    /// Every parsed file, in input order.
    pub files: Vec<ParsedFile>,
    /// Every function, flattened.
    pub fns: Vec<FnNode>,
    /// `(crate, name)` → free-fn indexes.
    pub free_fns: BTreeMap<(String, String), Vec<usize>>,
    /// Self type → method name → fn indexes.
    pub methods: BTreeMap<String, BTreeMap<String, Vec<usize>>>,
    /// Method name → fn indexes across all types.
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Crate → enums whose name ends in `Error`.
    pub error_enums: BTreeMap<String, BTreeSet<String>>,
    /// Crate → error type of its `type Result<T> = …` alias.
    pub result_alias_err: BTreeMap<String, String>,
    /// `(To, From)` pairs from `impl From<From> for To`.
    pub from_impls: BTreeSet<(String, String)>,
    /// Per-file: locally-bound name → full import path.
    pub imports: Vec<BTreeMap<String, Vec<String>>>,
    /// Per-file: glob-import path prefixes (`use a::b::*`).
    pub glob_imports: Vec<Vec<Vec<String>>>,
    /// Per-fn transitive lock classes (fixpoint over the call graph).
    locks_closure: Vec<BTreeSet<String>>,
}

/// Method names that can never be interesting call-graph edges; skipping
/// them keeps the by-name fallback from resolving `.len()` on a shard map
/// to some unrelated type's `len`.
const UNTRACKED_METHODS: &[&str] = &[
    "clone",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "contains",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "to_string",
    "to_owned",
    "into",
    "as_ref",
    "as_str",
    "collect",
    "extend",
    "clear",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "as", "in", "move", "ref", "else",
    "mut", "pub", "use", "mod", "impl", "struct", "enum", "trait", "type", "const", "static",
    "where", "unsafe", "async", "await", "dyn", "fn", "Some", "Ok", "Err", "None", "box",
];

impl ItemGraph {
    /// Build the graph from parsed files.
    pub fn build(files: Vec<ParsedFile>, cfg: &Config) -> ItemGraph {
        let mut g = ItemGraph {
            files,
            fns: Vec::new(),
            free_fns: BTreeMap::new(),
            methods: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            error_enums: BTreeMap::new(),
            result_alias_err: BTreeMap::new(),
            from_impls: BTreeSet::new(),
            imports: Vec::new(),
            glob_imports: Vec::new(),
            locks_closure: Vec::new(),
        };
        for fi in 0..g.files.len() {
            let mut imports = BTreeMap::new();
            let mut globs = Vec::new();
            let items = std::mem::take(&mut g.files[fi].items);
            g.walk_items(fi, &items, None, &mut imports, &mut globs, cfg);
            g.files[fi].items = items;
            g.imports.push(imports);
            g.glob_imports.push(globs);
        }
        g.compute_locks_closure();
        g
    }

    fn walk_items(
        &mut self,
        fi: usize,
        items: &[Item],
        self_ty: Option<&str>,
        imports: &mut BTreeMap<String, Vec<String>>,
        globs: &mut Vec<Vec<String>>,
        cfg: &Config,
    ) {
        let krate = self.files[fi].ctx.crate_name.clone();
        for item in items {
            match &item.kind {
                ItemKind::Use { targets } => {
                    for t in targets {
                        if t.glob {
                            globs.push(t.path.clone());
                        } else if !t.alias.is_empty() {
                            imports.insert(t.alias.clone(), t.path.clone());
                        }
                    }
                }
                ItemKind::Module { inline: true } => {
                    self.walk_items(fi, &item.children, self_ty, imports, globs, cfg);
                }
                ItemKind::Enum if item.name.ends_with("Error") => {
                    self.error_enums
                        .entry(krate.clone())
                        .or_default()
                        .insert(item.name.clone());
                }
                ItemKind::TypeAlias { target } if item.name == "Result" => {
                    let toks = &self.files[fi].toks;
                    let err = toks[target.0.min(toks.len())..target.1.min(toks.len())]
                        .iter()
                        .rfind(|t| t.kind == TokKind::Ident && t.text.ends_with("Error"))
                        .map(|t| t.text.clone());
                    if let Some(err) = err {
                        self.result_alias_err.entry(krate.clone()).or_insert(err);
                    }
                }
                ItemKind::Impl {
                    self_ty: ty,
                    trait_ty,
                    trait_args,
                } => {
                    if trait_ty.as_deref() == Some("From") {
                        if let Some(from) = trait_args.first() {
                            self.from_impls.insert((ty.clone(), from.clone()));
                        }
                    }
                    self.walk_items(fi, &item.children, Some(ty), imports, globs, cfg);
                }
                ItemKind::Trait => {
                    self.walk_items(fi, &item.children, Some(&item.name), imports, globs, cfg);
                }
                ItemKind::Fn(sig) => {
                    let idx = self.fns.len();
                    let node = self.fn_node(fi, item, sig.clone(), self_ty, cfg);
                    if let Some(ty) = &node.self_ty {
                        self.methods
                            .entry(ty.clone())
                            .or_default()
                            .entry(node.name.clone())
                            .or_default()
                            .push(idx);
                        self.methods_by_name
                            .entry(node.name.clone())
                            .or_default()
                            .push(idx);
                    } else {
                        self.free_fns
                            .entry((node.krate.clone(), node.name.clone()))
                            .or_default()
                            .push(idx);
                    }
                    self.fns.push(node);
                }
                _ => {}
            }
        }
    }

    fn fn_node(
        &self,
        fi: usize,
        item: &Item,
        sig: FnSig,
        self_ty: Option<&str>,
        cfg: &Config,
    ) -> FnNode {
        let file = &self.files[fi];
        let krate = file.ctx.crate_name.clone();
        let (locks, calls) = match sig.body {
            Some((open, close)) => scan_body(&file.toks, open, close, self_ty, &krate, cfg),
            None => (Vec::new(), Vec::new()),
        };
        let err_ty = result_error_type(&file.toks, sig.ret, &krate, &self.result_alias_err);
        FnNode {
            file: fi,
            krate,
            self_ty: self_ty.map(String::from),
            name: item.name.clone(),
            is_pub: item.is_pub,
            cfg_test: item.cfg_test,
            cfg_mutation: item.cfg_mutation,
            sig,
            line: item.line,
            col: item.col,
            locks,
            calls,
            err_ty,
        }
    }

    /// Transitive lock classes per fn: a fixpoint of
    /// `locks*(f) = direct(f) ∪ ⋃ locks*(resolved callees of f)`.
    fn compute_locks_closure(&mut self) {
        let n = self.fns.len();
        let mut closure: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| f.locks.iter().map(|l| l.class.clone()).collect())
            .collect();
        // Resolve call edges once.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in self.fns.iter().enumerate() {
            for c in &f.calls {
                if let Some(t) = self.resolve_call(f, c) {
                    if t != i {
                        edges[i].push(t);
                    }
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut add: Vec<String> = Vec::new();
                for &t in &edges[i] {
                    for cls in &closure[t] {
                        if !closure[i].contains(cls) {
                            add.push(cls.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    closure[i].extend(add);
                    changed = true;
                }
            }
        }
        self.locks_closure = closure;
    }

    /// All lock classes fn `idx` may acquire, transitively.
    pub fn transitive_locks(&self, idx: usize) -> &BTreeSet<String> {
        &self.locks_closure[idx]
    }

    /// Resolve a call to a unique fn in the graph, or `None`.
    pub fn resolve_call(&self, caller: &FnNode, call: &Call) -> Option<usize> {
        if call.method {
            if UNTRACKED_METHODS.contains(&call.name.as_str()) {
                return None;
            }
            if call.recv_self {
                if let Some(ty) = &caller.self_ty {
                    if let Some(v) = self.methods.get(ty).and_then(|m| m.get(&call.name)) {
                        return unique(v);
                    }
                }
            }
            // By-name fallback: only when the name is defined on exactly
            // one type in the entire graph.
            return unique(self.methods_by_name.get(&call.name)?);
        }
        if let Some(q) = &call.qualifier {
            if let Some(krate) = crate_of_path_ident(q) {
                if let Some(v) = self.free_fns.get(&(krate, call.name.clone())) {
                    return unique(v);
                }
            }
            if q == "crate" || q == "self" || q == "super" {
                if let Some(v) = self
                    .free_fns
                    .get(&(caller.krate.clone(), call.name.clone()))
                {
                    return unique(v);
                }
            }
            return None;
        }
        // Unqualified: same crate first, then a single-crate import.
        if let Some(v) = self
            .free_fns
            .get(&(caller.krate.clone(), call.name.clone()))
        {
            return unique(v);
        }
        let imp = self.imports.get(caller.file)?;
        let path = imp.get(&call.name)?;
        let krate = crate_of_path_ident(path.first()?)?;
        unique(self.free_fns.get(&(krate, call.name.clone()))?)
    }

    /// Does `ty` (an impl self type anywhere in the graph) define a method
    /// called `name`? Used by L001 to recognise domain `expect`-alikes.
    pub fn type_has_method(&self, ty: &str, name: &str) -> bool {
        self.methods
            .get(ty)
            .map(|m| m.contains_key(name))
            .unwrap_or(false)
    }

    /// The impl self type enclosing token `tok` of file `fi`, if any.
    pub fn impl_ty_at(&self, fi: usize, tok: usize) -> Option<String> {
        fn find(items: &[Item], tok: usize, current: Option<&str>) -> Option<String> {
            for item in items {
                if tok < item.start || tok >= item.end {
                    continue;
                }
                let here = match &item.kind {
                    ItemKind::Impl { self_ty, .. } => Some(self_ty.as_str()),
                    _ => current,
                };
                return find(&item.children, tok, here).or_else(|| here.map(String::from));
            }
            current.map(String::from)
        }
        find(&self.files[fi].items, tok, None)
    }
}

fn unique(v: &[usize]) -> Option<usize> {
    if v.len() == 1 {
        Some(v[0])
    } else {
        None
    }
}

/// Is `name` on the untracked-method list (never a call-graph edge)?
/// Exposed for the flow lints, whose reachability BFS uses the same
/// filter but fans ambiguous calls out instead of dropping them.
pub(crate) fn untracked_method(name: &str) -> bool {
    UNTRACKED_METHODS.contains(&name)
}

/// Workspace crate directory for a path ident (`rdfref_storage` →
/// `storage`, `rdfref_model` → `rdf`).
pub(crate) fn crate_of_path_ident(ident: &str) -> Option<String> {
    match ident {
        "rdfref_model" => Some("rdf".to_string()),
        "rdfref" => Some("rdfref".to_string()),
        _ => ident.strip_prefix("rdfref_").map(String::from),
    }
}

/// Error type of a `Result<…>` return, when determinable: the explicit
/// second type argument, or the crate's `Result` alias default. Single-
/// letter names are treated as generics and yield `None`.
fn result_error_type(
    toks: &[Tok],
    ret: (usize, usize),
    krate: &str,
    alias_err: &BTreeMap<String, String>,
) -> Option<String> {
    let range = &toks[ret.0.min(toks.len())..ret.1.min(toks.len())];
    let pos = range.iter().position(|t| t.is_ident("Result"))?;
    // Explicit args?
    if range.get(pos + 1).map(|t| t.is_punct('<')).unwrap_or(false) {
        let mut depth = 0i32;
        let mut top_commas = Vec::new();
        let mut end = range.len();
        for (i, t) in range.iter().enumerate().skip(pos + 1) {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                TokKind::Punct(',') if depth == 1 => top_commas.push(i),
                _ => {}
            }
        }
        if let Some(&comma) = top_commas.first() {
            let err = range[comma + 1..end]
                .iter()
                .rfind(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())?;
            if err.chars().count() <= 1 {
                return None; // a generic parameter, not a concrete enum
            }
            return Some(err);
        }
    }
    alias_err.get(krate).cloned()
}

/// Scan one fn body for lock acquisitions and call sites.
fn scan_body(
    toks: &[Tok],
    open: usize,
    close: usize,
    self_ty: Option<&str>,
    krate: &str,
    cfg: &Config,
) -> (Vec<LockAcq>, Vec<Call>) {
    let mut locks = Vec::new();
    let mut calls = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let next_paren = toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !next_paren {
            i += 1;
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let is_lock_method = prev_dot && matches!(t.text.as_str(), "lock" | "read" | "write");
        let is_wrapper = !prev_dot && cfg.lock_wrappers.contains(&t.text);
        if is_lock_method || is_wrapper {
            let class = if is_lock_method {
                lock_class(&receiver_chain(toks, i - 1), self_ty, krate)
            } else {
                // Wrapper: class from the first argument's chain,
                // `lock_or_recover(&self.counters)` → …counters.
                let arg_close = crate::items::matching(toks, i + 1, '(', ')').unwrap_or(close);
                let chain: Vec<String> = toks[i + 2..arg_close]
                    .iter()
                    .take_while(|t| t.kind == TokKind::Ident || t.is_punct('&') || t.is_punct('.'))
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                lock_class(&chain, self_ty, krate)
            };
            let (hold_end, guard) = guard_extent(toks, i, close);
            locks.push(LockAcq {
                class,
                tok: i,
                hold_end,
                guard,
            });
            i += 1;
            continue;
        }
        if prev_dot {
            let chain = receiver_chain(toks, i - 1);
            calls.push(Call {
                name: t.text.clone(),
                tok: i,
                method: true,
                recv_self: chain.first().map(|s| s == "self").unwrap_or(false),
                qualifier: None,
            });
            i += 1;
            continue;
        }
        if KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Free or path-qualified call.
        let qualifier = if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            toks.get(i.wrapping_sub(3))
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone())
        } else {
            None
        };
        calls.push(Call {
            name: t.text.clone(),
            tok: i,
            method: false,
            recv_self: false,
            qualifier,
        });
        i += 1;
    }
    (locks, calls)
}

/// Name the lock class for an acquisition whose receiver chain is `chain`.
///
/// * `self.<…>.field_or_fn` → `crate::SelfTy.last` — two impls' fields with
///   the same name on *different* types stay distinct classes.
/// * anything else → `crate::last` (locals and free receivers collapse by
///   trailing name; conservative, and what the fixtures rely on).
fn lock_class(chain: &[String], self_ty: Option<&str>, krate: &str) -> String {
    let last = chain.last().map(String::as_str).unwrap_or("<expr>");
    if chain.first().map(String::as_str) == Some("self") {
        if let Some(ty) = self_ty {
            if chain.len() == 1 {
                return format!("{krate}::{ty}");
            }
            return format!("{krate}::{ty}.{last}");
        }
    }
    format!("{krate}::{last}")
}

/// How long the guard produced at `acq` (token index of the acquiring
/// call) is held: `let`-bound guards live to end of scope or an explicit
/// `drop(name)`; temporaries (including `let _ =`) die at statement end.
fn guard_extent(toks: &[Tok], acq: usize, body_close: usize) -> (usize, Option<String>) {
    let start = stmt_start(toks, acq);
    let s_end = stmt_end(toks, acq).min(body_close);
    // `let [mut] NAME = …`
    let mut j = start;
    if !toks.get(j).map(|t| t.is_ident("let")).unwrap_or(false) {
        return (s_end, None);
    }
    j += 1;
    if toks.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
        j += 1;
    }
    let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return (s_end, None);
    };
    let name = name_tok.text.clone();
    if name == "_" {
        return (s_end, None); // dropped immediately
    }
    // Scope close: first `}` that takes brace depth negative after the
    // statement, or an explicit drop(name)/mem::forget(name).
    let mut depth = 0i32;
    let mut k = s_end;
    while k < body_close {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return (k, Some(name));
                }
            }
            TokKind::Ident
                if depth >= 0
                    && (t.text == "drop" || t.text == "forget")
                    && toks.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                    && toks.get(k + 2).map(|n| n.is_ident(&name)).unwrap_or(false) =>
            {
                return (k, Some(name));
            }
            _ => {}
        }
        k += 1;
    }
    (body_close, Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> ItemGraph {
        let ctx = FileContext {
            path: "crates/core/src/fixture.rs".to_string(),
            crate_name: "core".to_string(),
        };
        ItemGraph::build(vec![ParsedFile::parse(ctx, src)], &Config::default())
    }

    #[test]
    fn collects_fns_methods_and_error_enums() {
        let g = graph_of(
            r#"
            pub enum CoreError { Bad }
            pub type Result<T> = std::result::Result<T, CoreError>;
            impl From<StorageError> for CoreError { fn from(e: StorageError) -> CoreError { CoreError::Bad } }
            pub fn free() -> Result<u32> { Ok(1) }
            struct Db;
            impl Db {
                fn answer(&self) -> Result<u32> { free() }
            }
            "#,
        );
        assert!(g.error_enums["core"].contains("CoreError"));
        assert_eq!(g.result_alias_err["core"], "CoreError");
        assert!(g
            .from_impls
            .contains(&("CoreError".into(), "StorageError".into())));
        let free = &g.fns[g.free_fns[&("core".into(), "free".into())][0]];
        assert_eq!(free.err_ty.as_deref(), Some("CoreError"));
        let answer = &g.fns[g.methods["Db"]["answer"][0]];
        assert!(answer.calls.iter().any(|c| c.name == "free" && !c.method));
    }

    #[test]
    fn lock_classes_and_guard_extents() {
        let g = graph_of(
            r#"
            struct Cache { inner: Mutex<u32> }
            impl Cache {
                fn bump(&self) {
                    let g = self.inner.lock();
                    touch();
                }
                fn peek(&self) -> u32 {
                    *self.inner.lock()
                }
            }
            fn touch() {}
            "#,
        );
        let bump = &g.fns[g.methods["Cache"]["bump"][0]];
        assert_eq!(bump.locks.len(), 1);
        assert_eq!(bump.locks[0].class, "core::Cache.inner");
        assert_eq!(bump.locks[0].guard.as_deref(), Some("g"));
        // The guard is held across the later `touch()` call.
        let call = bump.calls.iter().find(|c| c.name == "touch").unwrap();
        assert!(call.tok < bump.locks[0].hold_end);
        // A temporary dies at statement end.
        let peek = &g.fns[g.methods["Cache"]["peek"][0]];
        assert!(peek.locks[0].guard.is_none());
    }

    #[test]
    fn transitive_locks_cross_functions() {
        let g = graph_of(
            r#"
            struct A { m: Mutex<u32> }
            impl A {
                fn outer(&self) { self.locker(); }
                fn locker(&self) { let _g = self.m.lock(); }
            }
            "#,
        );
        let outer = g.methods["A"]["outer"][0];
        assert!(g.transitive_locks(outer).contains("core::A.m"));
    }

    #[test]
    fn ambiguous_methods_do_not_resolve() {
        let g = graph_of(
            r#"
            struct X; struct Y;
            impl X { fn poke(&self) {} }
            impl Y { fn poke(&self) {} }
            fn caller(x: &X) { x.poke(); }
            "#,
        );
        let caller = &g.fns[g.free_fns[&("core".into(), "caller".into())][0]];
        let call = caller.calls.iter().find(|c| c.name == "poke").unwrap();
        assert!(g.resolve_call(caller, call).is_none());
    }
}
