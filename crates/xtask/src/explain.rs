//! `cargo xtask lint --explain <rule>` — long-form documentation for each
//! catalog rule.
//!
//! The short descriptions in [`crate::sarif::RULES`] fit a SARIF viewer
//! column; the texts here are what a developer staring at a finding needs:
//! why the rule exists in *this* codebase, what a finding typically looks
//! like, how to fix it, and which `lints.toml` keys tune it. A test pins
//! that every rule in the catalog has an entry, so adding L0NN without
//! documentation fails the build.

use crate::sarif::RULES;

/// Long-form body for one rule, paired with the catalog by id.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "L001",
        "Library code must never abort the process: a panicking `.unwrap()` in the\n\
         reformulation or storage layer kills every in-flight query sharing the\n\
         process. Return the crate `Result` instead, or prove the invariant and\n\
         use a pattern match.\n\
         \n\
         Fix: replace `.unwrap()` / `.expect(…)` with `?` into the crate error\n\
         enum, `ok_or(…)?`, or an explicit match.\n\
         Config: `library_crates` scopes the rule; `[[allow]]` budgets accepted\n\
         residue. Domain methods named `expect` are exempted by the item graph.",
    ),
    (
        "L002",
        "`panic!`, `unreachable!`, `todo!` and `unimplemented!` are aborts in\n\
         disguise; in library crates every failure path must flow through the\n\
         crate error enums so callers (and the serving layer) can degrade\n\
         gracefully.\n\
         \n\
         Fix: return `Err(CoreError::…)` (or the local crate's enum); for truly\n\
         impossible branches, return an internal-invariant error — it is still\n\
         reportable.\n\
         Config: `library_crates`, `[[allow]]`.",
    ),
    (
        "L003",
        "`println!`-family output from a library crate corrupts benchmark\n\
         harness output and bypasses the observability layer. All diagnostics\n\
         go through `rdfref_obs` metrics/spans; user-facing text belongs to the\n\
         binaries.\n\
         \n\
         Fix: delete the print or route it through the obs registry.\n\
         Config: `library_crates`, `[[allow]]`.",
    ),
    (
        "L004",
        "A public function that can fail (contains `?`, `Err(…)`, or a fallible\n\
         callee) must say so in its signature by returning the crate `Result`.\n\
         Swallowing errors or panicking hides failures from the answering\n\
         facade's contract `answer(q, G, S) = q(G∞)`.\n\
         \n\
         Fix: change the return type to the crate `Result` and propagate.\n\
         Config: `library_crates`, `[[allow]]`.",
    ),
    (
        "L005",
        "`Database::answer` can take seconds on cold plans; holding a lock guard\n\
         across it serializes every concurrent caller on that lock (and has\n\
         deadlocked the serving layer before). Locks protect data, not whole\n\
         query executions.\n\
         \n\
         Fix: clone or snapshot what you need, drop the guard, then call\n\
         `answer`.\n\
         Config: `answer_methods` names the long-running calls; `[[allow]]`.",
    ),
    (
        "L006",
        "Cloning a `Graph` or dictionary inside a loop turns an O(n) pass into\n\
         O(n·|G|) and has shown up as multi-second regressions in the\n\
         reformulation benchmarks. Hoist the clone or borrow.\n\
         \n\
         Fix: move the clone out of the loop, use `&` or `Arc`, or restructure\n\
         with iterators.\n\
         Config: `heavy_types` lists the expensive types; `[[allow]]`.",
    ),
    (
        "L007",
        "The workspace's lock acquisition-order graph must stay acyclic: a cycle\n\
         between two locks is a deadlock waiting for the right schedule. The\n\
         lint computes transitive lock closures over the call graph, so an\n\
         indirect cycle through a helper is also caught.\n\
         \n\
         Fix: impose a global order (document it where the locks are declared)\n\
         or collapse the two locks into one.\n\
         Config: lock classes are inferred from field/binding names.",
    ),
    (
        "L008",
        "Errors crossing a crate boundary must map into the receiving crate's\n\
         error enum — `?` on a foreign error type only compiles through a\n\
         `From` impl, and `Box<dyn Error>` in a public signature erases the\n\
         failure taxonomy the paper's experiments rely on for per-strategy\n\
         accounting.\n\
         \n\
         Fix: add the `From` impl / `#[from]` arm, and make public signatures\n\
         return the crate `Result`.\n\
         Config: error enums and `Result` aliases are discovered from the item\n\
         graph.",
    ),
    (
        "L009",
        "An `Obs` span or stopwatch dropped on the spot (`let _ = …`, statement\n\
         position, `mem::forget`) records a zero-length interval — the metric\n\
         silently lies. Guards must be held in a named binding that lives to\n\
         end of scope, and stopwatches must be read.\n\
         \n\
         Fix: `let _guard = obs.span(…);` — or remove the span if it measures\n\
         nothing. `cargo xtask lint --fix` rewrites the binding mechanically.\n\
         Config: `span_methods`, `[[allow]]`.",
    ),
    (
        "L010",
        "Worker closures (rayon-style morsel drivers, spawned threads) and open\n\
         span bodies must not block: `thread::sleep`, filesystem or network\n\
         I/O in a worker stalls the whole morsel pipeline and skews every\n\
         timing the experiments report.\n\
         \n\
         Fix: hoist the I/O out of the hot closure, or do it before/after the\n\
         parallel section.\n\
         Config: `worker_spawns`, `blocking_calls`, `[[allow]]`.",
    ),
    (
        "L011",
        "Every library crate carries `#![forbid(unsafe_code)]` and no scanned\n\
         file may bypass it (`unsafe` blocks, `#[allow(unsafe_code)]`). The\n\
         whole workspace is safe Rust by policy; soundness comes from the type\n\
         system, not from auditing.\n\
         \n\
         Fix: add the attribute to `src/lib.rs` (`--fix` does this) and remove\n\
         the bypass.\n\
         Config: `library_crates`.",
    ),
    (
        "L012",
        "Dictionary-encoded ids and base-space values live in different\n\
         universes: an encoded `TermId` flowing into a base-space sink (row\n\
         constructors, user-visible answers) without passing a decode boundary\n\
         produces garbage bindings that type-check. The lint taint-tracks\n\
         values from `taint_sources` calls through bindings to `taint_sinks` /\n\
         `taint_sink_types`, and attaches the full def-use witness chain to\n\
         each finding.\n\
         \n\
         Fix: route the value through a `taint_sanitizers` decode call.\n\
         Config: `taint_sources`, `taint_sanitizers`, `taint_sinks`,\n\
         `taint_sink_types`.",
    ),
    (
        "L013",
        "The snapshot publication protocol is a release/acquire handshake: the\n\
         writer fills the slot, then Release-stores the version; readers\n\
         Acquire-load the version before touching the slot. Any `Relaxed` on\n\
         that path, or a slot write *after* the Release store, lets a reader\n\
         observe a version without its snapshot — the exact bug the\n\
         `publish_order` / `relaxed_version` model-check mutations seed.\n\
         The lint also checks soundness of its own coverage: a struct field\n\
         named like a publication atomic must actually be typed as an atomic\n\
         the analysis models (std's or a `sync_wrappers` facade re-export).\n\
         \n\
         Fix: use `Ordering::Release` for publication stores, `Acquire` for\n\
         loads, keep the store last, and type protocol fields via the facade.\n\
         Config: `publication_atomics`, `publication_slots`, `sync_wrappers`,\n\
         `include_mutation_cfg` (CI sets it to prove the lint catches the\n\
         seeded mutation twins).",
    ),
    (
        "L014",
        "Serving-layer code answers against an epoch-pinned snapshot: a plan\n\
         cache hit from a *newer* epoch than the snapshot being served returns\n\
         answers the snapshot cannot justify (the `unpinned_lookup` mutation).\n\
         Functions reachable from `serving_types` methods must use the `_at`\n\
         epoch-pinned cache API, never the unpinned one. Findings carry the\n\
         call chain from the serving root as the witness.\n\
         \n\
         Fix: call `lookup_at` / `insert_at` with the pinned epoch pair.\n\
         Config: `serving_types`, `cache_receivers`, `unpinned_cache_calls`,\n\
         `include_mutation_cfg`.",
    ),
    (
        "L015",
        "The model checker (crates/modelcheck) can only explore schedules of\n\
         code whose sync operations go through the `rdfref_sync` facade — the\n\
         facade is a zero-cost re-export in normal builds and an instrumented\n\
         shim under `--features model-check`. A raw `std::sync` /\n\
         `std::thread` / `parking_lot` path in a facade-scoped crate is a\n\
         hole in the checker's coverage: that primitive is invisible to the\n\
         scheduler, so interleavings through it are never explored.\n\
         \n\
         Fix: import the primitive from `rdfref_sync` (same names, same types\n\
         in normal builds — a compile test pins the identity).\n\
         Config: `sync_scope_crates` (which crates the rule covers),\n\
         `raw_sync_paths` (the banned path roots), `sync_wrappers` (the\n\
         facade). Test code is exempt; deliberate exceptions take an\n\
         `[[allow]]` budget.",
    ),
];

/// Render the `--explain` text for `rule` (case-insensitive id like
/// `L013`, or the kebab-case rule name like `atomics-publication-protocol`).
/// `None` if the rule is unknown.
pub fn explain(rule: &str) -> Option<String> {
    let want = rule.trim();
    let (id, name, desc) = RULES
        .iter()
        .find(|(id, name, _)| id.eq_ignore_ascii_case(want) || name.eq_ignore_ascii_case(want))?;
    let body = EXPLANATIONS
        .iter()
        .find(|(eid, _)| eid == id)
        .map(|(_, b)| *b)
        .unwrap_or("(no extended documentation)");
    Some(format!("{id} {name}\n{desc}\n\n{body}\n"))
}

/// The valid `--explain` arguments, for the error message.
pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|(id, _, _)| *id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_rule_has_an_explanation() {
        for (id, _, _) in RULES {
            let text = explain(id).expect("rule in catalog");
            assert!(
                !text.contains("(no extended documentation)"),
                "{id} is missing a long-form explanation"
            );
            // Every entry names its fix and its config surface.
            assert!(text.contains("Fix:"), "{id} explanation has no Fix: line");
            assert!(
                text.contains("Config:"),
                "{id} explanation has no Config: line"
            );
        }
        // No orphaned explanations for rules that left the catalog.
        for (eid, _) in EXPLANATIONS {
            assert!(
                RULES.iter().any(|(id, _, _)| id == eid),
                "explanation for unknown rule {eid}"
            );
        }
    }

    #[test]
    fn lookup_accepts_id_and_name_in_any_case() {
        let by_id = explain("l015").unwrap();
        let by_name = explain("RAW-SYNC-PRIMITIVE-OUTSIDE-FACADE").unwrap();
        assert_eq!(by_id, by_name);
        assert!(explain("L999").is_none());
        assert!(explain("").is_none());
    }

    /// Snapshot of one rendered entry: header line, short description,
    /// blank line, body. Guards the exact `--explain` output format.
    #[test]
    fn explain_output_snapshot() {
        let text = explain("L015").unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("L015 raw-sync-primitive-outside-facade"));
        assert_eq!(
            lines.next(),
            Some(
                "Facade-scoped crates import sync primitives from rdfref_sync, \
                 never std::sync/std::thread/parking_lot"
            )
        );
        assert_eq!(lines.next(), Some(""));
        assert_eq!(
            lines.next(),
            Some("The model checker (crates/modelcheck) can only explore schedules of")
        );
        assert!(text.ends_with("`[[allow]]` budget.\n"));
    }
}
