//! File collection, the two-phase lint pipeline, allowlist reconciliation
//! and reporting.
//!
//! A run is two phases: (1) lex + item-parse every file of every scanned
//! crate and assemble the [`ItemGraph`]; (2) run the token lints
//! (L001–L006) per file and the semantic lints (L007–L011) over the whole
//! graph. The graph also refines L001 (domain methods named `expect`).

use crate::config::{AllowEntry, Config};
use crate::flowlints::flow_lints;
use crate::graph::{ItemGraph, ParsedFile};
use crate::lints::{lint_tokens, FileContext, Violation};
use crate::semlints::{refine_l001, semantic_lints};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Outcome of a lint run over the repository.
#[derive(Debug)]
pub struct LintReport {
    /// Every finding, allowlisted or not.
    pub violations: Vec<Violation>,
    /// (lint, file) → findings beyond/below the allowlisted budget.
    pub over_budget: Vec<(String, String, usize, usize)>,
    /// Allow entries whose file had no findings at all (stale).
    pub stale: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True iff the run should exit zero.
    pub fn clean(&self) -> bool {
        self.over_budget.is_empty() && self.stale.is_empty()
    }
}

/// The directories a lint run scans — exactly one `src/` per configured
/// library crate. `vendor/` and `target/` are excluded *structurally*:
/// nothing outside these roots is ever read.
pub fn scan_roots(root: &Path, cfg: &Config) -> Vec<PathBuf> {
    cfg.library_crates
        .iter()
        .map(|krate| {
            if krate == "rdfref" {
                root.join("src")
            } else {
                root.join("crates").join(krate).join("src")
            }
        })
        .collect()
}

/// Collect the source files the lints scan: `crates/<c>/src/**/*.rs` for
/// each configured library crate, plus the workspace root package's
/// `src/**` when `"rdfref"` is listed.
pub fn collect_files(root: &Path, cfg: &Config) -> Vec<(PathBuf, FileContext)> {
    let mut out = Vec::new();
    for (krate, src) in cfg.library_crates.iter().zip(scan_roots(root, cfg)) {
        let mut files = Vec::new();
        walk_rs(&src, &mut files);
        files.sort();
        for f in files {
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((
                f.clone(),
                FileContext {
                    path: rel,
                    crate_name: krate.clone(),
                },
            ));
        }
    }
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

/// Run the whole catalog (token + semantic lints) over in-memory sources.
/// Returns every finding plus the assembled graph (for callers that want
/// to inspect it, e.g. `--fix` and the tests).
pub fn lint_sources(
    sources: Vec<(FileContext, String)>,
    cfg: &Config,
) -> (Vec<Violation>, ItemGraph) {
    let parsed: Vec<ParsedFile> = sources
        .into_iter()
        .map(|(ctx, src)| ParsedFile::parse(ctx, &src))
        .collect();
    let graph = ItemGraph::build(parsed, cfg);
    let mut violations = Vec::new();
    for pf in &graph.files {
        violations.extend(lint_tokens(&pf.toks, &pf.ctx, cfg));
    }
    let mut violations = refine_l001(&graph, violations);
    violations.extend(semantic_lints(&graph, cfg));
    violations.extend(flow_lints(&graph, cfg));
    violations.sort_by_key(|v| (v.file.clone(), v.line, v.col, v.lint));
    (violations, graph)
}

/// Run every lint over the repo and reconcile with the allowlist.
pub fn run_lints(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    run_lints_filtered(root, cfg, None)
}

/// Like [`run_lints`], but when `only` is given, restrict the *report* to
/// files in that set: every file is still parsed (the semantic and flow
/// lints need the whole item graph for call resolution and reachability),
/// but findings outside the set are dropped and allowlist reconciliation
/// — budget mismatches and stale-entry checks alike — only considers
/// entries whose file is in the set. This is the `--changed` fast path.
pub fn run_lints_filtered(
    root: &Path,
    cfg: &Config,
    only: Option<&BTreeSet<String>>,
) -> std::io::Result<LintReport> {
    let files = collect_files(root, cfg);
    let mut sources = Vec::with_capacity(files.len());
    for (path, ctx) in &files {
        sources.push((ctx.clone(), std::fs::read_to_string(path)?));
    }
    let (mut violations, _graph) = lint_sources(sources, cfg);
    if let Some(set) = only {
        violations.retain(|v| set.contains(&v.file));
    }

    // Reconcile against the allowlist: exact budgets.
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &violations {
        *counts
            .entry((v.lint.to_string(), v.file.clone()))
            .or_default() += 1;
    }
    let mut over_budget = Vec::new();
    let mut stale = Vec::new();
    for a in &cfg.allow {
        if let Some(set) = only {
            if !set.contains(&a.file) {
                continue;
            }
        }
        let found = counts
            .remove(&(a.lint.clone(), a.file.clone()))
            .unwrap_or(0);
        if found == 0 {
            stale.push(a.clone());
        } else if found != a.count {
            over_budget.push((a.lint.clone(), a.file.clone(), found, a.count));
        }
    }
    // Everything left in `counts` has budget 0.
    for ((lint, file), found) in counts {
        over_budget.push((lint, file, found, 0));
    }

    let files_scanned = match only {
        Some(set) => files.iter().filter(|(_, c)| set.contains(&c.path)).count(),
        None => files.len(),
    };
    Ok(LintReport {
        violations,
        over_budget,
        stale,
        files_scanned,
    })
}

/// The `.rs` files (workspace-relative, `/`-separated) that differ from
/// `git_ref`, plus untracked ones. Returns `Ok(None)` when the ref does
/// not resolve — callers fall back to a full sweep with a note — and an
/// error only when git itself cannot run.
pub fn changed_files(root: &Path, git_ref: &str) -> std::io::Result<Option<BTreeSet<String>>> {
    use std::process::Command;
    let verify = Command::new("git")
        .current_dir(root)
        .args(["rev-parse", "--verify", "--quiet"])
        .arg(format!("{git_ref}^{{commit}}"))
        .output()?;
    if !verify.status.success() {
        return Ok(None);
    }
    let mut set = BTreeSet::new();
    let diff = Command::new("git")
        .current_dir(root)
        .args(["diff", "--name-only", git_ref])
        .output()?;
    if !diff.status.success() {
        return Ok(None);
    }
    for line in String::from_utf8_lossy(&diff.stdout).lines() {
        if line.ends_with(".rs") {
            set.insert(line.to_string());
        }
    }
    let untracked = Command::new("git")
        .current_dir(root)
        .args(["ls-files", "--others", "--exclude-standard"])
        .output()?;
    if untracked.status.success() {
        for line in String::from_utf8_lossy(&untracked.stdout).lines() {
            if line.ends_with(".rs") {
                set.insert(line.to_string());
            }
        }
    }
    Ok(Some(set))
}

/// Render the human-readable report. Returns the text; the caller decides
/// where it goes (stdout for the binary, assertions for the tests).
pub fn format_report(report: &LintReport, cfg: &Config) -> String {
    let mut s = String::new();
    if report.clean() {
        s.push_str(&format!(
            "xtask lint: OK — {} files scanned, {} findings, all within the allowlist ({} residual sites budgeted)\n",
            report.files_scanned,
            report.violations.len(),
            cfg.allowed_sites(),
        ));
        return s;
    }
    for (lint, file, found, budget) in &report.over_budget {
        s.push_str(&format!(
            "error[{lint}]: {file}: {found} findings, allowlist budget {budget}\n"
        ));
        for v in report
            .violations
            .iter()
            .filter(|v| v.lint == lint && v.file == *file)
        {
            s.push_str(&format!(
                "  --> {}:{}:{}: {}\n",
                v.file, v.line, v.col, v.message
            ));
        }
    }
    for a in &report.stale {
        s.push_str(&format!(
            "error[stale-allow]: {} has no {} findings but allowlists {} — remove the entry\n",
            a.file, a.lint, a.count
        ));
    }
    s.push_str(&format!(
        "xtask lint: FAILED — {} budget mismatches, {} stale allow entries ({} files scanned)\n",
        report.over_budget.len(),
        report.stale.len(),
        report.files_scanned,
    ));
    s
}

/// Rebuild the allowlist from the current findings, preserving reasons of
/// surviving entries (`--write-allowlist`).
pub fn regenerate_allowlist(cfg: &Config, violations: &[Violation]) -> Config {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in violations {
        *counts
            .entry((v.lint.to_string(), v.file.clone()))
            .or_default() += 1;
    }
    let mut next = cfg.clone();
    next.allow = counts
        .into_iter()
        .map(|((lint, file), count)| {
            let reason = cfg
                .allow
                .iter()
                .find(|a| a.lint == lint && a.file == file)
                .map(|a| a.reason.clone())
                .unwrap_or_else(|| "residual site pending conversion".to_string());
            AllowEntry {
                lint,
                file,
                count,
                reason,
            }
        })
        .collect();
    next
}
