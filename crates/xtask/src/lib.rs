//! `xtask` — project-specific static analysis for the rdfref workspace.
//!
//! Run as `cargo xtask lint` (alias in `.cargo/config.toml`). The pass
//! enforces the panic-freedom and invariant-discipline policy documented in
//! DESIGN.md: library code must surface failures through the crate error
//! enums, never abort, and a few project-specific footguns (lock guards
//! held across `Database::answer`, heavy clones in loops) are caught
//! structurally. Built with a small hand-rolled lexer so it has zero
//! dependencies and works in the offline build container.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod runner;

pub use config::{parse_config, render_config, AllowEntry, Config};
pub use lints::{lint_file, FileContext, Violation};
pub use runner::{format_report, regenerate_allowlist, run_lints, LintReport};
