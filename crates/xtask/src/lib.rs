//! `xtask` — project-specific static analysis for the rdfref workspace.
//!
//! Run as `cargo xtask lint` (alias in `.cargo/config.toml`). The pass
//! enforces the panic-freedom and invariant-discipline policy documented in
//! DESIGN.md: library code must surface failures through the crate error
//! enums, never abort, and a few project-specific footguns (lock guards
//! held across `Database::answer`, heavy clones in loops) are caught
//! structurally. On top of the token lints, an item parser ([`items`]) and
//! crate-wide item graph ([`graph`]) drive the semantic lints
//! (L007 lock-order cycles, L008 cross-crate error discipline, L009 span
//! hygiene, L010 blocking-in-worker, L011 forbid(unsafe_code)), and a
//! dataflow layer — per-fn CFGs ([`cfg`]) plus a fixpoint engine
//! ([`dataflow`]) — drives the flow lints ([`flowlints`]: L012 id-space
//! taint, L013 atomics publication protocol, L014 epoch-pinned cache
//! discipline), with SARIF
//! 2.1.0 export ([`sarif`]) and mechanical fixes ([`fix`]). Built with a
//! small hand-rolled lexer so it has zero dependencies and works in the
//! offline build container.

pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod explain;
pub mod fix;
pub mod flowlints;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod runner;
pub mod sarif;
pub mod semlints;

pub use cfg::{build_cfg, Cfg};
pub use config::{parse_config, render_config, AllowEntry, Config};
pub use dataflow::{build_cfgs, compute_carriers, solve, Analysis, TaintAnalysis};
pub use explain::explain;
pub use fix::apply_fixes;
pub use flowlints::flow_lints;
pub use graph::{ItemGraph, ParsedFile};
pub use items::{parse_items, Item, ItemKind};
pub use lints::{lint_file, lint_tokens, FileContext, Violation};
pub use runner::{
    changed_files, collect_files, format_report, lint_sources, regenerate_allowlist, run_lints,
    run_lints_filtered, scan_roots, LintReport,
};
pub use sarif::to_sarif;
pub use semlints::semantic_lints;
