//! The dataflow lint catalog (L012–L014) over per-function CFGs.
//!
//! | lint | rule |
//! |------|------|
//! | L012 | encoded-id values (from `taint_sources` calls) must pass a `taint_sanitizers` decode boundary before reaching base-space sinks (`taint_sinks` calls, `taint_sink_types` struct literals) |
//! | L013 | publication atomics (`publication_atomics` fields) pair Release stores with Acquire loads; no Relaxed on the publication path; the Release store is the last write (no `publication_slots` write after it) |
//! | L014 | unpinned cache calls (`unpinned_cache_calls` on `cache_receivers`) are banned in functions reachable from `serving_types` methods — use the `_at` epoch-pinned variants |
//!
//! Findings carry their **witness** as related locations: L012 attaches
//! the def-use chain from the source call through every binding to the
//! sink, L013 the paired store site, L014 the call chain from the serving
//! root. `#[cfg(test)]` functions are exempt, matching the other lints.

use crate::cfg::Cfg;
use crate::config::Config;
use crate::dataflow::{build_cfgs, compute_carriers, name_matches, solve, Taint, TaintAnalysis};
use crate::graph::{FnNode, ItemGraph};
use crate::items::{matching, receiver_chain, Item, ItemKind};
use crate::lexer::{Tok, TokKind};
use crate::lints::{Related, Violation};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Run L012–L014 over the whole graph.
pub fn flow_lints(graph: &ItemGraph, cfg: &Config) -> Vec<Violation> {
    let cfgs = build_cfgs(graph);
    let carriers = compute_carriers(graph, &cfgs, &cfg.taint_sources, &cfg.taint_sanitizers);
    let mut out = Vec::new();
    lint_l012(graph, &cfgs, &carriers, cfg, &mut out);
    lint_l013(graph, &cfgs, cfg, &mut out);
    lint_l013_wrapper_soundness(graph, cfg, &mut out);
    lint_l014(graph, cfg, &mut out);
    out
}

/// Functions the flow lints skip: test code always; mutation twins unless
/// the run opted into them (`include_mutation_cfg`, used by CI to prove
/// the lints catch the seeded bugs).
fn skip_fn(f: &FnNode, cfg: &Config) -> bool {
    f.cfg_test || (f.cfg_mutation && !cfg.include_mutation_cfg)
}

fn loc(toks: &[Tok], i: usize) -> (u32, u32) {
    toks.get(i).map(|t| (t.line, t.col)).unwrap_or((0, 0))
}

fn related(toks: &[Tok], file: &str, i: usize, msg: impl Into<String>) -> Related {
    let (line, col) = loc(toks, i);
    Related {
        file: file.to_string(),
        line,
        col,
        message: msg.into(),
    }
}

// ---------------------------------------------------------------------------
// L012 — id-space taint.
// ---------------------------------------------------------------------------

/// The witness chain for a taint reaching a sink: source, each binding
/// step, then the sink itself.
fn taint_witness(toks: &[Tok], file: &str, taint: &Taint, sink: usize) -> Vec<Related> {
    let mut out = Vec::new();
    out.push(related(
        toks,
        file,
        taint.src,
        format!(
            "encoded-space value originates here (`{}`)",
            toks[taint.src].text
        ),
    ));
    for &step in &taint.steps {
        out.push(related(
            toks,
            file,
            step,
            format!("flows through binding `{}`", toks[step].text),
        ));
    }
    out.push(related(toks, file, sink, "reaches base-space sink here"));
    out
}

fn lint_l012(
    graph: &ItemGraph,
    cfgs: &[Option<Cfg>],
    carriers: &BTreeSet<usize>,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if skip_fn(f, cfg) {
            continue;
        }
        let Some(fcfg) = cfgs[idx].as_ref() else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let ta = TaintAnalysis {
            cfg: fcfg,
            toks,
            graph,
            caller: f,
            sources: &cfg.taint_sources,
            sanitizers: &cfg.taint_sanitizers,
            carriers,
        };
        let facts = solve(fcfg, &ta);
        for (b, block) in fcfg.blocks.iter().enumerate() {
            let mut env = facts[b].clone();
            for &(s, e) in &block.stmts {
                check_sinks_in_stmt(&ta, s, e, &env, cfg, &file.ctx.path, &mut seen, out);
                ta.stmt_transfer(s, e, &mut env);
            }
        }
    }
    out.sort_by_key(|v| (v.file.clone(), v.line, v.col));
}

/// Scan the statement `[s, e)` for sink calls and sink struct literals fed
/// by tainted values, under environment `env`.
#[allow(clippy::too_many_arguments)]
fn check_sinks_in_stmt(
    ta: &TaintAnalysis<'_>,
    s: usize,
    e: usize,
    env: &BTreeMap<String, Taint>,
    cfg: &Config,
    file: &str,
    seen: &mut BTreeSet<(String, usize)>,
    out: &mut Vec<Violation>,
) {
    let toks = ta.toks;
    let e = e.min(toks.len());
    for i in s..e {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Sink call: `from_parts(args…)`.
        let is_call = toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if is_call && cfg.taint_sinks.iter().any(|p| name_matches(p, &t.text)) {
            let close = matching(toks, i + 1, '(', ')').unwrap_or(e).min(e);
            if let Some(taint) = ta.expr_taint(i + 2, close, env) {
                if seen.insert((file.to_string(), i)) {
                    let (line, col) = loc(toks, i);
                    out.push(Violation {
                        lint: "L012",
                        file: file.to_string(),
                        line,
                        col,
                        message: format!(
                            "encoded-space value reaches base-space sink `{}` without a decode boundary",
                            t.text
                        ),
                        related: taint_witness(toks, file, &taint, i),
                    });
                }
            }
            continue;
        }
        // Sink struct literal: `QueryAnswer { field: value, … }`.
        let is_lit = toks.get(i + 1).map(|n| n.is_punct('{')).unwrap_or(false);
        if is_lit && cfg.taint_sink_types.iter().any(|ty| ty == &t.text) {
            let close = matching(toks, i + 1, '{', '}').unwrap_or(e).min(e);
            if let Some(taint) = ta.expr_taint(i + 2, close, env) {
                if seen.insert((file.to_string(), i)) {
                    let (line, col) = loc(toks, i);
                    out.push(Violation {
                        lint: "L012",
                        file: file.to_string(),
                        line,
                        col,
                        message: format!(
                            "encoded-space value stored into base-space `{}` without a decode boundary",
                            t.text
                        ),
                        related: taint_witness(toks, file, &taint, i),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L013 — atomics-ordering protocol.
// ---------------------------------------------------------------------------

const ATOMIC_RMW: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// The `Ordering::X` arguments inside a call's parens, in order.
fn orderings_in(toks: &[Tok], open: usize, close: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, t) in toks
        .iter()
        .enumerate()
        .take(close.min(toks.len()))
        .skip(open + 1)
    {
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            )
        {
            out.push((t.text.clone(), i));
        }
    }
    out
}

/// Is this `.method(` call's receiver one of the configured publication
/// atomics (`self.version.store(…)`, `published_seq.load(…)`)?
fn publication_receiver(toks: &[Tok], name_tok: usize, cfg: &Config) -> bool {
    if name_tok == 0 || !toks[name_tok - 1].is_punct('.') {
        return false;
    }
    let chain = receiver_chain(toks, name_tok - 1);
    chain
        .last()
        .map(|seg| cfg.publication_atomics.iter().any(|a| a == seg))
        .unwrap_or(false)
}

fn lint_l013(graph: &ItemGraph, cfgs: &[Option<Cfg>], cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, f) in graph.fns.iter().enumerate() {
        if skip_fn(f, cfg) {
            continue;
        }
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let path = &file.ctx.path;
        let mut release_stores: Vec<usize> = Vec::new();
        for i in open + 1..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                || !publication_receiver(toks, i, cfg)
            {
                continue;
            }
            let call_close = matching(toks, i + 1, '(', ')').unwrap_or(close).min(close);
            let ords = orderings_in(toks, i + 1, call_close);
            let (line, col) = loc(toks, i);
            match t.text.as_str() {
                "store" => match ords.first().map(|(o, _)| o.as_str()) {
                    Some("Release") | Some("SeqCst") => release_stores.push(i),
                    Some(other) => out.push(Violation {
                        lint: "L013",
                        file: path.clone(),
                        line,
                        col,
                        message: format!(
                            "publication store must use Ordering::Release (or SeqCst), got {other}"
                        ),
                        related: Vec::new(),
                    }),
                    None => {}
                },
                "load" => {
                    if let Some((o, _)) = ords.first() {
                        if o != "Acquire" && o != "SeqCst" {
                            out.push(Violation {
                                lint: "L013",
                                file: path.clone(),
                                line,
                                col,
                                message: format!(
                                    "publication load must use Ordering::Acquire (or SeqCst), got {o}"
                                ),
                                related: Vec::new(),
                            });
                        }
                    }
                }
                m if ATOMIC_RMW.contains(&m) => {
                    if let Some((o, oi)) = ords.iter().find(|(o, _)| o == "Relaxed") {
                        let _ = oi;
                        out.push(Violation {
                            lint: "L013",
                            file: path.clone(),
                            line,
                            col,
                            message: format!(
                                "read-modify-write on a publication atomic must not use Ordering::{o}"
                            ),
                            related: Vec::new(),
                        });
                    }
                }
                _ => {}
            }
        }
        // CFG check: the Release store must be the last write — flag any
        // write to a configured publication slot that can execute after
        // it. Only forward edges are followed: a loop's next iteration
        // legitimately re-fills the slot before its *own* store.
        if release_stores.is_empty() {
            continue;
        }
        let Some(fcfg) = cfgs[idx].as_ref() else {
            continue;
        };
        for &store_tok in &release_stores {
            let Some((sb, si)) = find_stmt(fcfg, store_tok) else {
                continue;
            };
            let mut flagged: Vec<usize> = Vec::new();
            // Rest of the store's own block.
            for &(s, e) in fcfg.blocks[sb].stmts.iter().skip(si + 1) {
                if let Some(w) = slot_write(toks, s, e, cfg) {
                    flagged.push(w);
                }
            }
            // Forward-reachable blocks.
            let mut queue: VecDeque<usize> = fcfg.blocks[sb]
                .succs
                .iter()
                .copied()
                .filter(|&s| s > sb && s != fcfg.exit)
                .collect();
            let mut seen: BTreeSet<usize> = queue.iter().copied().collect();
            while let Some(b) = queue.pop_front() {
                for &(s, e) in &fcfg.blocks[b].stmts {
                    if let Some(w) = slot_write(toks, s, e, cfg) {
                        flagged.push(w);
                    }
                }
                for &s in &fcfg.blocks[b].succs {
                    if s > b && s != fcfg.exit && seen.insert(s) {
                        queue.push_back(s);
                    }
                }
            }
            flagged.sort_unstable();
            flagged.dedup();
            for w in flagged {
                let (line, col) = loc(toks, w);
                out.push(Violation {
                    lint: "L013",
                    file: path.clone(),
                    line,
                    col,
                    message: "publication slot written after the Release store — the store must be the last write of the publish path".to_string(),
                    related: vec![related(
                        toks,
                        path,
                        store_tok,
                        "Release store published here",
                    )],
                });
            }
        }
    }
    out.sort_by_key(|v| (v.file.clone(), v.line, v.col));
}

/// The (block, stmt-index) containing token `tok`.
fn find_stmt(cfg: &Cfg, tok: usize) -> Option<(usize, usize)> {
    for (b, block) in cfg.blocks.iter().enumerate() {
        for (i, &(s, e)) in block.stmts.iter().enumerate() {
            if s <= tok && tok < e {
                return Some((b, i));
            }
        }
    }
    None
}

/// If the statement `[s, e)` writes a configured publication slot
/// (`*slot = …`, `self.slot = …`), the token index of the slot ident.
fn slot_write(toks: &[Tok], s: usize, e: usize, cfg: &Config) -> Option<usize> {
    let e = e.min(toks.len());
    if s >= e || toks[s].is_ident("let") {
        return None;
    }
    let eq = crate::dataflow::plain_eq(toks, s, e)?;
    (s..eq).find(|&i| {
        toks[i].kind == TokKind::Ident && cfg.publication_slots.iter().any(|p| p == &toks[i].text)
    })
}

// ---------------------------------------------------------------------------
// L013 soundness companion — the fields the lint reasons about must be
// types the ordering analysis actually models.
// ---------------------------------------------------------------------------

/// L013 matches loads and stores *by field name*: anything listed in
/// `publication_atomics` is assumed to be a real atomic — std's or a
/// re-export from a `sync_wrappers` facade crate. If a field keeps the
/// protocol name but is retyped to something else (a hand-rolled cell, a
/// third-party atomic), every ordering check on it silently stops applying.
/// Flag the definite mismatches; stay silent when the type cannot be
/// resolved through the file's imports, so generics and aliases don't
/// push people into renaming fields away from the protocol vocabulary.
fn lint_l013_wrapper_soundness(graph: &ItemGraph, cfg: &Config, out: &mut Vec<Violation>) {
    for (fi, file) in graph.files.iter().enumerate() {
        walk_structs(&file.items, &mut |item| {
            if item.cfg_test {
                return;
            }
            check_struct_fields(file, fi, graph, cfg, item, out);
        });
    }
}

/// Depth-first visit of every `struct` item in a tree.
fn walk_structs(items: &[Item], f: &mut impl FnMut(&Item)) {
    for item in items {
        if item.kind == ItemKind::Struct {
            f(item);
        }
        walk_structs(&item.children, f);
    }
}

/// Scan one struct body for fields named like publication atomics and
/// validate each field's type.
fn check_struct_fields(
    file: &crate::graph::ParsedFile,
    fi: usize,
    graph: &ItemGraph,
    cfg: &Config,
    item: &Item,
    out: &mut Vec<Violation>,
) {
    let toks = &file.toks;
    let Some(open) = (item.start..item.end.min(toks.len())).find(|&i| toks[i].is_punct('{')) else {
        return; // tuple or unit struct: no named fields
    };
    let close = matching(toks, open, '{', '}')
        .unwrap_or(item.end)
        .min(item.end);
    let mut depth = 0usize;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Ident
                if depth == 0
                    && toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                    && !toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false)
                    && cfg.publication_atomics.iter().any(|a| a == &t.text) =>
            {
                let ty_end = field_type_end(toks, i + 2, close);
                check_field_type(file, fi, graph, cfg, i, i + 2, ty_end, out);
                i = ty_end;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// One past the last token of a field type starting at `s`: the next
/// top-level `,` or the struct's closing brace.
fn field_type_end(toks: &[Tok], s: usize, close: usize) -> usize {
    let mut depth = 0usize;
    let mut angle = 0usize;
    for (i, tok) in toks.iter().enumerate().take(close).skip(s) {
        match tok.kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Punct(',') if depth == 0 && angle == 0 => return i,
            _ => {}
        }
    }
    close
}

/// Classify the type of a publication-atomic field. A type is sound if
/// some path in it resolves (inline or through the file's imports) to
/// `std::sync::atomic` / `core::sync::atomic` or into a `sync_wrappers`
/// crate *and* names an atomic. A resolved atomic-looking path with any
/// other root, or a type with no atomic in it at all, is a definite
/// mismatch; unresolvable idents keep us silent.
#[allow(clippy::too_many_arguments)]
fn check_field_type(
    file: &crate::graph::ParsedFile,
    fi: usize,
    graph: &ItemGraph,
    cfg: &Config,
    field_tok: usize,
    s: usize,
    e: usize,
    out: &mut Vec<Violation>,
) {
    let toks = &file.toks;
    let mut saw_atomic_ident = false;
    let mut bad_path: Option<Vec<String>> = None;
    let mut i = s;
    while i < e {
        if toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Collect the maximal `a::b::C` path starting here.
        let mut path = vec![toks[i].text.clone()];
        let mut j = i + 1;
        while j + 2 < e
            && toks[j].is_punct(':')
            && toks[j + 1].is_punct(':')
            && toks[j + 2].kind == TokKind::Ident
        {
            path.push(toks[j + 2].text.clone());
            j += 3;
        }
        i = j;
        let atomicish = path
            .iter()
            .any(|seg| seg.starts_with("Atomic") || seg == "atomic");
        saw_atomic_ident |= atomicish;
        let full: Option<Vec<String>> = if path.len() > 1 {
            match path[0].as_str() {
                "crate" | "super" | "self" => None,
                _ => Some(path.clone()),
            }
        } else {
            graph.imports[fi].get(&path[0]).cloned()
        };
        let Some(full) = full else { continue };
        let root = full[0].as_str();
        let full_atomicish = atomicish
            || full
                .iter()
                .any(|seg| seg.starts_with("Atomic") || seg == "atomic");
        let approved =
            root == "std" || root == "core" || cfg.sync_wrappers.iter().any(|w| w == root);
        if full_atomicish {
            saw_atomic_ident = true;
            if approved {
                return; // sound: an atomic the lint models
            }
            bad_path = Some(full);
        }
    }
    let (line, col) = loc(toks, field_tok);
    let field = &toks[field_tok].text;
    let message = match bad_path {
        Some(p) => format!(
            "publication atomic `{field}` is typed via `{}` — L013's ordering analysis only \
             models std::sync::atomic and the facade crates {:?}; route it through the facade",
            p.join("::"),
            cfg.sync_wrappers,
        ),
        None if !saw_atomic_ident => format!(
            "field `{field}` is named like a publication atomic but its type names no atomic — \
             L013's Release/Acquire pairing silently stops applying; rename the field or use an \
             atomic from {:?}",
            cfg.sync_wrappers,
        ),
        None => return, // atomic-looking but unresolvable: give it the benefit of the doubt
    };
    out.push(Violation {
        lint: "L013",
        file: file.ctx.path.clone(),
        line,
        col,
        message,
        related: Vec::new(),
    });
}

// ---------------------------------------------------------------------------
// L014 — epoch discipline.
// ---------------------------------------------------------------------------

/// Call targets for the L014 reachability BFS. Reachability is a
/// may-analysis, so unlike [`ItemGraph::resolve_call`] (which drops
/// ambiguous calls), method calls fan out to **every** same-name
/// candidate: `self.db.run_query(…)` from `Snapshot` must reach
/// `Database::run_query` even though four types define the name.
fn reach_targets(graph: &ItemGraph, f: &FnNode, call: &crate::graph::Call) -> Vec<usize> {
    if call.method {
        if crate::graph::untracked_method(&call.name) {
            return Vec::new();
        }
        return graph
            .methods_by_name
            .get(&call.name)
            .cloned()
            .unwrap_or_default();
    }
    graph.resolve_call(f, call).into_iter().collect()
}

fn lint_l014(graph: &ItemGraph, cfg: &Config, out: &mut Vec<Violation>) {
    // BFS from serving roots over resolved calls, with parent pointers for
    // the witness chain.
    let mut parent: BTreeMap<usize, (usize, usize)> = BTreeMap::new(); // fn → (caller fn, call tok)
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if skip_fn(f, cfg) {
            continue;
        }
        let is_root = f
            .self_ty
            .as_deref()
            .map(|ty| cfg.serving_types.iter().any(|s| s == ty))
            .unwrap_or(false);
        if is_root && reachable.insert(idx) {
            queue.push_back(idx);
        }
    }
    while let Some(idx) = queue.pop_front() {
        let f = &graph.fns[idx];
        for call in &f.calls {
            for target in reach_targets(graph, f, call) {
                if !skip_fn(&graph.fns[target], cfg) && reachable.insert(target) {
                    parent.insert(target, (idx, call.tok));
                    queue.push_back(target);
                }
            }
        }
    }
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for &idx in &reachable {
        let f = &graph.fns[idx];
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        for i in open + 1..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !cfg.unpinned_cache_calls.iter().any(|c| c == &t.text)
                || !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                || i == 0
                || !toks[i - 1].is_punct('.')
            {
                continue;
            }
            let chain = receiver_chain(toks, i - 1);
            let on_cache = chain
                .last()
                .map(|seg| cfg.cache_receivers.iter().any(|c| c == seg))
                .unwrap_or(false);
            if !on_cache {
                continue;
            }
            if !seen.insert((file.ctx.path.clone(), i)) {
                continue;
            }
            // Witness: walk parent pointers back to the serving root.
            let mut chain_rel = Vec::new();
            let mut cur = idx;
            while let Some(&(p, call_tok)) = parent.get(&cur) {
                let pf = &graph.fns[p];
                let ptoks = &graph.files[pf.file].toks;
                chain_rel.push(related(
                    ptoks,
                    &graph.files[pf.file].ctx.path,
                    call_tok,
                    format!("reached via call in `{}`", fn_label(pf)),
                ));
                cur = p;
            }
            chain_rel.reverse(); // root-first
            let (line, col) = loc(toks, i);
            let root = graph.fns[cur_root(&parent, idx)].self_ty.clone();
            out.push(Violation {
                lint: "L014",
                file: file.ctx.path.clone(),
                line,
                col,
                message: format!(
                    "unpinned cache `{}` on a serving path ({}::*) — use `{}_at` with the snapshot's pinned epochs",
                    t.text,
                    root.unwrap_or_else(|| "serving".into()),
                    t.text
                ),
                related: chain_rel,
            });
        }
    }
    out.sort_by_key(|v| (v.file.clone(), v.line, v.col));
}

fn fn_label(f: &FnNode) -> String {
    match &f.self_ty {
        Some(ty) => format!("{}::{}", ty, f.name),
        None => f.name.clone(),
    }
}

/// Walk parent pointers to the BFS root of `idx`.
fn cur_root(parent: &BTreeMap<usize, (usize, usize)>, idx: usize) -> usize {
    let mut cur = idx;
    while let Some(&(p, _)) = parent.get(&cur) {
        cur = p;
    }
    cur
}
