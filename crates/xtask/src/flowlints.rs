//! The dataflow lint catalog (L012–L014) over per-function CFGs.
//!
//! | lint | rule |
//! |------|------|
//! | L012 | encoded-id values (from `taint_sources` calls) must pass a `taint_sanitizers` decode boundary before reaching base-space sinks (`taint_sinks` calls, `taint_sink_types` struct literals) |
//! | L013 | publication atomics (`publication_atomics` fields) pair Release stores with Acquire loads; no Relaxed on the publication path; the Release store is the last write (no `publication_slots` write after it) |
//! | L014 | unpinned cache calls (`unpinned_cache_calls` on `cache_receivers`) are banned in functions reachable from `serving_types` methods — use the `_at` epoch-pinned variants |
//!
//! Findings carry their **witness** as related locations: L012 attaches
//! the def-use chain from the source call through every binding to the
//! sink, L013 the paired store site, L014 the call chain from the serving
//! root. `#[cfg(test)]` functions are exempt, matching the other lints.

use crate::cfg::Cfg;
use crate::config::Config;
use crate::dataflow::{build_cfgs, compute_carriers, name_matches, solve, Taint, TaintAnalysis};
use crate::graph::{FnNode, ItemGraph};
use crate::items::{matching, receiver_chain};
use crate::lexer::{Tok, TokKind};
use crate::lints::{Related, Violation};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Run L012–L014 over the whole graph.
pub fn flow_lints(graph: &ItemGraph, cfg: &Config) -> Vec<Violation> {
    let cfgs = build_cfgs(graph);
    let carriers = compute_carriers(graph, &cfgs, &cfg.taint_sources, &cfg.taint_sanitizers);
    let mut out = Vec::new();
    lint_l012(graph, &cfgs, &carriers, cfg, &mut out);
    lint_l013(graph, &cfgs, cfg, &mut out);
    lint_l014(graph, cfg, &mut out);
    out
}

fn loc(toks: &[Tok], i: usize) -> (u32, u32) {
    toks.get(i).map(|t| (t.line, t.col)).unwrap_or((0, 0))
}

fn related(toks: &[Tok], file: &str, i: usize, msg: impl Into<String>) -> Related {
    let (line, col) = loc(toks, i);
    Related {
        file: file.to_string(),
        line,
        col,
        message: msg.into(),
    }
}

// ---------------------------------------------------------------------------
// L012 — id-space taint.
// ---------------------------------------------------------------------------

/// The witness chain for a taint reaching a sink: source, each binding
/// step, then the sink itself.
fn taint_witness(toks: &[Tok], file: &str, taint: &Taint, sink: usize) -> Vec<Related> {
    let mut out = Vec::new();
    out.push(related(
        toks,
        file,
        taint.src,
        format!(
            "encoded-space value originates here (`{}`)",
            toks[taint.src].text
        ),
    ));
    for &step in &taint.steps {
        out.push(related(
            toks,
            file,
            step,
            format!("flows through binding `{}`", toks[step].text),
        ));
    }
    out.push(related(toks, file, sink, "reaches base-space sink here"));
    out
}

fn lint_l012(
    graph: &ItemGraph,
    cfgs: &[Option<Cfg>],
    carriers: &BTreeSet<usize>,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.cfg_test {
            continue;
        }
        let Some(fcfg) = cfgs[idx].as_ref() else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let ta = TaintAnalysis {
            cfg: fcfg,
            toks,
            graph,
            caller: f,
            sources: &cfg.taint_sources,
            sanitizers: &cfg.taint_sanitizers,
            carriers,
        };
        let facts = solve(fcfg, &ta);
        for (b, block) in fcfg.blocks.iter().enumerate() {
            let mut env = facts[b].clone();
            for &(s, e) in &block.stmts {
                check_sinks_in_stmt(&ta, s, e, &env, cfg, &file.ctx.path, &mut seen, out);
                ta.stmt_transfer(s, e, &mut env);
            }
        }
    }
    out.sort_by_key(|v| (v.file.clone(), v.line, v.col));
}

/// Scan the statement `[s, e)` for sink calls and sink struct literals fed
/// by tainted values, under environment `env`.
#[allow(clippy::too_many_arguments)]
fn check_sinks_in_stmt(
    ta: &TaintAnalysis<'_>,
    s: usize,
    e: usize,
    env: &BTreeMap<String, Taint>,
    cfg: &Config,
    file: &str,
    seen: &mut BTreeSet<(String, usize)>,
    out: &mut Vec<Violation>,
) {
    let toks = ta.toks;
    let e = e.min(toks.len());
    for i in s..e {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Sink call: `from_parts(args…)`.
        let is_call = toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if is_call && cfg.taint_sinks.iter().any(|p| name_matches(p, &t.text)) {
            let close = matching(toks, i + 1, '(', ')').unwrap_or(e).min(e);
            if let Some(taint) = ta.expr_taint(i + 2, close, env) {
                if seen.insert((file.to_string(), i)) {
                    let (line, col) = loc(toks, i);
                    out.push(Violation {
                        lint: "L012",
                        file: file.to_string(),
                        line,
                        col,
                        message: format!(
                            "encoded-space value reaches base-space sink `{}` without a decode boundary",
                            t.text
                        ),
                        related: taint_witness(toks, file, &taint, i),
                    });
                }
            }
            continue;
        }
        // Sink struct literal: `QueryAnswer { field: value, … }`.
        let is_lit = toks.get(i + 1).map(|n| n.is_punct('{')).unwrap_or(false);
        if is_lit && cfg.taint_sink_types.iter().any(|ty| ty == &t.text) {
            let close = matching(toks, i + 1, '{', '}').unwrap_or(e).min(e);
            if let Some(taint) = ta.expr_taint(i + 2, close, env) {
                if seen.insert((file.to_string(), i)) {
                    let (line, col) = loc(toks, i);
                    out.push(Violation {
                        lint: "L012",
                        file: file.to_string(),
                        line,
                        col,
                        message: format!(
                            "encoded-space value stored into base-space `{}` without a decode boundary",
                            t.text
                        ),
                        related: taint_witness(toks, file, &taint, i),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L013 — atomics-ordering protocol.
// ---------------------------------------------------------------------------

const ATOMIC_RMW: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// The `Ordering::X` arguments inside a call's parens, in order.
fn orderings_in(toks: &[Tok], open: usize, close: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, t) in toks
        .iter()
        .enumerate()
        .take(close.min(toks.len()))
        .skip(open + 1)
    {
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            )
        {
            out.push((t.text.clone(), i));
        }
    }
    out
}

/// Is this `.method(` call's receiver one of the configured publication
/// atomics (`self.version.store(…)`, `published_seq.load(…)`)?
fn publication_receiver(toks: &[Tok], name_tok: usize, cfg: &Config) -> bool {
    if name_tok == 0 || !toks[name_tok - 1].is_punct('.') {
        return false;
    }
    let chain = receiver_chain(toks, name_tok - 1);
    chain
        .last()
        .map(|seg| cfg.publication_atomics.iter().any(|a| a == seg))
        .unwrap_or(false)
}

fn lint_l013(graph: &ItemGraph, cfgs: &[Option<Cfg>], cfg: &Config, out: &mut Vec<Violation>) {
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.cfg_test {
            continue;
        }
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let path = &file.ctx.path;
        let mut release_stores: Vec<usize> = Vec::new();
        for i in open + 1..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                || !publication_receiver(toks, i, cfg)
            {
                continue;
            }
            let call_close = matching(toks, i + 1, '(', ')').unwrap_or(close).min(close);
            let ords = orderings_in(toks, i + 1, call_close);
            let (line, col) = loc(toks, i);
            match t.text.as_str() {
                "store" => match ords.first().map(|(o, _)| o.as_str()) {
                    Some("Release") | Some("SeqCst") => release_stores.push(i),
                    Some(other) => out.push(Violation {
                        lint: "L013",
                        file: path.clone(),
                        line,
                        col,
                        message: format!(
                            "publication store must use Ordering::Release (or SeqCst), got {other}"
                        ),
                        related: Vec::new(),
                    }),
                    None => {}
                },
                "load" => {
                    if let Some((o, _)) = ords.first() {
                        if o != "Acquire" && o != "SeqCst" {
                            out.push(Violation {
                                lint: "L013",
                                file: path.clone(),
                                line,
                                col,
                                message: format!(
                                    "publication load must use Ordering::Acquire (or SeqCst), got {o}"
                                ),
                                related: Vec::new(),
                            });
                        }
                    }
                }
                m if ATOMIC_RMW.contains(&m) => {
                    if let Some((o, oi)) = ords.iter().find(|(o, _)| o == "Relaxed") {
                        let _ = oi;
                        out.push(Violation {
                            lint: "L013",
                            file: path.clone(),
                            line,
                            col,
                            message: format!(
                                "read-modify-write on a publication atomic must not use Ordering::{o}"
                            ),
                            related: Vec::new(),
                        });
                    }
                }
                _ => {}
            }
        }
        // CFG check: the Release store must be the last write — flag any
        // write to a configured publication slot that can execute after
        // it. Only forward edges are followed: a loop's next iteration
        // legitimately re-fills the slot before its *own* store.
        if release_stores.is_empty() {
            continue;
        }
        let Some(fcfg) = cfgs[idx].as_ref() else {
            continue;
        };
        for &store_tok in &release_stores {
            let Some((sb, si)) = find_stmt(fcfg, store_tok) else {
                continue;
            };
            let mut flagged: Vec<usize> = Vec::new();
            // Rest of the store's own block.
            for &(s, e) in fcfg.blocks[sb].stmts.iter().skip(si + 1) {
                if let Some(w) = slot_write(toks, s, e, cfg) {
                    flagged.push(w);
                }
            }
            // Forward-reachable blocks.
            let mut queue: VecDeque<usize> = fcfg.blocks[sb]
                .succs
                .iter()
                .copied()
                .filter(|&s| s > sb && s != fcfg.exit)
                .collect();
            let mut seen: BTreeSet<usize> = queue.iter().copied().collect();
            while let Some(b) = queue.pop_front() {
                for &(s, e) in &fcfg.blocks[b].stmts {
                    if let Some(w) = slot_write(toks, s, e, cfg) {
                        flagged.push(w);
                    }
                }
                for &s in &fcfg.blocks[b].succs {
                    if s > b && s != fcfg.exit && seen.insert(s) {
                        queue.push_back(s);
                    }
                }
            }
            flagged.sort_unstable();
            flagged.dedup();
            for w in flagged {
                let (line, col) = loc(toks, w);
                out.push(Violation {
                    lint: "L013",
                    file: path.clone(),
                    line,
                    col,
                    message: "publication slot written after the Release store — the store must be the last write of the publish path".to_string(),
                    related: vec![related(
                        toks,
                        path,
                        store_tok,
                        "Release store published here",
                    )],
                });
            }
        }
    }
    out.sort_by_key(|v| (v.file.clone(), v.line, v.col));
}

/// The (block, stmt-index) containing token `tok`.
fn find_stmt(cfg: &Cfg, tok: usize) -> Option<(usize, usize)> {
    for (b, block) in cfg.blocks.iter().enumerate() {
        for (i, &(s, e)) in block.stmts.iter().enumerate() {
            if s <= tok && tok < e {
                return Some((b, i));
            }
        }
    }
    None
}

/// If the statement `[s, e)` writes a configured publication slot
/// (`*slot = …`, `self.slot = …`), the token index of the slot ident.
fn slot_write(toks: &[Tok], s: usize, e: usize, cfg: &Config) -> Option<usize> {
    let e = e.min(toks.len());
    if s >= e || toks[s].is_ident("let") {
        return None;
    }
    let eq = crate::dataflow::plain_eq(toks, s, e)?;
    (s..eq).find(|&i| {
        toks[i].kind == TokKind::Ident && cfg.publication_slots.iter().any(|p| p == &toks[i].text)
    })
}

// ---------------------------------------------------------------------------
// L014 — epoch discipline.
// ---------------------------------------------------------------------------

/// Call targets for the L014 reachability BFS. Reachability is a
/// may-analysis, so unlike [`ItemGraph::resolve_call`] (which drops
/// ambiguous calls), method calls fan out to **every** same-name
/// candidate: `self.db.run_query(…)` from `Snapshot` must reach
/// `Database::run_query` even though four types define the name.
fn reach_targets(graph: &ItemGraph, f: &FnNode, call: &crate::graph::Call) -> Vec<usize> {
    if call.method {
        if crate::graph::untracked_method(&call.name) {
            return Vec::new();
        }
        return graph
            .methods_by_name
            .get(&call.name)
            .cloned()
            .unwrap_or_default();
    }
    graph.resolve_call(f, call).into_iter().collect()
}

fn lint_l014(graph: &ItemGraph, cfg: &Config, out: &mut Vec<Violation>) {
    // BFS from serving roots over resolved calls, with parent pointers for
    // the witness chain.
    let mut parent: BTreeMap<usize, (usize, usize)> = BTreeMap::new(); // fn → (caller fn, call tok)
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.cfg_test {
            continue;
        }
        let is_root = f
            .self_ty
            .as_deref()
            .map(|ty| cfg.serving_types.iter().any(|s| s == ty))
            .unwrap_or(false);
        if is_root && reachable.insert(idx) {
            queue.push_back(idx);
        }
    }
    while let Some(idx) = queue.pop_front() {
        let f = &graph.fns[idx];
        for call in &f.calls {
            for target in reach_targets(graph, f, call) {
                if !graph.fns[target].cfg_test && reachable.insert(target) {
                    parent.insert(target, (idx, call.tok));
                    queue.push_back(target);
                }
            }
        }
    }
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for &idx in &reachable {
        let f = &graph.fns[idx];
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        for i in open + 1..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !cfg.unpinned_cache_calls.iter().any(|c| c == &t.text)
                || !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                || i == 0
                || !toks[i - 1].is_punct('.')
            {
                continue;
            }
            let chain = receiver_chain(toks, i - 1);
            let on_cache = chain
                .last()
                .map(|seg| cfg.cache_receivers.iter().any(|c| c == seg))
                .unwrap_or(false);
            if !on_cache {
                continue;
            }
            if !seen.insert((file.ctx.path.clone(), i)) {
                continue;
            }
            // Witness: walk parent pointers back to the serving root.
            let mut chain_rel = Vec::new();
            let mut cur = idx;
            while let Some(&(p, call_tok)) = parent.get(&cur) {
                let pf = &graph.fns[p];
                let ptoks = &graph.files[pf.file].toks;
                chain_rel.push(related(
                    ptoks,
                    &graph.files[pf.file].ctx.path,
                    call_tok,
                    format!("reached via call in `{}`", fn_label(pf)),
                ));
                cur = p;
            }
            chain_rel.reverse(); // root-first
            let (line, col) = loc(toks, i);
            let root = graph.fns[cur_root(&parent, idx)].self_ty.clone();
            out.push(Violation {
                lint: "L014",
                file: file.ctx.path.clone(),
                line,
                col,
                message: format!(
                    "unpinned cache `{}` on a serving path ({}::*) — use `{}_at` with the snapshot's pinned epochs",
                    t.text,
                    root.unwrap_or_else(|| "serving".into()),
                    t.text
                ),
                related: chain_rel,
            });
        }
    }
    out.sort_by_key(|v| (v.file.clone(), v.line, v.col));
}

fn fn_label(f: &FnNode) -> String {
    match &f.self_ty {
        Some(ty) => format!("{}::{}", ty, f.name),
        None => f.name.clone(),
    }
}

/// Walk parent pointers to the BFS root of `idx`.
fn cur_root(parent: &BTreeMap<usize, (usize, usize)>, idx: usize) -> usize {
    let mut cur = idx;
    while let Some(&(p, _)) = parent.get(&cur) {
        cur = p;
    }
    cur
}
