//! `cargo xtask lint --fix` — the mechanical subset of the catalog.
//!
//! Only findings with one unambiguous textual repair are auto-fixed:
//!
//! * L009 `let _ = x.span(…)` → rename the binding to `_span` so the guard
//!   lives to end of scope.
//! * L009 `x.span(…);` in statement position → prepend `let _span = `.
//! * L011 missing `#![forbid(unsafe_code)]` → insert the attribute after
//!   the crate's leading `//!` doc block.
//!
//! Everything else (lock-order cycles, error-mapping, blocking calls)
//! needs a human decision and is deliberately left alone.

use crate::lints::Violation;

/// Apply every mechanical fix for `file`'s findings to `src`. Returns the
/// new text and how many fixes were applied; `None` when nothing applies.
pub fn apply_fixes(src: &str, violations: &[Violation]) -> Option<(String, usize)> {
    // Line-local edits applied bottom-up so earlier line/col stay valid.
    let mut edits: Vec<&Violation> = violations.iter().filter(|v| fixable(v)).collect();
    if edits.is_empty() {
        return None;
    }
    edits.sort_by_key(|v| (v.line, v.col));
    edits.reverse();

    let mut lines: Vec<String> = src.lines().map(String::from).collect();
    let mut applied = 0usize;
    let mut add_forbid = false;
    for v in edits {
        if v.lint == "L011" {
            add_forbid = true;
            applied += 1;
            continue;
        }
        let Some(line) = lines.get_mut(v.line as usize - 1) else {
            continue;
        };
        let col = v.col as usize - 1;
        if v.message.contains("bound to `_`") {
            // The finding points at the `_` token.
            if let Some(rest) = char_suffix(line, col) {
                if rest.starts_with('_') && !rest.starts_with("_s") {
                    let byte = line.len() - rest.len();
                    line.replace_range(byte..byte + 1, "_span");
                    applied += 1;
                }
            }
        } else if v.message.contains("statement position") {
            // The finding points at the statement's first token.
            if let Some(rest) = char_suffix(line, col) {
                let byte = line.len() - rest.len();
                line.insert_str(byte, "let _span = ");
                applied += 1;
            }
        }
    }
    if add_forbid {
        let at = insert_point(&lines);
        lines.insert(at, "#![forbid(unsafe_code)]".to_string());
        if lines.len() > at + 1 && !lines[at + 1].trim().is_empty() {
            lines.insert(at + 1, String::new());
        }
    }
    if applied == 0 {
        return None;
    }
    let mut text = lines.join("\n");
    if src.ends_with('\n') {
        text.push('\n');
    }
    Some((text, applied))
}

fn fixable(v: &Violation) -> bool {
    match v.lint {
        "L009" => v.message.contains("bound to `_`") || v.message.contains("statement position"),
        "L011" => v.message.contains("missing"),
        _ => false,
    }
}

/// The substring of `line` starting at 0-based *character* `col`.
fn char_suffix(line: &str, col: usize) -> Option<&str> {
    let byte = line.char_indices().nth(col).map(|(b, _)| b)?;
    Some(&line[byte..])
}

/// Line index after the crate's leading `//!` doc block (and the blank
/// line that usually follows it) — where an inner attribute belongs.
fn insert_point(lines: &[String]) -> usize {
    let mut i = 0;
    while i < lines.len() && lines[i].trim_start().starts_with("//!") {
        i += 1;
    }
    while i < lines.len() && lines[i].trim().is_empty() {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lint: &'static str, line: u32, col: u32, message: &str) -> Violation {
        Violation {
            related: Vec::new(),
            lint,
            file: "f.rs".to_string(),
            line,
            col,
            message: message.to_string(),
        }
    }

    #[test]
    fn renames_underscore_span_bindings() {
        let src = "fn f(o: &Obs) {\n    let _ = o.span(\"q\");\n}\n";
        let (fixed, n) =
            apply_fixes(src, &[v("L009", 2, 9, "span guard bound to `_` — x")]).unwrap();
        assert_eq!(n, 1);
        assert!(fixed.contains("let _span = o.span(\"q\");"), "{fixed}");
    }

    #[test]
    fn binds_statement_position_spans() {
        let src = "fn f(o: &Obs) {\n    o.span(\"q\");\n}\n";
        let (fixed, n) = apply_fixes(
            src,
            &[v("L009", 2, 5, "span opened in statement position — x")],
        )
        .unwrap();
        assert_eq!(n, 1);
        assert!(fixed.contains("let _span = o.span(\"q\");"), "{fixed}");
    }

    #[test]
    fn inserts_forbid_after_doc_block() {
        let src = "//! Crate docs.\n\npub fn f() {}\n";
        let (fixed, _) = apply_fixes(src, &[v("L011", 1, 1, "crate `x` is missing y")]).unwrap();
        assert_eq!(
            fixed,
            "//! Crate docs.\n\n#![forbid(unsafe_code)]\n\npub fn f() {}\n"
        );
    }
}
