//! The semantic lint catalog (L007–L011, plus L015) over the item graph.
//!
//! | lint | rule |
//! |------|------|
//! | L007 | the lock acquisition-order graph must be acyclic (deadlock freedom) |
//! | L008 | `?` crossing a crate boundary must map into the receiving crate's error enum; no `Box<dyn Error>` in public signatures |
//! | L009 | every `Obs` span / stopwatch must be held in a binding that reaches end of scope — no `let _ =`, statement-position drops, `mem::forget` leaks or unread stopwatches |
//! | L010 | no blocking calls (`thread::sleep`, filesystem / network I/O) inside spawned worker closures; no sleeps while a span guard is live |
//! | L011 | every library crate carries `#![forbid(unsafe_code)]`, and no scanned file bypasses it |
//! | L015 | crates in `sync_scope_crates` must not name raw sync primitives (`raw_sync_paths`) — everything goes through the `rdfref_sync` facade so model-check builds can instrument it |
//!
//! Test-only code (`#[cfg(test)]`, `mod tests`) is exempt throughout, as
//! for the token lints. All rules resolve names through
//! [`ItemGraph`](crate::graph::ItemGraph) and stay silent on anything the
//! conservative resolver cannot pin down — a finding is always backed by a
//! positively-resolved structure, never a guess.

use crate::config::Config;
use crate::graph::{Call, ItemGraph};
use crate::items::{matching, stmt_end, stmt_start, Item};
use crate::lexer::{Tok, TokKind};
use crate::lints::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// Run L007–L011 over the whole graph.
pub fn semantic_lints(graph: &ItemGraph, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    lint_l007(graph, &mut out);
    lint_l008(graph, &mut out);
    lint_l009(graph, &mut out);
    lint_l010(graph, &mut out);
    lint_l011(graph, cfg, &mut out);
    lint_l015(graph, cfg, &mut out);
    out
}

/// Drop L001 findings on `.expect(…)` calls whose receiver resolves to a
/// *domain* method named `expect` — e.g. the obs JSON parser's
/// `self.expect(b'"')` — rather than `Option::expect`/`Result::expect`.
/// Token-level L001 cannot see the receiver type; the item graph can.
pub fn refine_l001(graph: &ItemGraph, findings: Vec<Violation>) -> Vec<Violation> {
    findings
        .into_iter()
        .filter(|v| !is_domain_expect(graph, v))
        .collect()
}

fn is_domain_expect(graph: &ItemGraph, v: &Violation) -> bool {
    if v.lint != "L001" || !v.message.contains(".expect()") {
        return false;
    }
    let Some(fi) = graph.files.iter().position(|pf| pf.ctx.path == v.file) else {
        return false;
    };
    let toks = &graph.files[fi].toks;
    let Some(i) = toks
        .iter()
        .position(|t| t.line == v.line && t.col == v.col && t.is_ident("expect"))
    else {
        return false;
    };
    if i == 0 || !toks[i - 1].is_punct('.') {
        return false;
    }
    let chain = crate::items::receiver_chain(toks, i - 1);
    // Only a plain `self.expect(…)` is resolvable with confidence: the
    // enclosing impl type must itself define `expect`.
    if chain.as_slice() == ["self"] {
        if let Some(ty) = graph.impl_ty_at(fi, i) {
            return graph.type_has_method(&ty, "expect");
        }
    }
    false
}

// ---- L007: lock-order cycles ----------------------------------------------

#[derive(Debug, Clone)]
struct EdgeSite {
    file: String,
    line: u32,
    col: u32,
}

/// Build the acquisition-order graph — an edge `A → B` whenever a lock of
/// class `B` is acquired (directly, or transitively through a resolved
/// call) while a guard of class `A` is held — and report every cycle.
fn lint_l007(graph: &ItemGraph, out: &mut Vec<Violation>) {
    // class → class → first witness site (deterministic: fns in file order).
    let mut edges: BTreeMap<String, BTreeMap<String, EdgeSite>> = BTreeMap::new();
    for f in &graph.fns {
        if f.cfg_test {
            continue;
        }
        let toks = &graph.files[f.file].toks;
        let path = &graph.files[f.file].ctx.path;
        for acq in &f.locks {
            let held = acq.tok + 1..acq.hold_end;
            let mut add = |to: &str, at: &Tok| {
                edges
                    .entry(acq.class.clone())
                    .or_default()
                    .entry(to.to_string())
                    .or_insert_with(|| EdgeSite {
                        file: path.clone(),
                        line: at.line,
                        col: at.col,
                    });
            };
            for other in &f.locks {
                if held.contains(&other.tok) {
                    add(&other.class, &toks[other.tok]);
                }
            }
            for call in &f.calls {
                if !held.contains(&call.tok) {
                    continue;
                }
                if let Some(t) = graph.resolve_call(f, call) {
                    for cls in graph.transitive_locks(t) {
                        add(cls, &toks[call.tok]);
                    }
                }
            }
        }
    }

    // Strongly connected components over the class graph; every SCC with a
    // cycle (size > 1, or a self-loop) is a deadlock hazard.
    let nodes: Vec<&String> = edges.keys().collect();
    let index: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            edges[*n]
                .keys()
                .filter_map(|t| index.get(t).copied())
                .collect()
        })
        .collect();
    for scc in tarjan_sccs(&adj) {
        let classes: Vec<&String> = {
            let mut c: Vec<&String> = scc.iter().map(|&i| nodes[i]).collect();
            c.sort();
            c
        };
        let cyclic = scc.len() > 1 || edges[classes[0]].contains_key(classes[0].as_str());
        if !cyclic {
            continue;
        }
        // Witness: the lexicographically-first edge site inside the SCC.
        let member: BTreeSet<&String> = classes.iter().copied().collect();
        let witness = classes
            .iter()
            .flat_map(|from| {
                edges[from.as_str()]
                    .iter()
                    .map(move |(to, s)| (from, to, s))
            })
            .filter(|(_, to, _)| member.contains(to))
            .min_by_key(|(_, _, s)| (s.file.clone(), s.line, s.col))
            .map(|(_, _, s)| s.clone());
        let Some(site) = witness else { continue };
        let cycle = classes
            .iter()
            .map(|c| c.as_str())
            .collect::<Vec<_>>()
            .join(" → ");
        out.push(Violation { related: Vec::new(),
            lint: "L007",
            file: site.file,
            line: site.line,
            col: site.col,
            message: format!(
                "lock-order cycle: {cycle} — a thread holding one class can block on another holding the next; impose a single acquisition order or narrow the guard"
            ),
        });
    }
}

/// Iterative Tarjan SCC; returns components in a deterministic order.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next-child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().unwrap_or(v);
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

// ---- L008: cross-crate error discipline -----------------------------------

/// Chain adapters that consciously transform the error before `?`.
const ERR_ADAPTERS: &[&str] = &["map_err", "ok_or", "ok_or_else", "or_else"];

fn lint_l008(graph: &ItemGraph, out: &mut Vec<Violation>) {
    for f in &graph.fns {
        if f.cfg_test {
            continue;
        }
        let file = &graph.files[f.file];
        let toks = &file.toks;
        // Anonymous boxed errors in public signatures.
        if f.is_pub {
            let (po, pc) = f.sig.params;
            let (ro, rc) = f.sig.ret;
            for range in [po..pc + 1, ro..rc] {
                if let Some(at) = find_boxed_error(toks, range.start, range.end) {
                    out.push(Violation { related: Vec::new(),
                        lint: "L008",
                        file: file.ctx.path.clone(),
                        line: toks[at].line,
                        col: toks[at].col,
                        message: format!(
                            "pub fn {}: `Box<dyn Error>` erases the failure mode at a crate boundary — use the crate's error enum",
                            f.name
                        ),
                    });
                }
            }
        }
        // `?` discipline.
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let Some(local_err) = f.err_ty.clone() else {
            continue;
        };
        for i in open + 1..close {
            if !toks[i].is_punct('?') {
                continue;
            }
            let chain = question_chain(toks, i);
            if chain.is_empty() || chain.iter().any(|s| ERR_ADAPTERS.contains(&s.as_str())) {
                continue;
            }
            let name = chain[chain.len() - 1].clone();
            // `a.f(x)?` has a receiver in the chain; bare `f(x)?` is free.
            let method = chain.len() > 1;
            let qualifier = if method {
                None
            } else {
                free_call_qualifier(toks, i, &name)
            };
            let call = Call {
                name,
                tok: i,
                method,
                recv_self: chain.first().map(|s| s == "self").unwrap_or(false),
                qualifier,
            };
            let Some(t) = graph.resolve_call(f, &call) else {
                continue;
            };
            let callee = &graph.fns[t];
            if callee.krate == f.krate {
                continue;
            }
            let Some(callee_err) = callee.err_ty.clone() else {
                continue;
            };
            if callee_err == local_err {
                continue;
            }
            if graph
                .from_impls
                .contains(&(local_err.clone(), callee_err.clone()))
            {
                continue;
            }
            out.push(Violation { related: Vec::new(),
                lint: "L008",
                file: file.ctx.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "`?` maps {callee_err} (crate `{}`) into `{}`'s {local_err} with no `impl From<{callee_err}> for {local_err}` — add the From impl or map_err explicitly",
                    callee.krate, f.krate
                ),
            });
        }
    }
}

/// `Box < dyn … Error …` inside `[from, to)`; returns the `Box` index.
fn find_boxed_error(toks: &[Tok], from: usize, to: usize) -> Option<usize> {
    let to = to.min(toks.len());
    for i in from..to {
        if !toks[i].is_ident("Box") {
            continue;
        }
        if !toks.get(i + 1).map(|t| t.is_punct('<')).unwrap_or(false) {
            continue;
        }
        if !toks.get(i + 2).map(|t| t.is_ident("dyn")).unwrap_or(false) {
            continue;
        }
        let mut depth = 0i32;
        for (j, t) in toks.iter().enumerate().skip(i + 1).take(to - i) {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident if t.text.ends_with("Error") => return Some(i),
                _ => {
                    let _ = j;
                }
            }
        }
    }
    None
}

/// The method chain feeding a `?` at `q`, bottom-up — for
/// `self.eval.eval_ucq(x)?` this is `["self", "eval", "eval_ucq"]`.
/// Reuses the receiver-chain walker: a `?` sits where a `.` would.
fn question_chain(toks: &[Tok], q: usize) -> Vec<String> {
    crate::items::receiver_chain(toks, q)
}

/// For a free call `seg::name(…)?`, the path segment before `::`.
fn free_call_qualifier(toks: &[Tok], q: usize, name: &str) -> Option<String> {
    // Find the name token: walk back from `?` past the call's parens.
    let mut i = q;
    if i == 0 {
        return None;
    }
    i -= 1;
    if toks[i].is_punct(')') {
        let mut depth = 0i32;
        loop {
            if toks[i].is_punct(')') {
                depth += 1;
            } else if toks[i].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
    }
    if i == 0 || !toks[i - 1].is_ident(name) {
        return None;
    }
    let n = i - 1;
    if n >= 2 && toks[n - 1].is_punct(':') && toks[n - 2].is_punct(':') {
        return toks
            .get(n.wrapping_sub(3))
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
    }
    None
}

// ---- L009: span-guard hygiene ---------------------------------------------

fn lint_l009(graph: &ItemGraph, out: &mut Vec<Violation>) {
    for f in &graph.fns {
        if f.cfg_test {
            continue;
        }
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let path = &file.ctx.path;
        // Named span guards: (name, scope token range) for forget checks.
        let mut guards: Vec<(String, usize, usize)> = Vec::new();
        for i in open + 1..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let called = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
            if !called {
                continue;
            }
            if t.text == "span" {
                match binding_of(toks, i) {
                    Binding::Underscore(at) => out.push(Violation { related: Vec::new(),
                        lint: "L009",
                        file: path.clone(),
                        line: toks[at].line,
                        col: toks[at].col,
                        message: "span guard bound to `_` — it drops immediately and records a zero-length span; bind it to a named `_span` guard".to_string(),
                    }),
                    Binding::None(at) => out.push(Violation { related: Vec::new(),
                        lint: "L009",
                        file: path.clone(),
                        line: toks[at].line,
                        col: toks[at].col,
                        message: "span opened in statement position — the guard drops at the `;`; bind it (`let _span = …`) or use the span! macro".to_string(),
                    }),
                    Binding::Named(name) => {
                        let end = scope_close(toks, stmt_end(toks, i).min(close), close);
                        guards.push((name, i, end));
                    }
                    Binding::Consumed => {}
                }
            }
            if t.text == "stopwatch" {
                match binding_of(toks, i) {
                    Binding::Named(name) => {
                        let s_end = stmt_end(toks, i).min(close);
                        let end = scope_close(toks, s_end, close);
                        let read = (s_end..end).any(|k| {
                            toks[k].is_ident(&name)
                                && toks.get(k + 1).map(|n| n.is_punct('.')).unwrap_or(false)
                                && toks
                                    .get(k + 2)
                                    .map(|n| n.is_ident("elapsed"))
                                    .unwrap_or(false)
                        });
                        if !read {
                            out.push(Violation { related: Vec::new(),
                                lint: "L009",
                                file: path.clone(),
                                line: t.line,
                                col: t.col,
                                message: format!(
                                    "stopwatch `{name}` is started but `elapsed()` is never read in its scope — the measurement is stranded"
                                ),
                            });
                        }
                    }
                    Binding::Underscore(at) | Binding::None(at) => out.push(Violation {
                        related: Vec::new(),
                        lint: "L009",
                        file: path.clone(),
                        line: toks[at].line,
                        col: toks[at].col,
                        message: "stopwatch started without a binding — nothing can ever read it"
                            .to_string(),
                    }),
                    Binding::Consumed => {}
                }
            }
        }
        // A forgotten guard never records its span.
        for (name, _, end) in &guards {
            for k in open + 1..*end {
                if toks[k].is_ident("forget")
                    && toks.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                    && toks.get(k + 2).map(|n| n.is_ident(name)).unwrap_or(false)
                {
                    out.push(Violation {
                        related: Vec::new(),
                        lint: "L009",
                        file: path.clone(),
                        line: toks[k].line,
                        col: toks[k].col,
                        message: format!(
                            "span guard `{name}` leaked via mem::forget — the span never ends"
                        ),
                    });
                }
            }
        }
    }
}

/// How the value produced by the call at `i` is bound.
enum Binding {
    /// `let _ = …` — the token index of the `_`.
    Underscore(usize),
    /// Bare expression statement `…;` — the statement's first token.
    None(usize),
    /// `let name = …`.
    Named(String),
    /// Part of a larger expression (passed on, returned, assigned to a
    /// field, …) — someone else owns it.
    Consumed,
}

fn binding_of(toks: &[Tok], call: usize) -> Binding {
    let ss = stmt_start(toks, call);
    if toks.get(ss).map(|t| t.is_ident("let")).unwrap_or(false) {
        let mut j = ss + 1;
        if toks.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            return Binding::Consumed;
        };
        if name.text == "_" {
            return Binding::Underscore(j);
        }
        return Binding::Named(name.text.clone());
    }
    // Statement-position drop: the statement is exactly the receiver chain
    // plus the call — `obs.span("x");` / `self.obs.span("x");`.
    let Some(close) = matching(toks, call + 1, '(', ')') else {
        return Binding::Consumed;
    };
    let ends_stmt = toks
        .get(close + 1)
        .map(|t| t.is_punct(';'))
        .unwrap_or(false);
    if !ends_stmt {
        return Binding::Consumed;
    }
    // Everything from statement start to the call must be chain tokens.
    let chain_only = (ss..call)
        .all(|k| toks[k].kind == TokKind::Ident || toks[k].is_punct('.') || toks[k].is_punct('&'));
    if chain_only {
        return Binding::None(ss);
    }
    Binding::Consumed
}

/// First `}` after `from` that closes the enclosing scope (brace depth
/// goes negative), bounded by `limit`.
fn scope_close(toks: &[Tok], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(limit).skip(from) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    limit
}

// ---- L010: blocking calls in workers --------------------------------------

/// Identifiers that block the calling thread.
const BLOCKING_TYPES: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];

fn lint_l010(graph: &ItemGraph, out: &mut Vec<Violation>) {
    for f in &graph.fns {
        if f.cfg_test {
            continue;
        }
        let Some((open, close)) = f.sig.body else {
            continue;
        };
        let file = &graph.files[f.file];
        let toks = &file.toks;
        let path = &file.ctx.path;
        // Worker closures: arguments of `spawn(…)`.
        for i in open + 1..close {
            if !toks[i].is_ident("spawn")
                || !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            {
                continue;
            }
            let Some(args_close) = matching(toks, i + 1, '(', ')') else {
                continue;
            };
            if let Some((b0, b1)) = closure_body(toks, i + 2, args_close) {
                scan_blocking(toks, b0, b1, path, "a spawned worker closure", true, out);
            }
        }
        // Span bodies: the live range of a named span guard.
        for i in open + 1..close {
            if !(toks[i].is_ident("span")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false))
            {
                continue;
            }
            if let Binding::Named(_) = binding_of(toks, i) {
                let s_end = stmt_end(toks, i).min(close);
                let end = scope_close(toks, s_end, close);
                scan_blocking(
                    toks,
                    s_end,
                    end,
                    path,
                    "the body of an open span",
                    false,
                    out,
                );
            }
        }
    }
}

/// The `|…| body` inside `spawn(…)`'s arguments: token range of the body.
fn closure_body(toks: &[Tok], from: usize, to: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < to && !toks[i].is_punct('|') {
        i += 1;
    }
    if i >= to {
        return None;
    }
    // `||` (no params) lexes as two adjacent pipes.
    let params_close = if toks.get(i + 1).map(|t| t.is_punct('|')).unwrap_or(false) {
        i + 1
    } else {
        let mut j = i + 1;
        while j < to && !toks[j].is_punct('|') {
            j += 1;
        }
        j
    };
    Some((params_close + 1, to))
}

fn scan_blocking(
    toks: &[Tok],
    from: usize,
    to: usize,
    path: &str,
    where_: &str,
    io_too: bool,
    out: &mut Vec<Violation>,
) {
    let to = to.min(toks.len());
    for k in from..to {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| toks.get(k + 1).map(|n| n.is_punct(c)).unwrap_or(false);
        if t.text == "sleep" && next_is('(') {
            out.push(Violation { related: Vec::new(),
                lint: "L010",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("thread::sleep inside {where_} stalls the pipeline — remove it or move the wait outside"),
            });
            continue;
        }
        if !io_too {
            continue;
        }
        let blocking_io = (t.text == "fs" && next_is(':'))
            || (t.text == "File"
                && next_is(':')
                && toks
                    .get(k + 3)
                    .map(|n| n.is_ident("open") || n.is_ident("create"))
                    .unwrap_or(false))
            || BLOCKING_TYPES.contains(&t.text.as_str())
            || ((t.text == "stdin" || t.text == "stdout" || t.text == "stderr") && next_is('('));
        if blocking_io {
            out.push(Violation { related: Vec::new(),
                lint: "L010",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "blocking I/O (`{}`) inside {where_} — do the I/O outside the worker and pass data in",
                    t.text
                ),
            });
        }
    }
}

// ---- L011: forbid(unsafe_code) --------------------------------------------

fn lint_l011(graph: &ItemGraph, cfg: &Config, out: &mut Vec<Violation>) {
    // Which crates have their lib.rs in the scanned set?
    let mut lib_seen: BTreeMap<&str, bool> = BTreeMap::new();
    for pf in &graph.files {
        let krate = pf.ctx.crate_name.as_str();
        if !cfg.library_crates.iter().any(|c| c == krate) {
            continue;
        }
        let is_lib = pf.ctx.path.ends_with("src/lib.rs");
        if is_lib {
            let has_forbid = has_inner_forbid_unsafe(&pf.toks);
            lib_seen.insert(krate, true);
            if !has_forbid {
                out.push(Violation { related: Vec::new(),
                    lint: "L011",
                    file: pf.ctx.path.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "crate `{krate}` is missing `#![forbid(unsafe_code)]` — all library crates are unsafe-free by policy"
                    ),
                });
            }
        } else {
            lib_seen.entry(krate).or_insert(false);
        }
        // Bypasses anywhere in the crate: the `unsafe` keyword, or an
        // attribute re-allowing it, outside test code.
        let mask = test_mask(&pf.toks, &pf.items);
        for (i, t) in pf.toks.iter().enumerate() {
            if mask[i] {
                continue;
            }
            if t.is_ident("unsafe") {
                out.push(Violation { related: Vec::new(),
                    lint: "L011",
                    file: pf.ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`unsafe` in a forbid(unsafe_code) workspace — justify and isolate it, or remove it".to_string(),
                });
            }
            if t.is_ident("allow")
                && pf.toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                && pf
                    .toks
                    .get(i + 2)
                    .map(|n| n.is_ident("unsafe_code"))
                    .unwrap_or(false)
            {
                out.push(Violation {
                    related: Vec::new(),
                    lint: "L011",
                    file: pf.ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`allow(unsafe_code)` bypasses the workspace forbid — remove it"
                        .to_string(),
                });
            }
        }
    }
}

/// Is `#![forbid(unsafe_code)]` among the file's inner attributes?
fn has_inner_forbid_unsafe(toks: &[Tok]) -> bool {
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct('#') && toks[i + 1].is_punct('!')) {
            // Inner attributes must precede items; stop at the first
            // non-inner-attribute token.
            if toks[i].is_punct('#') {
                // Outer attribute: skip it and keep looking (attrs on the
                // first item may precede nothing relevant, but an inner
                // attr can no longer follow).
                return false;
            }
            return false;
        }
        let Some(close) = matching(toks, i + 2, '[', ']') else {
            return false;
        };
        let attr = &toks[i + 3..close];
        if attr.first().map(|t| t.is_ident("forbid")).unwrap_or(false)
            && attr.iter().any(|t| t.is_ident("unsafe_code"))
        {
            return true;
        }
        i = close + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// L015 — raw sync primitive outside the facade.
// ---------------------------------------------------------------------------

/// The model checker can only explore schedules of code whose sync ops go
/// through `rdfref_sync` — a raw `std::sync` / `std::thread` /
/// `parking_lot` path in a facade-scoped crate is a hole in the checker's
/// coverage. One finding per path occurrence; test code is exempt (tests
/// never run under the scheduler).
fn lint_l015(graph: &ItemGraph, cfg: &Config, out: &mut Vec<Violation>) {
    let facade = cfg
        .sync_wrappers
        .first()
        .map(String::as_str)
        .unwrap_or("rdfref_sync");
    for pf in &graph.files {
        let krate = pf.ctx.crate_name.as_str();
        if !cfg.sync_scope_crates.iter().any(|c| c == krate) {
            continue;
        }
        let mask = test_mask(&pf.toks, &pf.items);
        let mut i = 0;
        while i < pf.toks.len() {
            if mask[i] || pf.toks[i].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let hit = cfg
                .raw_sync_paths
                .iter()
                .find_map(|pat| raw_path_at(&pf.toks, i, pat).map(|end| (pat, end)));
            let Some((pat, end)) = hit else {
                i += 1;
                continue;
            };
            let t = &pf.toks[i];
            out.push(Violation {
                lint: "L015",
                file: pf.ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "raw `{pat}` in facade-scoped crate `{krate}` — import it from `{facade}` so \
                     model-check builds can instrument it"
                ),
                related: Vec::new(),
            });
            i = end;
        }
    }
}

/// If the tokens at `i` spell the `::`-separated path `pat`, one past the
/// matched tokens. A single-segment pattern (`parking_lot`) must be used
/// as a path root (`parking_lot::…`) so a like-named local binding does
/// not fire.
fn raw_path_at(toks: &[Tok], i: usize, pat: &str) -> Option<usize> {
    // Not a path continuation: `foo::std::sync` is rooted elsewhere.
    if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        return None;
    }
    let mut j = i;
    for (k, seg) in pat.split("::").enumerate() {
        if k > 0 {
            if !(toks.get(j)?.is_punct(':') && toks.get(j + 1)?.is_punct(':')) {
                return None;
            }
            j += 2;
        }
        if !toks.get(j)?.is_ident(seg) {
            return None;
        }
        j += 1;
    }
    let used_as_root = toks.get(j).map(|t| t.is_punct(':')).unwrap_or(false)
        && toks.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false);
    if !pat.contains("::") && !used_as_root {
        return None;
    }
    Some(j)
}

/// Per-token test-exemption mask from the item tree (an item marked
/// `cfg_test` exempts its whole token range).
pub(crate) fn test_mask(toks: &[Tok], items: &[Item]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    fn mark(items: &[Item], mask: &mut [bool]) {
        for item in items {
            if item.cfg_test {
                let end = item.end.min(mask.len());
                for m in mask.iter_mut().take(end).skip(item.start) {
                    *m = true;
                }
            } else {
                mark(&item.children, mask);
            }
        }
    }
    mark(items, &mut mask);
    mask
}
