//! `lints.toml` — lint scoping and the per-lint allowlist.
//!
//! The build container has no crates.io access, so this is a hand-rolled
//! parser for the narrow TOML subset the config actually uses: top-level
//! `key = value` pairs (strings, integers, arrays of strings) and
//! `[[allow]]` array-of-tables entries. Anything else is a hard error —
//! a config typo must fail the lint run, not silently relax it.

use std::fmt;

/// One allowlist entry: `count` residual findings of `lint` in `file` are
/// tolerated. The count is exact — both regressions (more findings) and
/// stale entries (fewer findings) fail the run, so the allowlist can only
/// shrink by being edited consciously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint id (`L001`…`L006`).
    pub lint: String,
    /// Repo-relative file path, forward slashes.
    pub file: String,
    /// Exact number of findings tolerated.
    pub count: usize,
    /// Why these sites are acceptable.
    pub reason: String,
}

/// Parsed `lints.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Crate directory names under `crates/` scanned by the lints
    /// (`"rdfref"` means the workspace root package's `src/`).
    pub library_crates: Vec<String>,
    /// Crates whose public fns must return `Result` when fallible (L004).
    pub result_crates: Vec<String>,
    /// Path prefixes subject to the guard-across-call lint (L005).
    pub guard_paths: Vec<String>,
    /// Calls that must not happen while a lock guard is live (L005):
    /// `answer` (cache-shard deadlock against answering's own cache use)
    /// and `publish` (atomic snapshot publication must never be reached
    /// with a shard lock held, or readers can stall behind maintenance).
    pub guarded_calls: Vec<String>,
    /// Identifiers treated as heavy (graph/dictionary-like) by L006.
    pub heavy_idents: Vec<String>,
    /// Free functions that acquire and return a lock guard; calls to them
    /// count as lock acquisitions for L007 (class named by their first
    /// argument).
    pub lock_wrappers: Vec<String>,
    /// Call-name patterns (`encode_*` prefix wildcards allowed) whose
    /// return value lives in encoded id space (L012 taint sources).
    pub taint_sources: Vec<String>,
    /// Call-name patterns that translate encoded ids back to base space;
    /// an expression containing one is cleansed (L012 sanitizers).
    pub taint_sanitizers: Vec<String>,
    /// Call-name patterns that consume base-space ids (L012 sinks).
    pub taint_sinks: Vec<String>,
    /// Struct-literal type names that hold base-space ids (L012 sinks).
    pub taint_sink_types: Vec<String>,
    /// Field names of publication atomics: Release-store / Acquire-load
    /// protocol required (L013).
    pub publication_atomics: Vec<String>,
    /// Field names of the data slots a publication atomic guards; writing
    /// one after the Release store reorders the protocol (L013).
    pub publication_slots: Vec<String>,
    /// Impl self types whose methods are serving paths (L014 roots).
    pub serving_types: Vec<String>,
    /// Unpinned cache method names flagged on serving paths in favor of
    /// their `_at` epoch-pinned variants (L014).
    pub unpinned_cache_calls: Vec<String>,
    /// Receiver field names recognised as plan caches (L014).
    pub cache_receivers: Vec<String>,
    /// Crates (directory names) whose non-test code must route every sync
    /// primitive through the facade; raw `std::sync` / `std::thread` /
    /// `parking_lot` paths there are L015 findings.
    pub sync_scope_crates: Vec<String>,
    /// Path prefixes (`"std::sync"`, `"parking_lot"`, …) banned outside
    /// the facade in `sync_scope_crates` (L015).
    pub raw_sync_paths: Vec<String>,
    /// Facade crates whose atomics are std-equivalent: a publication
    /// atomic's field type must resolve to `std::sync::atomic` or one of
    /// these crates, or L013's Release/Acquire reasoning is unsound over it
    /// and the mismatch itself is reported.
    pub sync_wrappers: Vec<String>,
    /// Include `#[cfg(modelcheck_mutation = …)]` twins in the flow lints
    /// (L012–L014). Off by default — the twins are never compiled in normal
    /// builds; CI turns this on to prove the lints still catch the seeded
    /// bugs.
    pub include_mutation_cfg: bool,
    /// Residual findings tolerated per (lint, file).
    pub allow: Vec<AllowEntry>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            library_crates: [
                "rdf",
                "query",
                "obs",
                "storage",
                "reasoning",
                "datalog",
                "core",
                "datagen",
                "rdfref",
            ]
            .map(String::from)
            .to_vec(),
            result_crates: ["core", "storage", "reasoning", "datalog"]
                .map(String::from)
                .to_vec(),
            guard_paths: vec!["crates/core/src/".to_string()],
            guarded_calls: ["answer", "publish"].map(String::from).to_vec(),
            heavy_idents: ["graph", "dict", "dictionary"].map(String::from).to_vec(),
            lock_wrappers: vec!["lock_or_recover".to_string()],
            taint_sources: ["encode", "encode_*"].map(String::from).to_vec(),
            taint_sanitizers: ["decode", "decode_*", "map_values"]
                .map(String::from)
                .to_vec(),
            taint_sinks: vec!["from_parts".to_string()],
            taint_sink_types: vec!["QueryAnswer".to_string()],
            publication_atomics: ["version", "published_seq"].map(String::from).to_vec(),
            publication_slots: vec!["slot".to_string()],
            serving_types: ["Snapshot", "WriterCore", "ServingDatabase"]
                .map(String::from)
                .to_vec(),
            unpinned_cache_calls: ["lookup", "insert"].map(String::from).to_vec(),
            cache_receivers: ["cache", "plan_cache"].map(String::from).to_vec(),
            sync_scope_crates: ["core", "storage", "obs"].map(String::from).to_vec(),
            raw_sync_paths: ["std::sync", "std::thread", "parking_lot"]
                .map(String::from)
                .to_vec(),
            sync_wrappers: vec!["rdfref_sync".to_string()],
            include_mutation_cfg: false,
            allow: Vec::new(),
        }
    }
}

impl Config {
    /// Total number of residual sites the allowlist tolerates.
    pub fn allowed_sites(&self) -> usize {
        self.allow.iter().map(|a| a.count).sum()
    }
}

/// A config parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lints.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

enum Section {
    Top,
    Allow(usize), // index into cfg.allow
}

/// Parse the config text.
pub fn parse_config(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::Top;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            cfg.allow.push(AllowEntry {
                lint: String::new(),
                file: String::new(),
                count: 0,
                reason: String::new(),
            });
            section = Section::Allow(cfg.allow.len() - 1);
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!("unknown section {line}"),
            });
        }
        let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected key = value, got {line:?}"),
        })?;
        let (key, value) = (key.trim(), value.trim());
        match &section {
            Section::Top => match key {
                "library_crates" => cfg.library_crates = parse_string_array(value, lineno)?,
                "result_crates" => cfg.result_crates = parse_string_array(value, lineno)?,
                "guard_paths" => cfg.guard_paths = parse_string_array(value, lineno)?,
                "guarded_calls" => cfg.guarded_calls = parse_string_array(value, lineno)?,
                "heavy_idents" => cfg.heavy_idents = parse_string_array(value, lineno)?,
                "lock_wrappers" => cfg.lock_wrappers = parse_string_array(value, lineno)?,
                "taint_sources" => cfg.taint_sources = parse_string_array(value, lineno)?,
                "taint_sanitizers" => cfg.taint_sanitizers = parse_string_array(value, lineno)?,
                "taint_sinks" => cfg.taint_sinks = parse_string_array(value, lineno)?,
                "taint_sink_types" => cfg.taint_sink_types = parse_string_array(value, lineno)?,
                "publication_atomics" => {
                    cfg.publication_atomics = parse_string_array(value, lineno)?
                }
                "publication_slots" => cfg.publication_slots = parse_string_array(value, lineno)?,
                "serving_types" => cfg.serving_types = parse_string_array(value, lineno)?,
                "unpinned_cache_calls" => {
                    cfg.unpinned_cache_calls = parse_string_array(value, lineno)?
                }
                "cache_receivers" => cfg.cache_receivers = parse_string_array(value, lineno)?,
                "sync_scope_crates" => cfg.sync_scope_crates = parse_string_array(value, lineno)?,
                "raw_sync_paths" => cfg.raw_sync_paths = parse_string_array(value, lineno)?,
                "sync_wrappers" => cfg.sync_wrappers = parse_string_array(value, lineno)?,
                "include_mutation_cfg" => cfg.include_mutation_cfg = parse_bool(value, lineno)?,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key {key:?}"),
                    })
                }
            },
            Section::Allow(i) => {
                let entry = &mut cfg.allow[*i];
                match key {
                    "lint" => entry.lint = parse_string(value, lineno)?,
                    "file" => entry.file = parse_string(value, lineno)?,
                    "count" => {
                        entry.count = value.parse().map_err(|_| ConfigError {
                            line: lineno,
                            message: format!("count must be an integer, got {value:?}"),
                        })?
                    }
                    "reason" => entry.reason = parse_string(value, lineno)?,
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown allow key {key:?}"),
                        })
                    }
                }
            }
        }
    }
    for (i, a) in cfg.allow.iter().enumerate() {
        if a.lint.is_empty() || a.file.is_empty() || a.count == 0 {
            return Err(ConfigError {
                line: 0,
                message: format!(
                    "allow entry #{} must set lint, file and a count >= 1 (got {a:?})",
                    i + 1
                ),
            });
        }
    }
    Ok(cfg)
}

/// Render a config back to TOML (used by `--write-allowlist`).
pub fn render_config(cfg: &Config) -> String {
    let mut s = String::new();
    s.push_str("# Lint scoping and allowlist for `cargo xtask lint`.\n");
    s.push_str("# Allow entries are EXACT budgets: a run fails when a file has either\n");
    s.push_str("# more findings (regression) or fewer (stale entry — ratchet it down).\n");
    s.push_str("# Regenerate counts with `cargo xtask lint --write-allowlist`.\n\n");
    let arr = |items: &[String]| {
        items
            .iter()
            .map(|i| format!("{i:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    s.push_str(&format!(
        "library_crates = [{}]\n",
        arr(&cfg.library_crates)
    ));
    s.push_str(&format!("result_crates = [{}]\n", arr(&cfg.result_crates)));
    s.push_str(&format!("guard_paths = [{}]\n", arr(&cfg.guard_paths)));
    s.push_str(&format!("guarded_calls = [{}]\n", arr(&cfg.guarded_calls)));
    s.push_str(&format!("heavy_idents = [{}]\n", arr(&cfg.heavy_idents)));
    s.push_str(&format!("lock_wrappers = [{}]\n", arr(&cfg.lock_wrappers)));
    s.push_str(&format!("taint_sources = [{}]\n", arr(&cfg.taint_sources)));
    s.push_str(&format!(
        "taint_sanitizers = [{}]\n",
        arr(&cfg.taint_sanitizers)
    ));
    s.push_str(&format!("taint_sinks = [{}]\n", arr(&cfg.taint_sinks)));
    s.push_str(&format!(
        "taint_sink_types = [{}]\n",
        arr(&cfg.taint_sink_types)
    ));
    s.push_str(&format!(
        "publication_atomics = [{}]\n",
        arr(&cfg.publication_atomics)
    ));
    s.push_str(&format!(
        "publication_slots = [{}]\n",
        arr(&cfg.publication_slots)
    ));
    s.push_str(&format!("serving_types = [{}]\n", arr(&cfg.serving_types)));
    s.push_str(&format!(
        "unpinned_cache_calls = [{}]\n",
        arr(&cfg.unpinned_cache_calls)
    ));
    s.push_str(&format!(
        "cache_receivers = [{}]\n",
        arr(&cfg.cache_receivers)
    ));
    s.push_str(&format!(
        "sync_scope_crates = [{}]\n",
        arr(&cfg.sync_scope_crates)
    ));
    s.push_str(&format!(
        "raw_sync_paths = [{}]\n",
        arr(&cfg.raw_sync_paths)
    ));
    s.push_str(&format!("sync_wrappers = [{}]\n", arr(&cfg.sync_wrappers)));
    s.push_str(&format!(
        "include_mutation_cfg = {}\n",
        cfg.include_mutation_cfg
    ));
    for a in &cfg.allow {
        s.push_str(&format!(
            "\n[[allow]]\nlint = {:?}\nfile = {:?}\ncount = {}\nreason = {:?}\n",
            a.lint, a.file, a.count, a.reason
        ));
    }
    s
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(value: &str, line: usize) -> Result<bool, ConfigError> {
    match value.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(ConfigError {
            line,
            message: format!("expected true or false, got {other:?}"),
        }),
    }
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line,
            message: format!("expected a quoted string, got {value:?}"),
        })
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(ConfigError {
            line,
            message: format!("expected an array of strings, got {value:?}"),
        });
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut cfg = Config {
            include_mutation_cfg: true,
            ..Config::default()
        };
        cfg.allow.push(AllowEntry {
            lint: "L001".into(),
            file: "crates/core/src/x.rs".into(),
            count: 3,
            reason: "historic".into(),
        });
        let text = render_config(&cfg);
        assert_eq!(parse_config(&text).unwrap(), cfg);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_entries() {
        assert!(parse_config("wat = 1\n").is_err());
        assert!(parse_config("[[allow]]\nlint = \"L001\"\n").is_err()); // missing file/count
        assert!(parse_config("[[allow]]\nlint = \"L001\"\nfile = \"f\"\ncount = 0\n").is_err());
    }

    #[test]
    fn parses_bool_keys_strictly() {
        assert!(
            parse_config("include_mutation_cfg = true\n")
                .unwrap()
                .include_mutation_cfg
        );
        assert!(parse_config("include_mutation_cfg = yes\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cfg = parse_config("# hi\n\nheavy_idents = [\"graph\"] # trailing\n").unwrap();
        assert_eq!(cfg.heavy_idents, ["graph"]);
    }
}
