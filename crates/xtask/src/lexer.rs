//! A minimal Rust lexer for the lint pass.
//!
//! Deliberately not a full Rust grammar: it produces just enough structure
//! for the lints — identifiers, single-character punctuation, and literal
//! markers — while being exactly right about the things that break naive
//! `grep`-style linting: string/char literals (including raw strings with
//! any number of `#`s and byte strings), nested block comments, lifetimes
//! vs. char literals, and raw identifiers. Every token carries a 1-based
//! line and column so findings are clickable.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `for`, …).
    Ident,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct(char),
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Token text (identifiers keep their name; literals keep a marker).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Tok {
    /// True iff this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True iff this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn peek2(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next()
    }

    fn peek3(&mut self) -> Option<char> {
        let mut clone = self.chars.clone();
        clone.next();
        clone.next();
        clone.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenize `src`. Comments and whitespace are dropped; literals are kept
/// as single opaque tokens so their contents can never confuse a lint.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match cur.bump() {
                        Some('/') if cur.peek() == Some('*') => {
                            cur.bump();
                            depth += 1;
                        }
                        Some('*') if cur.peek() == Some('/') => {
                            cur.bump();
                            depth -= 1;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            '"' => {
                eat_string(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::from("\"…\""),
                    line,
                    col,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&mut cur) => {
                eat_raw_or_byte_string(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::from("\"…\""),
                    line,
                    col,
                });
            }
            'b' if cur.peek2() == Some('\'') => {
                cur.bump(); // b
                eat_char_literal(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::from("'…'"),
                    line,
                    col,
                });
            }
            'r' if cur.peek2() == Some('#') && cur.peek3().map(is_ident_start).unwrap_or(false) => {
                // Raw identifier r#type — lex as the plain identifier.
                cur.bump();
                cur.bump();
                let name = eat_ident(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                    col,
                });
            }
            '\'' => {
                if let Some(tok) = eat_quote(&mut cur, line, col) {
                    toks.push(tok);
                }
            }
            c if is_ident_start(c) => {
                let name = eat_ident(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                eat_number(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::from("0"),
                    line,
                    col,
                });
            }
            c => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: c.to_string(),
                    line,
                    col,
                });
            }
        }
    }
    toks
}

fn eat_ident(cur: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

fn eat_number(cur: &mut Cursor<'_>) {
    // Digits, underscores, letters (hex digits, suffixes, exponent), and a
    // '.' only when followed by a digit — so ranges like `0..n` survive.
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && cur.peek2().map(|d| d.is_ascii_digit()).unwrap_or(false))
        {
            cur.bump();
        } else {
            break;
        }
    }
}

fn eat_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Does the cursor sit on `r"`, `r#…"`, `b"`, `br"`, or `br#…"`?
fn starts_raw_or_byte_string(cur: &mut Cursor<'_>) -> bool {
    let mut clone = cur.chars.clone();
    match clone.next() {
        Some('b') => match clone.next() {
            Some('"') => true,
            Some('r') => matches!(clone.next(), Some('"') | Some('#')),
            _ => false,
        },
        Some('r') => match clone.next() {
            Some('"') => true,
            Some('#') => {
                // r#"…  is a raw string; r#ident is a raw identifier.
                for c in clone {
                    match c {
                        '#' => continue,
                        '"' => return true,
                        _ => return false,
                    }
                }
                false
            }
            _ => false,
        },
        _ => false,
    }
}

fn eat_raw_or_byte_string(cur: &mut Cursor<'_>) {
    // Skip the b/r prefix letters.
    while matches!(cur.peek(), Some('b') | Some('r')) {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some('"') {
        return; // not actually a string — already consumed prefix as best effort
    }
    cur.bump(); // opening quote
    if hashes == 0 {
        // A raw string with no hashes still ignores backslash escapes…
        // unless it's a plain byte string b"…", which does escape. Being
        // conservative (honouring backslash) can only over-consume inside
        // b"…\"…", never leak literal contents as tokens.
        while let Some(c) = cur.bump() {
            match c {
                '\\' => {
                    cur.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    } else {
        while let Some(c) = cur.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
    }
}

fn eat_char_literal(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Disambiguate `'a` (lifetime) from `'a'` (char literal) from `'\n'`.
fn eat_quote(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Tok> {
    let after = cur.peek2();
    let after2 = cur.peek3();
    match after {
        Some('\\') => {
            eat_char_literal(cur);
            Some(Tok {
                kind: TokKind::Char,
                text: String::from("'…'"),
                line,
                col,
            })
        }
        Some(c) if is_ident_start(c) && after2 != Some('\'') => {
            // Lifetime: 'a followed by something other than a closing quote.
            cur.bump(); // '
            let name = eat_ident(cur);
            Some(Tok {
                kind: TokKind::Lifetime,
                text: name,
                line,
                col,
            })
        }
        Some(_) => {
            eat_char_literal(cur);
            Some(Tok {
                kind: TokKind::Char,
                text: String::from("'…'"),
                line,
                col,
            })
        }
        None => {
            cur.bump();
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn literals_hide_their_contents() {
        // None of the panic words inside literals or comments may surface.
        let src = r###"
            let a = "x.unwrap()"; // .unwrap() in comment
            /* panic! in /* nested */ comment */
            let b = r#"panic!("…")"#;
            let c = b"unwrap";
            let d = 'p';
            let e = b'\'';
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic"));
        assert_eq!(
            ids,
            ["let", "a", "let", "b", "let", "c", "let", "d", "let", "e"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let x = r##"quote " and "# inside"## ; x"####);
        let strs = toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 1);
        assert!(toks.last().unwrap().is_ident("x"));
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#type = 1;");
        assert_eq!(ids, ["let", "type"]);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("a\n  b.c");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3)); // b
        assert_eq!((toks[2].line, toks[2].col), (2, 4)); // .
        assert_eq!((toks[3].line, toks[3].col), (2, 5)); // c
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 {}");
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert!(toks.iter().any(|t| t.is_ident("in")));
    }
}
