//! `cargo xtask lint` entry point.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{
    apply_fixes, changed_files, collect_files, explain, format_report, parse_config,
    regenerate_allowlist, render_config, run_lints_filtered, to_sarif, Config,
};

const USAGE: &str = "\
usage: cargo xtask lint [options]

Project-specific static analysis (see DESIGN.md, 'Lint catalog').

options:
  --root <dir>        workspace root (default: nearest ancestor with Cargo.toml + crates/)
  --config <file>     lints.toml path (default: <root>/crates/xtask/lints.toml)
  --format <fmt>      report format: human (default) or sarif (SARIF 2.1.0)
  --out <file>        write the report there instead of stdout
  --fix               apply the mechanical fixes (L009 span bindings, L011
                      missing forbid attribute), then re-lint
  --changed [ref]     report only findings in files that differ from <ref>
                      (default: origin/main). Every file is still parsed so
                      cross-file lints stay sound; the full sweep remains
                      the CI default.
  --explain <rule>    print the long-form documentation for one rule
                      (by id like L013, or by name like epoch-pinned-cache)
                      and exit; needs no workspace
  --write-allowlist   rewrite lints.toml budgets from the current findings
  -h, --help          this help
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "-h" || cmd == "--help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if cmd != "lint" {
        eprintln!("unknown command {cmd:?}\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut write_allowlist = false;
    let mut format = String::from("human");
    let mut out_path: Option<PathBuf> = None;
    let mut fix = false;
    let mut changed: Option<String> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--format" => format = args.next().unwrap_or_default(),
            "--out" => out_path = args.next().map(PathBuf::from),
            "--fix" => fix = true,
            "--changed" => {
                // The ref is optional: `--changed --format sarif` works.
                let ref_arg = match args.peek() {
                    Some(next) if !next.starts_with('-') => args.next().unwrap(),
                    _ => String::from("origin/main"),
                };
                changed = Some(ref_arg);
            }
            "--explain" => {
                // Needs neither a workspace root nor a config: resolve and
                // print straight from the static catalog.
                let Some(rule) = args.next() else {
                    eprintln!("--explain needs a rule id (L001..L015) or rule name\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                };
                return match explain(&rule) {
                    Some(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "unknown rule {rule:?} (expected one of {})",
                            xtask::explain::rule_ids().join(", ")
                        );
                        ExitCode::from(2)
                    }
                };
            }
            "--write-allowlist" => write_allowlist = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other:?}\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if format != "human" && format != "sarif" {
        eprintln!("unknown format {format:?} (expected human or sarif)\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    if write_allowlist && changed.is_some() {
        // A filtered run sees only a slice of the findings; regenerating
        // budgets from it would silently drop every other entry.
        eprintln!("--write-allowlist needs the full sweep; drop --changed\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "xtask: could not locate the workspace root (no Cargo.toml + crates/ above cwd)"
            );
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("crates/xtask/lints.toml"));
    let cfg: Config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match parse_config(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    // `--changed` narrows the report to files differing from the ref; an
    // unresolvable ref degrades to the full sweep (with a note) so a fresh
    // clone without `origin/main` still lints.
    let changed_set = match &changed {
        Some(git_ref) => match changed_files(&root, git_ref) {
            Ok(Some(set)) => Some(set),
            Ok(None) => {
                eprintln!(
                    "xtask lint: ref {git_ref:?} did not resolve; falling back to a full sweep"
                );
                None
            }
            Err(e) => {
                eprintln!("xtask: cannot run git: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    if let (Some(git_ref), Some(set)) = (&changed, &changed_set) {
        println!(
            "xtask lint: --changed {git_ref}: {} changed .rs file(s) in scope",
            set.len()
        );
    }

    let mut report = match run_lints_filtered(&root, &cfg, changed_set.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };

    if fix {
        let mut fixed_files = 0usize;
        let mut fixed_sites = 0usize;
        for (path, ctx) in collect_files(&root, &cfg) {
            let for_file: Vec<_> = report
                .violations
                .iter()
                .filter(|v| v.file == ctx.path)
                .cloned()
                .collect();
            if for_file.is_empty() {
                continue;
            }
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            if let Some((text, n)) = apply_fixes(&src, &for_file) {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("xtask: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                fixed_files += 1;
                fixed_sites += n;
            }
        }
        println!("xtask lint --fix: {fixed_sites} fixes applied across {fixed_files} files");
        // Re-lint so the report (and the exit code) reflect the fixed tree.
        report = match run_lints_filtered(&root, &cfg, changed_set.as_ref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask: {e}");
                return ExitCode::from(2);
            }
        };
    }

    if write_allowlist {
        let next = regenerate_allowlist(&cfg, &report.violations);
        if let Err(e) = std::fs::write(&config_path, render_config(&next)) {
            eprintln!("xtask: cannot write {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        println!(
            "xtask lint: rewrote {} with {} allow entries ({} residual sites)",
            config_path.display(),
            next.allow.len(),
            next.allowed_sites(),
        );
        return ExitCode::SUCCESS;
    }

    let rendered = if format == "sarif" {
        to_sarif(&report, &cfg)
    } else {
        format_report(&report, &cfg)
    };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, rendered) {
                eprintln!("xtask: cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
            // Keep a one-line status on stdout so CI logs stay readable.
            println!(
                "xtask lint: wrote {} report to {} ({})",
                format,
                p.display(),
                if report.clean() { "clean" } else { "FINDINGS" }
            );
        }
        None => print!("{rendered}"),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Nearest ancestor directory containing both `Cargo.toml` and `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
