//! SARIF 2.1.0 export for `cargo xtask lint --format sarif`.
//!
//! The emitter is hand-written: the runtime stays zero-dependency, the
//! output is deterministic (fixed key order, findings sorted by file,
//! line, column, lint), and CI can upload the file for inline annotations.
//! Allowlisted findings are still emitted, but carry an accepted
//! `suppression` whose justification is the allowlist `reason`, so the
//! budgeted residue is visible in the SARIF view without failing it.

use crate::config::Config;
use crate::lints::Violation;
use crate::runner::LintReport;

/// Static rule metadata for the whole catalog, in rule-index order.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "L001",
        "no-unwrap",
        "No .unwrap()/.expect() in library code",
    ),
    (
        "L002",
        "no-abort-macro",
        "No panic!/unreachable!/todo!/unimplemented! in library code",
    ),
    (
        "L003",
        "no-print-macro",
        "No println!-family macros in library crates",
    ),
    (
        "L004",
        "fallible-returns-result",
        "Public fns that can fail must return the crate Result",
    ),
    (
        "L005",
        "no-guard-across-answer",
        "No lock guard held across Database::answer",
    ),
    (
        "L006",
        "no-heavy-clone-in-loop",
        "No graph/dictionary clone inside a loop body",
    ),
    (
        "L007",
        "lock-order-acyclic",
        "The lock acquisition-order graph must be acyclic",
    ),
    (
        "L008",
        "cross-crate-error-discipline",
        "Errors crossing a crate boundary must map into the receiving crate's error enum",
    ),
    (
        "L009",
        "span-guard-hygiene",
        "Obs span and stopwatch guards must live to end of scope and be read",
    ),
    (
        "L010",
        "no-blocking-in-worker",
        "No thread::sleep or blocking I/O in worker closures or span bodies",
    ),
    (
        "L011",
        "forbid-unsafe-code",
        "Library crates must carry #![forbid(unsafe_code)] and never bypass it",
    ),
    (
        "L012",
        "id-space-taint",
        "Encoded-space ids must pass a decode boundary before base-space sinks",
    ),
    (
        "L013",
        "atomics-publication-protocol",
        "Publication atomics pair Release stores with Acquire loads; the store is the last write",
    ),
    (
        "L014",
        "epoch-pinned-cache",
        "Serving paths must use epoch-pinned plan-cache lookup_at/insert_at",
    ),
    (
        "L015",
        "raw-sync-primitive-outside-facade",
        "Facade-scoped crates import sync primitives from rdfref_sync, never std::sync/std::thread/parking_lot",
    ),
];

/// Render the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &LintReport, cfg: &Config) -> String {
    let mut findings: Vec<&Violation> = report.violations.iter().collect();
    findings.sort_by_key(|v| (v.file.clone(), v.line, v.col, v.lint));

    let mut s = String::with_capacity(4096 + findings.len() * 256);
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"xtask-lint\",\n");
    s.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    s.push_str("          \"version\": \"0.1.0\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (id, name, desc)) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(id),
            json_str(name),
            json_str(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"columnKind\": \"utf16CodeUnits\",\n");
    s.push_str("      \"results\": [\n");
    for (i, v) in findings.iter().enumerate() {
        let rule_index = RULES.iter().position(|(id, _, _)| *id == v.lint);
        let allow = cfg
            .allow
            .iter()
            .find(|a| a.lint == v.lint && a.file == v.file);
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": {},\n", json_str(v.lint)));
        if let Some(ri) = rule_index {
            s.push_str(&format!("          \"ruleIndex\": {ri},\n"));
        }
        s.push_str("          \"level\": \"error\",\n");
        s.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(&v.message)
        ));
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        s.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"SRCROOT\"}},\n",
            json_str(&v.file)
        ));
        s.push_str(&format!(
            "                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n",
            v.line, v.col
        ));
        s.push_str("              }\n            }\n          ]");
        if !v.related.is_empty() {
            s.push_str(",\n          \"relatedLocations\": [\n");
            for (ri, r) in v.related.iter().enumerate() {
                s.push_str("            {\n");
                s.push_str("              \"physicalLocation\": {\n");
                s.push_str(&format!(
                    "                \"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"SRCROOT\"}},\n",
                    json_str(&r.file)
                ));
                s.push_str(&format!(
                    "                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n",
                    r.line, r.col
                ));
                s.push_str("              },\n");
                s.push_str(&format!(
                    "              \"message\": {{\"text\": {}}}\n",
                    json_str(&r.message)
                ));
                s.push_str("            }");
                s.push_str(if ri + 1 < v.related.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("          ]");
        }
        if let Some(a) = allow {
            s.push_str(",\n          \"suppressions\": [\n");
            s.push_str(&format!(
                "            {{\"kind\": \"external\", \"status\": \"accepted\", \"justification\": {}}}\n",
                json_str(&a.reason)
            ));
            s.push_str("          ]\n");
        } else {
            s.push('\n');
        }
        s.push_str("        }");
        s.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// JSON string literal with full escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn rules_cover_the_whole_catalog_in_order() {
        let ids: Vec<&str> = RULES.iter().map(|(id, _, _)| *id).collect();
        assert_eq!(
            ids,
            [
                "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
                "L011", "L012", "L013", "L014", "L015"
            ]
        );
    }
}
