//! Per-function **control-flow graphs** over the token stream.
//!
//! The item parser ([`crate::items`]) gives every function a body token
//! range; this module lowers that range into basic blocks with explicit
//! edges for `if`/`else` chains, `match` arms, the three loop forms
//! (including labeled `break`/`continue`), `return`, `?` early exits and
//! `let … else` divergence. The dataflow lints (L012–L014) run their
//! fixpoints over this graph; everything the lowering does not model
//! (closure bodies, expression-position `if`/`match`) stays inside one
//! statement, which is *conservative* for a may-analysis: the whole
//! statement's tokens are visible to the transfer function at once.
//!
//! Statements are stored as token ranges `[start, end)` in source order,
//! so a block's transfer function can re-walk its statements cheaply and
//! findings always point at real tokens.

use crate::items::{matching, stmt_end};
use crate::lexer::{Tok, TokKind};

/// One basic block: a run of statements with a single entry.
#[derive(Debug, Default)]
pub struct Block {
    /// Statement token ranges `[start, end)`, in source order.
    pub stmts: Vec<(usize, usize)>,
    /// Successor block ids. Deterministic order: fall-through / then-branch
    /// first, taken branches after, in source order.
    pub succs: Vec<usize>,
}

/// A function body's control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; `blocks[entry]` is the function entry.
    pub blocks: Vec<Block>,
    /// Entry block id (always 0).
    pub entry: usize,
    /// The synthetic exit block (always 1, no statements, no successors):
    /// `return`, `?`, the body's fall-through and tail expression all edge
    /// here.
    pub exit: usize,
}

impl Cfg {
    /// Blocks in reverse order (useful as a backward-analysis iteration
    /// order; the solver iterates to fixpoint so any order is sound).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Build the CFG of a fn body delimited by the `{` at `open` and its
/// matching `}` at `close` (token indexes, as recorded in
/// [`crate::items::FnSig::body`]).
pub fn build_cfg(toks: &[Tok], open: usize, close: usize) -> Cfg {
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        loops: Vec::new(),
    };
    let tail = b.seq(open + 1, close, 0);
    if let Some(t) = tail {
        b.edge(t, 1);
    }
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
    }
}

/// An enclosing loop, for `break`/`continue` targeting.
struct LoopCtx {
    label: Option<String>,
    header: usize,
    after: usize,
}

struct Builder<'a> {
    toks: &'a [Tok],
    blocks: Vec<Block>,
    loops: Vec<LoopCtx>,
}

const EXIT: usize = 1;

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.toks.get(i).map(|t| t.is_ident(name)).unwrap_or(false)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
    }

    /// Lower the statements in `[from, to)` starting in block `cur`.
    /// Returns the block that falls through past `to`, or `None` when
    /// every path diverges (return/break/continue).
    fn seq(&mut self, from: usize, to: usize, mut cur: usize) -> Option<usize> {
        let mut i = from;
        while i < to {
            // Skip stray semicolons between statements.
            if self.is_punct(i, ';') {
                i += 1;
                continue;
            }
            let t = &self.toks[i];
            // Labeled loop: `'outer: loop { … }`.
            let (label, kw_at) = if t.kind == TokKind::Lifetime && self.is_punct(i + 1, ':') {
                (Some(t.text.clone()), i + 2)
            } else {
                (None, i)
            };
            if self.is_ident(kw_at, "loop")
                || self.is_ident(kw_at, "while")
                || self.is_ident(kw_at, "for")
            {
                let (next_i, next_cur) = self.loop_stmt(i, kw_at, label, to, cur);
                i = next_i;
                cur = next_cur;
                continue;
            }
            if t.is_ident("if") {
                let (next_i, next_cur) = self.if_stmt(i, to, cur);
                i = next_i;
                match next_cur {
                    Some(c) => cur = c,
                    None => return self.dead_rest(i, to),
                }
                continue;
            }
            if t.is_ident("match") {
                let (next_i, next_cur) = self.match_stmt(i, to, cur);
                i = next_i;
                match next_cur {
                    Some(c) => cur = c,
                    None => return self.dead_rest(i, to),
                }
                continue;
            }
            if t.is_punct('{') {
                // Free-standing block statement.
                let block_close = matching(self.toks, i, '{', '}').unwrap_or(to).min(to);
                let inner = self.new_block();
                self.edge(cur, inner);
                let tail = self.seq(i + 1, block_close, inner);
                let join = self.new_block();
                if let Some(tb) = tail {
                    self.edge(tb, join);
                }
                cur = join;
                i = block_close + 1;
                continue;
            }
            if t.is_ident("return") {
                let e = stmt_end(self.toks, i).min(to);
                self.blocks[cur].stmts.push((i, e));
                self.edge(cur, EXIT);
                return self.dead_rest(e, to);
            }
            if t.is_ident("break") || t.is_ident("continue") {
                let e = stmt_end(self.toks, i).min(to);
                self.blocks[cur].stmts.push((i, e));
                let is_break = t.is_ident("break");
                let want_label = self
                    .toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Lifetime)
                    .map(|n| n.text.clone());
                let target = self
                    .loops
                    .iter()
                    .rev()
                    .find(|l| match &want_label {
                        Some(w) => l.label.as_deref() == Some(w.as_str()),
                        None => true,
                    })
                    .map(|l| if is_break { l.after } else { l.header });
                if let Some(tgt) = target {
                    self.edge(cur, tgt);
                }
                return self.dead_rest(e, to);
            }
            // Plain statement (`let`, expression, assignment, …): one unit.
            let e = stmt_end(self.toks, i).min(to).max(i + 1);
            // `let PAT = expr else { diverging };` — lower the else block as
            // a branch off the current block; the main flow continues.
            if t.is_ident("let") {
                if let Some(else_open) = let_else_open(self.toks, i, e) {
                    let else_close = matching(self.toks, else_open, '{', '}').unwrap_or(e).min(e);
                    self.blocks[cur].stmts.push((i, else_open));
                    let else_entry = self.new_block();
                    self.edge(cur, else_entry);
                    // The else body must diverge by language rules; any
                    // fall-through it *does* produce is routed to exit so
                    // the graph stays well-formed on malformed input.
                    if let Some(tb) = self.seq(else_open + 1, else_close, else_entry) {
                        self.edge(tb, EXIT);
                    }
                    i = e;
                    continue;
                }
            }
            self.blocks[cur].stmts.push((i, e));
            if has_top_level_question(self.toks, i, e) {
                self.edge(cur, EXIT);
            }
            i = e;
        }
        Some(cur)
    }

    /// Statements after a diverging one are unreachable but still lowered
    /// (into a fresh block with no predecessors) so their tokens remain
    /// visible to whole-body scans; the sequence itself reports divergence.
    fn dead_rest(&mut self, from: usize, to: usize) -> Option<usize> {
        if from < to {
            let dead = self.new_block();
            self.seq(from, to, dead);
        }
        None
    }

    /// `if cond { … } [else if … { … }]* [else { … }]` starting at `i`.
    /// Returns (index past the statement, join block or None if all arms
    /// diverge).
    fn if_stmt(&mut self, i: usize, to: usize, cur: usize) -> (usize, Option<usize>) {
        let Some(open) = block_open(self.toks, i + 1, to) else {
            self.blocks[cur].stmts.push((i, to));
            return (to, Some(cur));
        };
        let close = matching(self.toks, open, '{', '}').unwrap_or(to).min(to);
        // The condition is a statement of the current block (its calls and
        // uses are visible to the transfer function).
        self.blocks[cur].stmts.push((i, open));
        if has_top_level_question(self.toks, i, open) {
            self.edge(cur, EXIT);
        }
        let then_entry = self.new_block();
        self.edge(cur, then_entry);
        let then_tail = self.seq(open + 1, close, then_entry);

        let mut tails: Vec<usize> = Vec::new();
        if let Some(t) = then_tail {
            tails.push(t);
        }
        let mut i_next = close + 1;
        let mut has_else = false;
        if self.is_ident(i_next, "else") {
            has_else = true;
            if self.is_ident(i_next + 1, "if") {
                // `else if …` — recurse as a nested if in its own block.
                let else_entry = self.new_block();
                self.edge(cur, else_entry);
                let (after, join) = self.if_stmt(i_next + 1, to, else_entry);
                i_next = after;
                if let Some(j) = join {
                    tails.push(j);
                }
            } else if let Some(eopen) = block_open(self.toks, i_next + 1, to) {
                let eclose = matching(self.toks, eopen, '{', '}').unwrap_or(to).min(to);
                let else_entry = self.new_block();
                self.edge(cur, else_entry);
                if let Some(t) = self.seq(eopen + 1, eclose, else_entry) {
                    tails.push(t);
                }
                i_next = eclose + 1;
            }
        }
        if !has_else {
            // No else: the condition can fall through directly.
            tails.push(cur);
        }
        if tails.is_empty() {
            return (i_next, None);
        }
        let join = self.new_block();
        for t in tails {
            self.edge(t, join);
        }
        (i_next, Some(join))
    }

    /// `match scrutinee { pat => body, … }` starting at `i`.
    fn match_stmt(&mut self, i: usize, to: usize, cur: usize) -> (usize, Option<usize>) {
        let Some(open) = block_open(self.toks, i + 1, to) else {
            self.blocks[cur].stmts.push((i, to));
            return (to, Some(cur));
        };
        let close = matching(self.toks, open, '{', '}').unwrap_or(to).min(to);
        self.blocks[cur].stmts.push((i, open));
        if has_top_level_question(self.toks, i, open) {
            self.edge(cur, EXIT);
        }
        let mut tails: Vec<usize> = Vec::new();
        let mut j = open + 1;
        while j < close {
            // Pattern runs to the `=>` at depth 0.
            let Some(arrow) = find_arrow(self.toks, j, close) else {
                break;
            };
            let arm_entry = self.new_block();
            self.edge(cur, arm_entry);
            // The pattern (with any guard) is the arm's first statement.
            self.blocks[arm_entry].stmts.push((j, arrow));
            let body_start = arrow + 2;
            if self.is_punct(body_start, '{') {
                let bclose = matching(self.toks, body_start, '{', '}')
                    .unwrap_or(close)
                    .min(close);
                if let Some(t) = self.seq(body_start + 1, bclose, arm_entry) {
                    tails.push(t);
                }
                j = bclose + 1;
                if self.is_punct(j, ',') {
                    j += 1;
                }
            } else {
                let bend = arm_expr_end(self.toks, body_start, close);
                if let Some(t) = self.seq(body_start, bend, arm_entry) {
                    tails.push(t);
                }
                j = bend;
                if self.is_punct(j, ',') {
                    j += 1;
                }
            }
        }
        if tails.is_empty() {
            return (close + 1, None);
        }
        let join = self.new_block();
        for t in tails {
            self.edge(t, join);
        }
        (close + 1, Some(join))
    }

    /// `loop`/`while`/`for` (possibly labeled) starting at `i` (the label),
    /// with the keyword at `kw_at`. Returns (index past, continuation).
    fn loop_stmt(
        &mut self,
        i: usize,
        kw_at: usize,
        label: Option<String>,
        to: usize,
        cur: usize,
    ) -> (usize, usize) {
        let Some(open) = block_open(self.toks, kw_at + 1, to) else {
            self.blocks[cur].stmts.push((i, to));
            return (to, cur);
        };
        let close = matching(self.toks, open, '{', '}').unwrap_or(to).min(to);
        let header = self.new_block();
        self.edge(cur, header);
        // Header statement: `while cond` / `for pat in iter` (empty for
        // bare `loop`). The range starts at the keyword so the transfer
        // function can recognise `for`-bindings.
        if open > kw_at + 1 {
            self.blocks[header].stmts.push((kw_at, open));
        }
        let after = self.new_block();
        let conditional = !self.toks[kw_at].is_ident("loop");
        if conditional {
            self.edge(header, after);
        }
        let body_entry = self.new_block();
        self.edge(header, body_entry);
        self.loops.push(LoopCtx {
            label,
            header,
            after,
        });
        let tail = self.seq(open + 1, close, body_entry);
        self.loops.pop();
        if let Some(t) = tail {
            self.edge(t, header); // back edge
        }
        (close + 1, after)
    }
}

/// First `{` at paren/bracket depth 0 in `[from, to)` — the body opener of
/// an `if`/`match`/loop header. Struct literals cannot appear bare in
/// these header positions, so the first depth-0 brace is the body.
fn block_open(toks: &[Tok], from: usize, to: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (i, t) in toks.iter().enumerate().take(to).skip(from) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
            TokKind::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// The `=>` of a match arm at delimiter depth 0, scanning from `from`.
fn find_arrow(toks: &[Tok], from: usize, to: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut i = from;
    while i + 1 < to {
        match toks[i].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct('=')
                if paren == 0
                    && bracket == 0
                    && brace == 0
                    && toks[i + 1].is_punct('>')
                    && toks[i].line == toks[i + 1].line
                    && toks[i].col + 1 == toks[i + 1].col =>
            {
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// End of a non-braced match-arm expression: the `,` at depth 0, or `to`.
fn arm_expr_end(toks: &[Tok], from: usize, to: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    for (i, t) in toks.iter().enumerate().take(to).skip(from) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct(',') if paren == 0 && bracket == 0 && brace == 0 => return i,
            _ => {}
        }
    }
    to
}

/// Does the statement `[from, to)` contain a `?` operator at brace depth 0
/// (i.e. not inside a nested closure/block body)?
fn has_top_level_question(toks: &[Tok], from: usize, to: usize) -> bool {
    let mut brace = 0i32;
    for t in toks.iter().take(to.min(toks.len())).skip(from) {
        match t.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct('?') if brace <= 0 => return true,
            _ => {}
        }
    }
    false
}

/// For `let PAT = EXPR else { … };` in `[from, to)`: the index of the
/// `else`-block's `{`, or `None` for a plain `let`.
fn let_else_open(toks: &[Tok], from: usize, to: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let to = to.min(toks.len());
    let mut i = from;
    while i < to {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            // `else` at depth 0 inside a let statement is let-else iff a
            // block follows (an expression-position `if … else` sits
            // behind its `if`'s brace, i.e. at brace depth > 0 … unless
            // the initializer *is* the if. Check the brace.)
            TokKind::Ident
                if t.text == "else"
                    && paren == 0
                    && bracket == 0
                    && brace == 0
                    && toks.get(i + 1).map(|n| n.is_punct('{')).unwrap_or(false)
                    && !initializer_is_if(toks, from, i) =>
            {
                return Some(i + 1);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Is the initializer of the `let` at `from` an `if`/`match` expression
/// (whose own `else` would otherwise read as let-else)? Looks at the first
/// token after the `=`.
fn initializer_is_if(toks: &[Tok], from: usize, before: usize) -> bool {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(before).skip(from) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
            TokKind::Punct('=')
                if depth <= 0 && !toks.get(i + 1).map(|n| n.is_punct('=')).unwrap_or(false) =>
            {
                return toks
                    .get(i + 1)
                    .map(|n| n.is_ident("if") || n.is_ident("match"))
                    .unwrap_or(false);
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{parse_items, ItemKind};
    use crate::lexer::lex;

    fn cfg_of(src: &str) -> (Vec<Tok>, Cfg) {
        let toks = lex(src);
        let items = parse_items(&toks);
        let ItemKind::Fn(sig) = &items[0].kind else {
            panic!("fixture must start with a fn: {:?}", items[0].kind);
        };
        let (open, close) = sig.body.expect("fn body");
        let cfg = build_cfg(&toks, open, close);
        (toks, cfg)
    }

    /// Blocks reachable from entry.
    fn reachable(cfg: &Cfg) -> Vec<usize> {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        (0..cfg.blocks.len()).filter(|&i| seen[i]).collect()
    }

    #[test]
    fn straight_line_is_one_block_to_exit() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = a; touch(b); }");
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { one(); } else { two(); } after(); }");
        // entry → then, else; both → join; join → exit.
        let entry_succs = &cfg.blocks[cfg.entry].succs;
        assert_eq!(entry_succs.len(), 2, "{cfg:?}");
        let join = cfg.blocks[entry_succs[0]].succs[0];
        assert_eq!(cfg.blocks[entry_succs[1]].succs, vec![join]);
        assert_eq!(cfg.blocks[join].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_without_else_falls_through() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { one(); } after(); }");
        // entry → then-block and → join directly.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn return_edges_to_exit_and_kills_fallthrough() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { return; } after(); }");
        let then = cfg.blocks[cfg.entry].succs[0];
        assert!(cfg.blocks[then].succs.contains(&cfg.exit));
        // The then-block must NOT reach the join.
        assert_eq!(cfg.blocks[then].succs, vec![cfg.exit]);
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let (_, cfg) = cfg_of("fn f() -> Result<(), E> { let x = fallible()?; use_it(x); Ok(()) }");
        assert!(cfg.blocks[cfg.entry].succs.contains(&cfg.exit));
    }

    #[test]
    fn loops_have_back_edges_and_breaks_reach_after() {
        let (_, cfg) = cfg_of("fn f() { loop { if done() { break; } step(); } after(); }");
        // Find a back edge: some block's successor list contains an
        // earlier block that is not the exit.
        let has_back = cfg.blocks.iter().enumerate().any(|(i, b)| {
            b.succs
                .iter()
                .any(|&s| s < i && s != cfg.exit && s != cfg.entry)
        });
        assert!(has_back, "{cfg:?}");
        // `after()` is reachable (break target wired through).
        let reach = reachable(&cfg);
        let after_block = cfg
            .blocks
            .iter()
            .position(|b| !b.stmts.is_empty() && b.succs == vec![cfg.exit]);
        assert!(
            after_block.map(|b| reach.contains(&b)).unwrap_or(false),
            "{cfg:?}"
        );
    }

    #[test]
    fn labeled_break_targets_the_outer_loop() {
        let (toks, cfg) = cfg_of(
            "fn f() { 'outer: loop { loop { break 'outer; } } unreachable_code(); after(); }",
        );
        // The inner break must edge to the OUTER loop's after-block — the
        // one whose continuation contains `after()`. Find the break stmt.
        let mut break_block = None;
        for (i, b) in cfg.blocks.iter().enumerate() {
            for &(s, e) in &b.stmts {
                if toks[s..e].iter().any(|t| t.is_ident("break")) {
                    break_block = Some(i);
                }
            }
        }
        let bb = break_block.expect("break block");
        // Its successor eventually reaches exit without a back edge to the
        // inner loop: the after-block of the outer loop.
        assert_eq!(cfg.blocks[bb].succs.len(), 1);
        let reach = reachable(&cfg);
        assert!(reach.contains(&cfg.blocks[bb].succs[0]));
    }

    #[test]
    fn match_arms_each_get_a_block() {
        let (_, cfg) = cfg_of(
            "fn f(x: u32) { match x { 0 => zero(), 1 => { one(); } _ => other(), } after(); }",
        );
        // entry → 3 arm blocks.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 3, "{cfg:?}");
    }

    #[test]
    fn let_else_diverging_block_is_a_branch() {
        let (_, cfg) =
            cfg_of("fn f(o: Option<u32>) { let Some(x) = o else { return; }; use_it(x); }");
        // entry branches into the else block (which exits) and continues.
        assert!(!cfg.blocks[cfg.entry].succs.is_empty());
        let else_entry = cfg.blocks[cfg.entry].succs[0];
        assert!(cfg.blocks[else_entry].succs.iter().all(|&s| s == cfg.exit));
        // The main flow still records both statements.
        let total_stmts: usize = cfg.blocks.iter().map(|b| b.stmts.len()).sum();
        assert!(total_stmts >= 3, "{cfg:?}"); // let-head, return, use_it
    }

    #[test]
    fn while_loop_is_conditional() {
        let (_, cfg) = cfg_of("fn f() { while cond() { step(); } after(); }");
        // The header has two successors: after-block and body.
        let header = cfg.blocks[cfg.entry].succs[0];
        assert_eq!(cfg.blocks[header].succs.len(), 2, "{cfg:?}");
    }
}
