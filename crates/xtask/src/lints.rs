//! The lint catalog (L001–L006) over the token stream of one file.
//!
//! | lint | rule |
//! |------|------|
//! | L001 | no `.unwrap()` / `.expect(…)` in library code |
//! | L002 | no `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code |
//! | L003 | no `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` in library crates |
//! | L004 | public fns that can fail (panic-ish body) must return `Result` |
//! | L005 | no `Mutex`/`RwLock` guard held across a guarded call (`answer`, snapshot `publish`, …; `guarded_calls` in lints.toml) |
//! | L006 | no `.clone()` of `Graph`/dictionary-like values in loop bodies |
//!
//! `#[cfg(test)]` items, `#[test]` fns and `mod tests { … }` blocks are
//! exempt from every lint: test code may unwrap freely.

use crate::config::Config;
use crate::items::{attr_is_test, item_end, matching};
use crate::lexer::{lex, Tok, TokKind};

/// A secondary location attached to a finding — the dataflow lints
/// (L012–L014) emit the def-use witness chain this way, and the SARIF
/// exporter renders it as `relatedLocations`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Role of this location in the witness (`"encoded here"`, …).
    pub message: String,
}

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint id, e.g. `"L001"`.
    pub lint: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// Witness locations, in flow order (empty for the token lints).
    pub related: Vec<Related>,
}

/// What the file being linted is, as far as lint scoping cares.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Crate directory name (`core`, `storage`, … or `rdfref` for the root).
    pub crate_name: String,
}

impl FileContext {
    /// True for binary targets (`src/bin/*`, `main.rs`): L003 exempts them.
    fn is_bin(&self) -> bool {
        self.path.contains("/bin/") || self.path.ends_with("main.rs")
    }
}

/// Token-index structure shared by all lints.
struct Analysis<'a> {
    toks: &'a [Tok],
    /// Per-token: inside a `#[cfg(test)]` item / `#[test]` fn / `mod tests`.
    exempt: Vec<bool>,
    /// Per-token: nesting depth of `for`/`while`/`loop` bodies.
    loop_depth: Vec<u16>,
    /// Per-token: brace nesting depth (`{}` only).
    brace_depth: Vec<u32>,
}

/// Lint one file's source text. `cfg` supplies lint scoping and the L006
/// identifier heuristics; allowlisting happens in the caller.
pub fn lint_file(src: &str, ctx: &FileContext, cfg: &Config) -> Vec<Violation> {
    lint_tokens(&lex(src), ctx, cfg)
}

/// Lint one file that is already lexed — the two-phase runner parses every
/// file once and shares the tokens between the token lints and the graph.
pub fn lint_tokens(toks: &[Tok], ctx: &FileContext, cfg: &Config) -> Vec<Violation> {
    let analysis = analyze(toks);
    let mut out = Vec::new();
    lint_l001_l002_l003(&analysis, ctx, cfg, &mut out);
    if cfg.result_crates.contains(&ctx.crate_name) {
        lint_l004(&analysis, ctx, &mut out);
    }
    if cfg
        .guard_paths
        .iter()
        .any(|p| ctx.path.starts_with(p.as_str()))
    {
        lint_l005(&analysis, ctx, cfg, &mut out);
    }
    lint_l006(&analysis, ctx, cfg, &mut out);
    out.sort_by_key(|v| (v.line, v.col, v.lint));
    out
}

fn analyze(toks: &[Tok]) -> Analysis<'_> {
    let n = toks.len();
    let mut exempt = vec![false; n];
    let mut loop_depth = vec![0u16; n];
    let mut brace_depth = vec![0u32; n];

    // Brace depth (braces only; brackets/parens don't nest items).
    let mut depth = 0u32;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
        }
        brace_depth[i] = depth;
        if t.is_punct('{') {
            depth += 1;
        }
    }

    // Test exemption: attributes #[cfg(test)] / #[test] and `mod tests`.
    let mut i = 0;
    while i < n {
        if toks[i].is_punct('#') && i + 1 < n && toks[i + 1].is_punct('[') {
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            if attr_is_test(&toks[i + 2..close]) {
                let end = item_end(toks, close + 1);
                for e in exempt.iter_mut().take(end).skip(i) {
                    *e = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        if toks[i].is_ident("mod")
            && i + 1 < n
            && toks[i + 1].is_ident("tests")
            && i + 2 < n
            && toks[i + 2].is_punct('{')
        {
            let end = matching(toks, i + 2, '{', '}').map(|c| c + 1).unwrap_or(n);
            for e in exempt.iter_mut().take(end).skip(i) {
                *e = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }

    // Loop bodies: `loop {`, `for pat in expr {`, `while cond {`.
    let mut i = 0;
    while i < n {
        let t = &toks[i];
        let body_open = if t.is_ident("loop") {
            (i + 1 < n && toks[i + 1].is_punct('{')).then_some(i + 1)
        } else if t.is_ident("while") || (t.is_ident("for") && for_is_loop(toks, i)) {
            first_block_open(toks, i + 1)
        } else {
            None
        };
        if let Some(open) = body_open {
            if let Some(close) = matching(toks, open, '{', '}') {
                for d in loop_depth.iter_mut().take(close).skip(open + 1) {
                    *d += 1;
                }
            }
        }
        i += 1;
    }

    Analysis {
        toks,
        exempt,
        loop_depth,
        brace_depth,
    }
}

/// First `{` after `from` at paren/bracket depth 0 — the loop body opener.
/// Closure bodies inside the header (rare) will confuse this; acceptable
/// for a heuristic lint.
fn first_block_open(toks: &[Tok], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (i, t) in toks.iter().enumerate().skip(from) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
            TokKind::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// A `for` token heads a loop iff an `in` follows before the body opens —
/// this rejects `impl Trait for Type` and `for<'a>` bounds.
fn for_is_loop(toks: &[Tok], at: usize) -> bool {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for t in toks.iter().skip(at + 1) {
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') | TokKind::Punct(';') if paren == 0 && bracket == 0 => {
                return false
            }
            TokKind::Ident if paren == 0 && bracket == 0 && t.text == "in" => return true,
            _ => {}
        }
    }
    false
}

const L002_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const L003_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

fn lint_l001_l002_l003(a: &Analysis, ctx: &FileContext, cfg: &Config, out: &mut Vec<Violation>) {
    let n = a.toks.len();
    for i in 0..n {
        if a.exempt[i] {
            continue;
        }
        let t = &a.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| i + 1 < n && a.toks[i + 1].is_punct(c);
        let prev_is_dot = i > 0 && a.toks[i - 1].is_punct('.');
        if (t.text == "unwrap" || t.text == "expect") && prev_is_dot && next_is('(') {
            out.push(Violation {
                related: Vec::new(),
                lint: "L001",
                file: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    ".{}() in library code — return the crate Result instead",
                    t.text
                ),
            });
        }
        if L002_MACROS.contains(&t.text.as_str()) && next_is('!') {
            out.push(Violation {
                related: Vec::new(),
                lint: "L002",
                file: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{}! in library code — return a typed error instead of aborting",
                    t.text
                ),
            });
        }
        if !ctx.is_bin()
            && cfg.library_crates.contains(&ctx.crate_name)
            && L003_MACROS.contains(&t.text.as_str())
            && next_is('!')
        {
            out.push(Violation {
                related: Vec::new(),
                lint: "L003",
                file: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{}! in a library crate — use a return value or log hook",
                    t.text
                ),
            });
        }
    }
}

const PANICKY: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
];

/// L004: a `pub fn` whose body contains panic-ish tokens but whose return
/// type is not a `Result` swallows its failure mode. (After the panic
/// sweep, any surviving site is simultaneously an L001/L002 finding; L004
/// points at the signature that should change.)
fn lint_l004(a: &Analysis, ctx: &FileContext, out: &mut Vec<Violation>) {
    let toks = a.toks;
    let n = toks.len();
    let mut i = 0;
    while i < n {
        if a.exempt[i] || !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        // `pub(crate)` & friends are not public API.
        if i + 1 < n && toks[i + 1].is_punct('(') {
            i += 1;
            continue;
        }
        // Allow `const` / `unsafe` / `async` / `extern "C"` between.
        let mut j = i + 1;
        while j < n
            && (toks[j].is_ident("const")
                || toks[j].is_ident("unsafe")
                || toks[j].is_ident("async")
                || toks[j].is_ident("extern")
                || toks[j].kind == TokKind::Str)
        {
            j += 1;
        }
        if j >= n || !toks[j].is_ident("fn") {
            i += 1;
            continue;
        }
        let name_idx = j + 1;
        let Some(params_open) = toks
            .iter()
            .enumerate()
            .skip(name_idx)
            .find(|(_, t)| t.is_punct('('))
            .map(|(k, _)| k)
        else {
            break;
        };
        let Some(params_close) = matching(toks, params_open, '(', ')') else {
            break;
        };
        // Signature runs to the body `{` (or `;` for trait decls).
        let Some(body_open) = first_block_open(toks, params_close + 1) else {
            i = params_close + 1;
            continue;
        };
        let Some(body_close) = matching(toks, body_open, '{', '}') else {
            break;
        };
        let returns_result = toks[params_close + 1..body_open]
            .iter()
            .any(|t| t.is_ident("Result"));
        if !returns_result {
            let panicky = toks[body_open..body_close]
                .iter()
                .enumerate()
                .find(|(k, t)| {
                    t.kind == TokKind::Ident
                        && PANICKY.contains(&t.text.as_str())
                        && !a.exempt[body_open + k]
                        && {
                            let at = body_open + k;
                            let dotted = at > 0 && toks[at - 1].is_punct('.');
                            let called = at + 1 < n
                                && (toks[at + 1].is_punct('(') || toks[at + 1].is_punct('!'));
                            (dotted || L002_MACROS.contains(&t.text.as_str())) && called
                        }
                });
            if panicky.is_some() {
                let name = &toks[name_idx];
                out.push(Violation { related: Vec::new(),
                    lint: "L004",
                    file: ctx.path.clone(),
                    line: name.line,
                    col: name.col,
                    message: format!(
                        "pub fn {} can fail (panics internally) but does not return the crate Result",
                        name.text
                    ),
                });
            }
        }
        i = body_close + 1;
    }
}

/// L005: a lock guard (`let g = ….lock()/.read()/.write()`) must be dropped
/// before any *guarded call* (`guarded_calls` in lints.toml) in the same
/// scope. The defaults: `answer`, because a cache shard can deadlock
/// against answering's own cache use; and `publish`, because atomic
/// snapshot publication while holding a shard lock would let a stalled
/// writer block the lock-free reader path it exists to protect.
fn lint_l005(a: &Analysis, ctx: &FileContext, cfg: &Config, out: &mut Vec<Violation>) {
    let toks = a.toks;
    let n = toks.len();
    let mut i = 0;
    while i < n {
        if a.exempt[i] || !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // Binding name (skip `mut`, ignore destructuring patterns).
        let mut j = i + 1;
        if j < n && toks[j].is_ident("mut") {
            j += 1;
        }
        if j >= n || toks[j].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let guard_name = toks[j].text.clone();
        // Initializer tokens: up to the `;` at delimiter depth 0.
        let init_end = item_end(toks, j + 1);
        let is_guard = toks[j + 1..init_end.min(n)]
            .iter()
            .enumerate()
            .any(|(k, t)| {
                let at = j + 1 + k;
                t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "lock" | "read" | "write")
                    && at > 0
                    && toks[at - 1].is_punct('.')
                    && at + 1 < n
                    && toks[at + 1].is_punct('(')
            });
        if !is_guard {
            i += 1;
            continue;
        }
        let scope_depth = a.brace_depth[i];
        let mut k = init_end;
        while k < n && a.brace_depth[k] >= scope_depth {
            let t = &toks[k];
            // `drop(guard)` ends the guard's life early.
            if t.is_ident("drop")
                && k + 2 < n
                && toks[k + 1].is_punct('(')
                && toks[k + 2].is_ident(&guard_name)
            {
                break;
            }
            if cfg.guarded_calls.iter().any(|c| t.is_ident(c))
                && k + 1 < n
                && toks[k + 1].is_punct('(')
            {
                out.push(Violation { related: Vec::new(),
                    lint: "L005",
                    file: ctx.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    message: format!(
                        "lock guard `{guard_name}` is live across a call into `{}` (line {}) — drop it first",
                        t.text, t.line
                    ),
                });
                break;
            }
            k += 1;
        }
        i += 1;
    }
}

/// L006: `.clone()` of a heavy value (graph/dictionary-like identifier) in
/// a loop body — an O(data) copy per iteration.
fn lint_l006(a: &Analysis, ctx: &FileContext, cfg: &Config, out: &mut Vec<Violation>) {
    let toks = a.toks;
    let n = toks.len();
    for i in 0..n {
        if a.exempt[i] || a.loop_depth[i] == 0 {
            continue;
        }
        let t = &a.toks[i];
        if !(t.is_ident("clone")
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < n
            && toks[i + 1].is_punct('('))
        {
            continue;
        }
        // Receiver: the identifier before the dot, skipping one call's
        // parens so `self.graph().clone()` resolves to `graph`.
        let mut r = i - 1; // the '.'
        if r == 0 {
            continue;
        }
        r -= 1;
        if toks[r].is_punct(')') {
            let mut depth = 0i32;
            loop {
                if toks[r].is_punct(')') {
                    depth += 1;
                } else if toks[r].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if r == 0 {
                    break;
                }
                r -= 1;
            }
            if r == 0 {
                continue;
            }
            r -= 1;
        }
        if toks[r].kind != TokKind::Ident {
            continue;
        }
        let recv = toks[r].text.to_ascii_lowercase();
        if cfg
            .heavy_idents
            .iter()
            .any(|h| recv == *h || recv.ends_with(&format!("_{h}")))
        {
            out.push(Violation {
                related: Vec::new(),
                lint: "L006",
                file: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}.clone()` inside a loop body — clone once outside the loop or borrow",
                    toks[r].text
                ),
            });
        }
    }
}
