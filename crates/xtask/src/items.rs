//! A recursive-descent *item* parser over the token stream.
//!
//! Where the lexer ([`crate::lexer`]) makes the token-level lints safe
//! against literals and comments, this module gives the *semantic* lints
//! (L007–L011) the structure they need: the item tree of a file — modules,
//! `use` declarations, functions with their signatures and body ranges,
//! impl blocks with their self type and trait — plus expression-level
//! helpers (receiver chains, statement boundaries) shared by the lints.
//!
//! It is still deliberately not a full Rust grammar. Item *headers* are
//! parsed precisely (visibility, generics with `->`-aware `>` matching,
//! `where` clauses, use trees with groups/globs/aliases); item *bodies*
//! are kept as token ranges that the lints scan with the expression
//! helpers. Everything unknown degrades to an [`ItemKind::Other`] that is
//! skipped structurally, never mis-parsed.

use crate::lexer::{Tok, TokKind};

/// One `use` leaf after tree expansion: `use a::{b, c as d, e::*};`
/// expands to three targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseTarget {
    /// Full path segments, e.g. `["rdfref_storage", "Evaluator"]`.
    pub path: Vec<String>,
    /// Name the import binds locally (the alias, or the last segment).
    /// Empty for glob imports.
    pub alias: String,
    /// `use a::b::*;`
    pub glob: bool,
}

/// A parsed function signature; all indexes are into the file's tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Index of the name token.
    pub name_tok: usize,
    /// `(` … `)` of the parameter list (token indexes, inclusive).
    pub params: (usize, usize),
    /// Token range of the return type (`start == end` when `()`-returning).
    pub ret: (usize, usize),
    /// `{` … `}` of the body (inclusive); `None` for trait declarations.
    pub body: Option<(usize, usize)>,
}

/// What an item is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` (inline) or `mod name;` (file module).
    Module {
        /// Whether the body is inline in this file.
        inline: bool,
    },
    /// A `use` declaration, expanded to its leaf targets.
    Use {
        /// Every leaf path the declaration imports.
        targets: Vec<UseTarget>,
    },
    /// A free function or method.
    Fn(FnSig),
    /// `impl [Trait for] Type { … }`.
    Impl {
        /// Last path segment of the self type (`Evaluator`, `CoreError`).
        self_ty: String,
        /// Last path segment of the implemented trait, if any.
        trait_ty: Option<String>,
        /// Identifier tokens inside the trait's generic arguments —
        /// `impl From<QueryError> for CoreError` records `["QueryError"]`.
        trait_args: Vec<String>,
    },
    /// `struct Name …`.
    Struct,
    /// `enum Name { … }`.
    Enum,
    /// `trait Name { … }`.
    Trait,
    /// `type Name = …;` with the aliased type's token range.
    TypeAlias {
        /// Tokens of the right-hand side (start, end-exclusive).
        target: (usize, usize),
    },
    /// `const` / `static` item.
    Const,
    /// `macro_rules! name { … }` — the body is never scanned.
    MacroDef,
    /// Anything the parser does not model; skipped as one unit.
    Other,
}

/// One item with its token extent and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Item name (empty for `use` and impls).
    pub name: String,
    /// `pub` without a restriction (`pub(crate)` is not public API).
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]` / `mod tests`, directly or via an
    /// ancestor.
    pub cfg_test: bool,
    /// Behind a positive `#[cfg(modelcheck_mutation = "…")]` — a seeded
    /// protocol-bug twin, never compiled in normal builds — directly or
    /// via an ancestor. `#[cfg(not(modelcheck_mutation = …))]` marks the
    /// *good* twin and does not set this.
    pub cfg_mutation: bool,
    /// First token of the item (including its attributes).
    pub start: usize,
    /// One past the last token of the item.
    pub end: usize,
    /// Children: module items, impl/trait members.
    pub children: Vec<Item>,
    /// 1-based source line of the item keyword.
    pub line: u32,
    /// 1-based source column of the item keyword.
    pub col: u32,
}

/// Parse the item tree of a whole file.
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    let mut p = Parser { toks, pos: 0 };
    let mut items = p.items_until(toks.len(), false);
    mark_mutation_cfg(toks, &mut items, false);
    items
}

/// Post-pass: propagate the `modelcheck_mutation` cfg down the tree. Kept
/// out of the main parser — the flag rides on the item's leading
/// attributes, which `Item::start` already covers.
fn mark_mutation_cfg(toks: &[Tok], items: &mut [Item], parent: bool) {
    for item in items {
        let own = parent || leading_attr_is_mutation(toks, item.start);
        item.cfg_mutation = own;
        mark_mutation_cfg(toks, &mut item.children, own);
    }
}

/// Does any `#[…]` attribute at `start` select a mutation cfg?
fn leading_attr_is_mutation(toks: &[Tok], start: usize) -> bool {
    let mut i = start;
    loop {
        if !toks.get(i).map(|t| t.is_punct('#')).unwrap_or(false) {
            return false;
        }
        let mut open = i + 1;
        if toks.get(open).map(|t| t.is_punct('!')).unwrap_or(false) {
            open += 1;
        }
        if !toks.get(open).map(|t| t.is_punct('[')).unwrap_or(false) {
            return false;
        }
        let Some(close) = matching(toks, open, '[', ']') else {
            return false;
        };
        if attr_is_mutation(&toks[open + 1..close]) {
            return true;
        }
        i = close + 1;
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn is_ident_at(&self, i: usize, name: &str) -> bool {
        self.at(i).map(|t| t.is_ident(name)).unwrap_or(false)
    }

    fn is_punct_at(&self, i: usize, c: char) -> bool {
        self.at(i).map(|t| t.is_punct(c)).unwrap_or(false)
    }

    fn items_until(&mut self, end: usize, parent_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < end {
            let before = self.pos;
            match self.item(end, parent_test) {
                Some(item) => out.push(item),
                None => {
                    // A malformed item must not hide the rest of the file
                    // from the lints: skip one token and keep going.
                    if self.pos <= before {
                        self.pos = before + 1;
                    }
                }
            }
        }
        out
    }

    /// Parse one item starting at `self.pos`; advances past it.
    fn item(&mut self, end: usize, parent_test: bool) -> Option<Item> {
        let start = self.pos;
        let mut cfg_test = parent_test;

        // Attributes (outer and inner): `#[…]` / `#![…]`.
        while self.pos < end && self.is_punct_at(self.pos, '#') {
            let mut open = self.pos + 1;
            if self.is_punct_at(open, '!') {
                open += 1;
            }
            if !self.is_punct_at(open, '[') {
                break;
            }
            let close = matching(self.toks, open, '[', ']')?;
            if attr_is_test(&self.toks[open + 1..close]) {
                cfg_test = true;
            }
            self.pos = close + 1;
        }
        if self.pos >= end {
            // Trailing attributes with no item (inner attrs at EOF).
            if self.pos > start {
                return Some(self.mk(ItemKind::Other, String::new(), false, cfg_test, start));
            }
            return None;
        }

        // Visibility.
        let mut is_pub = false;
        if self.is_ident_at(self.pos, "pub") {
            is_pub = true;
            self.pos += 1;
            if self.is_punct_at(self.pos, '(') {
                // `pub(crate)` & friends: restricted, not public API.
                is_pub = false;
                let close = matching(self.toks, self.pos, '(', ')')?;
                self.pos = close + 1;
            }
        }

        // Leading modifiers before `fn`.
        let mut look = self.pos;
        while look < end
            && (self.is_ident_at(look, "const")
                || self.is_ident_at(look, "unsafe")
                || self.is_ident_at(look, "async")
                || self.is_ident_at(look, "extern")
                || self
                    .at(look)
                    .map(|t| t.kind == TokKind::Str)
                    .unwrap_or(false))
        {
            look += 1;
        }
        let fn_here = self.is_ident_at(look, "fn");

        let kw = self.at(self.pos)?.clone();
        if fn_here {
            self.pos = look;
            return self.fn_item(start, is_pub, cfg_test, end);
        }
        if kw.is_ident("mod") {
            return self.mod_item(start, is_pub, cfg_test, end);
        }
        if kw.is_ident("use") {
            return self.use_item(start, is_pub, cfg_test, end);
        }
        if kw.is_ident("impl") {
            return self.impl_item(start, is_pub, cfg_test, end);
        }
        if kw.is_ident("struct") || kw.is_ident("union") {
            return self.named_item(start, is_pub, cfg_test, end, ItemKind::Struct);
        }
        if kw.is_ident("enum") {
            return self.named_item(start, is_pub, cfg_test, end, ItemKind::Enum);
        }
        if kw.is_ident("trait") {
            return self.trait_item(start, is_pub, cfg_test, end);
        }
        if kw.is_ident("type") {
            return self.type_alias(start, is_pub, cfg_test, end);
        }
        if kw.is_ident("const") || kw.is_ident("static") {
            self.pos = item_end(self.toks, self.pos).min(end);
            // Name comes right after the keyword (skipping `mut`).
            let mut n = start;
            while n < self.pos && !(self.is_ident_at(n, "const") || self.is_ident_at(n, "static")) {
                n += 1;
            }
            let mut name_at = n + 1;
            if self.is_ident_at(name_at, "mut") {
                name_at += 1;
            }
            let name = self
                .at(name_at)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            return Some(self.mk(ItemKind::Const, name, is_pub, cfg_test, start));
        }
        if kw.is_ident("macro_rules") {
            self.pos = item_end(self.toks, self.pos).min(end);
            return Some(self.mk(ItemKind::MacroDef, String::new(), is_pub, cfg_test, start));
        }
        // Anything else (extern crate, stray tokens): one structural unit.
        self.pos = item_end(self.toks, self.pos).min(end);
        if self.pos <= start {
            self.pos = start + 1; // guarantee progress
        }
        Some(self.mk(ItemKind::Other, String::new(), is_pub, cfg_test, start))
    }

    fn mk(&self, kind: ItemKind, name: String, is_pub: bool, cfg_test: bool, start: usize) -> Item {
        let at = self.toks.get(start).or_else(|| self.toks.last());
        Item {
            kind,
            name,
            is_pub,
            cfg_test,
            cfg_mutation: false,
            start,
            end: self.pos,
            children: Vec::new(),
            line: at.map(|t| t.line).unwrap_or(1),
            col: at.map(|t| t.col).unwrap_or(1),
        }
    }

    fn mod_item(&mut self, start: usize, is_pub: bool, cfg_test: bool, end: usize) -> Option<Item> {
        self.pos += 1; // `mod`
        let name = self.ident_here()?;
        let cfg_test = cfg_test || name == "tests";
        if self.is_punct_at(self.pos, ';') {
            self.pos += 1;
            let mut item = self.mk(
                ItemKind::Module { inline: false },
                name,
                is_pub,
                cfg_test,
                start,
            );
            item.children = Vec::new();
            return Some(item);
        }
        if !self.is_punct_at(self.pos, '{') {
            self.pos = item_end(self.toks, self.pos).min(end);
            return Some(self.mk(ItemKind::Other, name, is_pub, cfg_test, start));
        }
        let open = self.pos;
        let close = matching(self.toks, open, '{', '}')?;
        self.pos = open + 1;
        let children = self.items_until(close, cfg_test);
        self.pos = close + 1;
        let mut item = self.mk(
            ItemKind::Module { inline: true },
            name,
            is_pub,
            cfg_test,
            start,
        );
        item.children = children;
        Some(item)
    }

    fn use_item(&mut self, start: usize, is_pub: bool, cfg_test: bool, end: usize) -> Option<Item> {
        self.pos += 1; // `use`
        let stop = stmt_end(self.toks, self.pos).min(end);
        let mut targets = Vec::new();
        let mut pos = self.pos;
        parse_use_tree(self.toks, &mut pos, stop, &mut Vec::new(), &mut targets);
        self.pos = stop;
        Some(self.mk(
            ItemKind::Use { targets },
            String::new(),
            is_pub,
            cfg_test,
            start,
        ))
    }

    fn fn_item(&mut self, start: usize, is_pub: bool, cfg_test: bool, end: usize) -> Option<Item> {
        self.pos += 1; // `fn`
        let name_tok = self.pos;
        let name = self.ident_here()?;
        // Generics.
        if self.is_punct_at(self.pos, '<') {
            self.pos = skip_generics(self.toks, self.pos)?;
        }
        if !self.is_punct_at(self.pos, '(') {
            self.pos = item_end(self.toks, self.pos).min(end);
            return Some(self.mk(ItemKind::Other, name, is_pub, cfg_test, start));
        }
        let params_open = self.pos;
        let params_close = matching(self.toks, params_open, '(', ')')?;
        self.pos = params_close + 1;
        // Return type: `-> T` up to `{`, `;` or `where` at depth 0.
        let mut ret = (self.pos, self.pos);
        if self.is_punct_at(self.pos, '-') && self.is_punct_at(self.pos + 1, '>') {
            self.pos += 2;
            let ret_start = self.pos;
            self.pos = type_end(self.toks, self.pos, end);
            ret = (ret_start, self.pos);
        }
        // Where clause.
        if self.is_ident_at(self.pos, "where") {
            while self.pos < end {
                if self.is_punct_at(self.pos, '{') || self.is_punct_at(self.pos, ';') {
                    break;
                }
                self.pos += 1;
            }
        }
        let body = if self.is_punct_at(self.pos, '{') {
            let open = self.pos;
            let close = matching(self.toks, open, '{', '}')?;
            self.pos = close + 1;
            Some((open, close))
        } else {
            if self.is_punct_at(self.pos, ';') {
                self.pos += 1;
            }
            None
        };
        let sig = FnSig {
            name_tok,
            params: (params_open, params_close),
            ret,
            body,
        };
        let mut item = self.mk(ItemKind::Fn(sig), name, is_pub, cfg_test, start);
        // The name token is where findings should point.
        if let Some(t) = self.toks.get(name_tok) {
            item.line = t.line;
            item.col = t.col;
        }
        Some(item)
    }

    fn impl_item(
        &mut self,
        start: usize,
        is_pub: bool,
        cfg_test: bool,
        _end: usize,
    ) -> Option<Item> {
        self.pos += 1; // `impl`
        if self.is_punct_at(self.pos, '<') {
            self.pos = skip_generics(self.toks, self.pos)?;
        }
        // First type path (trait, or self type when no `for` follows).
        let first_start = self.pos;
        let first_end = impl_path_end(self.toks, self.pos);
        self.pos = first_end;
        let (self_ty, trait_ty, trait_args) = if self.is_ident_at(self.pos, "for") {
            self.pos += 1;
            let second_start = self.pos;
            let second_end = impl_path_end(self.toks, self.pos);
            self.pos = second_end;
            (
                path_head_ident(&self.toks[second_start..second_end]),
                Some(path_head_ident(&self.toks[first_start..first_end])),
                generic_arg_idents(&self.toks[first_start..first_end]),
            )
        } else {
            (
                path_head_ident(&self.toks[first_start..first_end]),
                None,
                Vec::new(),
            )
        };
        // Where clause.
        while self.pos < self.toks.len() && !self.is_punct_at(self.pos, '{') {
            if self.is_punct_at(self.pos, ';') {
                self.pos += 1;
                return Some(self.mk(
                    ItemKind::Impl {
                        self_ty,
                        trait_ty,
                        trait_args,
                    },
                    String::new(),
                    is_pub,
                    cfg_test,
                    start,
                ));
            }
            self.pos += 1;
        }
        let open = self.pos;
        let close = matching(self.toks, open, '{', '}')?;
        self.pos = open + 1;
        let children = self.items_until(close, cfg_test);
        self.pos = close + 1;
        let mut item = self.mk(
            ItemKind::Impl {
                self_ty,
                trait_ty,
                trait_args,
            },
            String::new(),
            is_pub,
            cfg_test,
            start,
        );
        item.children = children;
        Some(item)
    }

    fn trait_item(
        &mut self,
        start: usize,
        is_pub: bool,
        cfg_test: bool,
        end: usize,
    ) -> Option<Item> {
        self.pos += 1; // `trait`
        let name = self.ident_here()?;
        while self.pos < end && !self.is_punct_at(self.pos, '{') && !self.is_punct_at(self.pos, ';')
        {
            self.pos += 1;
        }
        if self.is_punct_at(self.pos, '{') {
            let open = self.pos;
            let close = matching(self.toks, open, '{', '}')?;
            self.pos = open + 1;
            let children = self.items_until(close, cfg_test);
            self.pos = close + 1;
            let mut item = self.mk(ItemKind::Trait, name, is_pub, cfg_test, start);
            item.children = children;
            return Some(item);
        }
        self.pos += 1;
        Some(self.mk(ItemKind::Trait, name, is_pub, cfg_test, start))
    }

    fn type_alias(
        &mut self,
        start: usize,
        is_pub: bool,
        cfg_test: bool,
        end: usize,
    ) -> Option<Item> {
        self.pos += 1; // `type`
        let name = self.ident_here()?;
        if self.is_punct_at(self.pos, '<') {
            self.pos = skip_generics(self.toks, self.pos)?;
        }
        let stop = stmt_end(self.toks, self.pos).min(end);
        let mut target = (self.pos, self.pos);
        if self.is_punct_at(self.pos, '=') {
            target = (self.pos + 1, stop.saturating_sub(1).max(self.pos + 1));
        }
        self.pos = stop;
        Some(self.mk(
            ItemKind::TypeAlias { target },
            name,
            is_pub,
            cfg_test,
            start,
        ))
    }

    fn named_item(
        &mut self,
        start: usize,
        is_pub: bool,
        cfg_test: bool,
        end: usize,
        kind: ItemKind,
    ) -> Option<Item> {
        self.pos += 1; // keyword
        let name = self.ident_here()?;
        self.pos = item_end(self.toks, self.pos).min(end);
        Some(self.mk(kind, name, is_pub, cfg_test, start))
    }

    fn ident_here(&mut self) -> Option<String> {
        let t = self.at(self.pos)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        let name = t.text.clone();
        self.pos += 1;
        Some(name)
    }
}

/// Expand one use tree into leaf targets. `prefix` is the path so far.
fn parse_use_tree(
    toks: &[Tok],
    pos: &mut usize,
    stop: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseTarget>,
) {
    let depth_here = prefix.len();
    let mut segment: Option<String> = None;
    while *pos < stop {
        let t = &toks[*pos];
        match &t.kind {
            TokKind::Ident => {
                if t.text == "as" {
                    *pos += 1;
                    if *pos < stop && toks[*pos].kind == TokKind::Ident {
                        let alias = toks[*pos].text.clone();
                        *pos += 1;
                        if let Some(seg) = segment.take() {
                            let mut path = prefix.clone();
                            path.push(seg);
                            out.push(UseTarget {
                                path,
                                alias,
                                glob: false,
                            });
                        }
                    }
                } else {
                    // Flush a pending leaf before starting a new segment at
                    // the same level (`{a, b}` without `::`).
                    segment = Some(t.text.clone());
                    *pos += 1;
                }
            }
            TokKind::Punct(':') => {
                // `::` — the pending segment is a path component.
                *pos += 1;
                if *pos < stop && toks[*pos].is_punct(':') {
                    *pos += 1;
                }
                if let Some(seg) = segment.take() {
                    prefix.push(seg);
                }
            }
            TokKind::Punct('*') => {
                *pos += 1;
                out.push(UseTarget {
                    path: prefix.clone(),
                    alias: String::new(),
                    glob: true,
                });
            }
            TokKind::Punct('{') => {
                let close = matching(toks, *pos, '{', '}').unwrap_or(stop);
                *pos += 1;
                // Each comma-separated branch re-enters the tree parser.
                while *pos < close {
                    parse_use_tree(toks, pos, close, prefix, out);
                    if *pos < close && toks[*pos].is_punct(',') {
                        *pos += 1;
                    }
                }
                *pos = close + 1;
            }
            TokKind::Punct(',') | TokKind::Punct(';') | TokKind::Punct('}') => break,
            _ => {
                *pos += 1;
            }
        }
    }
    // A trailing bare segment is a leaf: `use a::b;` or `{self, c}`.
    if let Some(seg) = segment {
        let mut path = prefix.clone();
        let alias = if seg == "self" {
            // `use a::b::{self}` imports `b` itself.
            path.last().cloned().unwrap_or_default()
        } else {
            path.push(seg.clone());
            seg
        };
        out.push(UseTarget {
            path,
            alias,
            glob: false,
        });
    }
    prefix.truncate(depth_here);
}

/// `#[cfg(test)]`, `#[cfg(any(test, …))]`, `#[test]`.
pub(crate) fn attr_is_test(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") => attr.len() == 1,
        Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Is this a *positive* `cfg(modelcheck_mutation = "…")` attribute? A
/// `not(…)` anywhere makes it the good twin's guard, not a mutation.
pub(crate) fn attr_is_mutation(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("cfg") => {
            attr.iter().any(|t| t.is_ident("modelcheck_mutation"))
                && !attr.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    }
}

/// Matching close delimiter for the open delimiter at `open`.
pub(crate) fn matching(toks: &[Tok], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index one past the item starting at `start`: skips to the first `;` at
/// delimiter depth 0, or past the first matched `{ … }` block.
pub(crate) fn item_end(toks: &[Tok], mut start: usize) -> usize {
    let n = toks.len();
    while start < n && toks[start].is_punct('#') && start + 1 < n && toks[start + 1].is_punct('[') {
        match matching(toks, start + 1, '[', ']') {
            Some(c) => start = c + 1,
            None => return n,
        }
    }
    let mut i = start;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < n {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct(';') if paren == 0 && bracket == 0 => return i + 1,
            TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                return matching(toks, i, '{', '}').map(|c| c + 1).unwrap_or(n);
            }
            _ => {}
        }
        i += 1;
    }
    n
}

/// One past the `;` ending the statement at `from`, tracking all three
/// delimiter kinds — `let x = match y { … };` ends after the semicolon,
/// not inside the match.
pub(crate) fn stmt_end(toks: &[Tok], from: usize) -> usize {
    let n = toks.len();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut i = from;
    while i < n {
        match toks[i].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => {
                brace -= 1;
                if brace < 0 {
                    return i; // scope closed before any `;`
                }
            }
            TokKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    n
}

/// Skip a generic parameter list starting at `<`; returns the index after
/// the matching `>`. A `>` that is the second half of `->` (same line,
/// adjacent column, preceded by `-`) does not close a level.
pub(crate) fn skip_generics(toks: &[Tok], open: usize) -> Option<usize> {
    debug_assert!(toks[open].is_punct('<'));
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                let arrow = i > 0
                    && toks[i - 1].is_punct('-')
                    && toks[i - 1].line == toks[i].line
                    && toks[i - 1].col + 1 == toks[i].col;
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i + 1);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// End of a type in return position: the first `{`, `;` or `where` at
/// delimiter depth 0 (angles tracked with the same `->` awareness).
fn type_end(toks: &[Tok], from: usize, stop: usize) -> usize {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut i = from;
    while i < stop.min(toks.len()) {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                let arrow = i > 0
                    && toks[i - 1].is_punct('-')
                    && toks[i - 1].line == toks[i].line
                    && toks[i - 1].col + 1 == toks[i].col;
                if !arrow {
                    angle -= 1;
                }
            }
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct('{') | TokKind::Punct(';')
                if angle <= 0 && paren == 0 && bracket == 0 =>
            {
                return i;
            }
            TokKind::Ident if t.text == "where" && angle <= 0 && paren == 0 && bracket == 0 => {
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    stop.min(toks.len())
}

/// End of a type path in an impl header: stops before `for`, `where`, `{`
/// or `;` at angle depth 0.
fn impl_path_end(toks: &[Tok], from: usize) -> usize {
    let mut angle = 0i32;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') | TokKind::Punct(';') if angle <= 0 => return i,
            TokKind::Ident if angle <= 0 && (t.text == "for" || t.text == "where") => return i,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// The type's head identifier: last path segment before any generics —
/// `rdfref_storage::Evaluator<'a>` → `Evaluator`; `&mut Foo` → `Foo`.
pub(crate) fn path_head_ident(toks: &[Tok]) -> String {
    let mut head = String::new();
    for t in toks {
        match &t.kind {
            TokKind::Punct('<') => break,
            TokKind::Ident if !matches!(t.text.as_str(), "dyn" | "mut" | "r#dyn") => {
                head = t.text.clone();
            }
            _ => {}
        }
    }
    head
}

/// Identifier tokens inside the first `< … >` of a type path —
/// `From<QueryError>` → `["QueryError"]`.
fn generic_arg_idents(toks: &[Tok]) -> Vec<String> {
    let Some(open) = toks.iter().position(|t| t.is_punct('<')) else {
        return Vec::new();
    };
    toks[open + 1..]
        .iter()
        .take_while(|t| !t.is_punct('>'))
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// Walk a method-call receiver chain *backwards* from the `.` before the
/// method name; returns the identifier segments bottom-up — for
/// `self.shard_of(key).lock()` seen from `lock`'s dot, this yields
/// `["self", "shard_of"]`. Call argument lists are skipped.
pub(crate) fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut i = dot; // the '.'
    loop {
        if i == 0 {
            break;
        }
        i -= 1; // element before the dot
                // Skip one call's arguments.
        if toks[i].is_punct(')') {
            let mut depth = 0i32;
            loop {
                if toks[i].is_punct(')') {
                    depth += 1;
                } else if toks[i].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if i == 0 {
                    return segs.into_iter().rev().collect();
                }
                i -= 1;
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
        if toks[i].kind != TokKind::Ident {
            break;
        }
        segs.push(toks[i].text.clone());
        // Continue only through another `.` (stop at `::`, operators, …).
        if i == 0 || !toks[i - 1].is_punct('.') {
            break;
        }
        i -= 1; // the next '.'
    }
    segs.into_iter().rev().collect()
}

/// Start of the statement containing `at`: the token after the nearest
/// `;`, `{` or `}` before it at the same nesting.
pub(crate) fn stmt_start(toks: &[Tok], at: usize) -> usize {
    let mut i = at;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i > 0 {
        let t = &toks[i - 1];
        match t.kind {
            TokKind::Punct(')') => paren += 1,
            TokKind::Punct('(') => {
                paren -= 1;
                if paren < 0 {
                    return i;
                }
            }
            TokKind::Punct(']') => bracket += 1,
            TokKind::Punct('[') => {
                bracket -= 1;
                if bracket < 0 {
                    return i;
                }
            }
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
                if paren == 0 && bracket == 0 =>
            {
                return i;
            }
            _ => {}
        }
        i -= 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn names(items: &[Item]) -> Vec<&str> {
        items.iter().map(|i| i.name.as_str()).collect()
    }

    #[test]
    fn parses_fns_mods_and_impls() {
        let src = r#"
            pub fn free(x: u32) -> Result<u32, E> { Ok(x) }
            mod inner {
                pub(crate) fn hidden() {}
            }
            impl Foo {
                pub fn method(&self) -> bool { true }
            }
            impl From<Bar> for Foo {
                fn from(b: Bar) -> Foo { Foo }
            }
        "#;
        let items = parse_items(&lex(src));
        assert_eq!(items.len(), 4);
        assert!(matches!(&items[0].kind, ItemKind::Fn(sig) if sig.body.is_some()));
        assert!(items[0].is_pub);
        match &items[1].kind {
            ItemKind::Module { inline: true } => {
                assert_eq!(names(&items[1].children), ["hidden"]);
                assert!(!items[1].children[0].is_pub, "pub(crate) is not pub");
            }
            other => panic!("expected module, got {other:?}"),
        }
        match &items[2].kind {
            ItemKind::Impl {
                self_ty, trait_ty, ..
            } => {
                assert_eq!(self_ty, "Foo");
                assert!(trait_ty.is_none());
                assert_eq!(names(&items[2].children), ["method"]);
            }
            other => panic!("expected impl, got {other:?}"),
        }
        match &items[3].kind {
            ItemKind::Impl {
                self_ty,
                trait_ty,
                trait_args,
            } => {
                assert_eq!(self_ty, "Foo");
                assert_eq!(trait_ty.as_deref(), Some("From"));
                assert_eq!(trait_args, &["Bar"]);
            }
            other => panic!("expected From impl, got {other:?}"),
        }
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail() {
        let src = "fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }";
        let items = parse_items(&lex(src));
        assert_eq!(items.len(), 1);
        let ItemKind::Fn(sig) = &items[0].kind else {
            panic!("not a fn: {:?}", items[0].kind);
        };
        assert!(sig.body.is_some());
    }

    #[test]
    fn use_trees_expand_groups_globs_and_aliases() {
        let src = "use a::b::{c, d as e, f::*, self};";
        let items = parse_items(&lex(src));
        let ItemKind::Use { targets } = &items[0].kind else {
            panic!("not a use: {:?}", items[0].kind);
        };
        let find = |alias: &str| targets.iter().find(|t| t.alias == alias);
        assert_eq!(find("c").unwrap().path, ["a", "b", "c"]);
        assert_eq!(find("e").unwrap().path, ["a", "b", "d"]);
        assert_eq!(find("b").unwrap().path, ["a", "b"], "self imports b");
        let glob = targets.iter().find(|t| t.glob).unwrap();
        assert_eq!(glob.path, ["a", "b", "f"]);
    }

    #[test]
    fn cfg_test_marks_items_and_descendants() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod checks {
                fn helper() {}
            }
            mod tests {
                fn also_exempt() {}
            }
        "#;
        let items = parse_items(&lex(src));
        assert!(!items[0].cfg_test);
        assert!(items[1].cfg_test);
        assert!(items[1].children[0].cfg_test);
        assert!(items[2].cfg_test, "mod tests is exempt by name");
    }

    #[test]
    fn type_alias_records_target() {
        let src = "pub type Result<T> = std::result::Result<T, StorageError>;";
        let items = parse_items(&lex(src));
        let ItemKind::TypeAlias { target } = &items[0].kind else {
            panic!("not an alias: {:?}", items[0].kind);
        };
        let toks = lex(src);
        let idents: Vec<_> = toks[target.0..target.1]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert!(idents.contains(&"StorageError".to_string()));
    }

    #[test]
    fn receiver_chains_walk_through_calls() {
        let toks = lex("self.shard_of(key).lock()");
        let dot = toks.iter().rposition(|t| t.is_punct('.')).expect("a dot");
        assert_eq!(receiver_chain(&toks, dot), ["self", "shard_of"]);
        let toks = lex("registry.counters.lock()");
        let dot = toks.iter().rposition(|t| t.is_punct('.')).unwrap();
        assert_eq!(receiver_chain(&toks, dot), ["registry", "counters"]);
    }
}
