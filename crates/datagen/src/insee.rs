//! INSEE-like statistical data.
//!
//! The French statistical (INSEE) datasets pair a **wide, flat** concept
//! scheme — many sibling code-list classes under a handful of parents — with
//! large numbers of observation resources carrying literal measurements.
//! Width (not depth) drives rule-1/9 unfolding here: a query over a parent
//! class unions over *all* its children at once.

use crate::builder::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfref_model::{Graph, TermId};

/// The namespace.
pub const INSEE: &str = "http://stat.example.org/schema#";

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct InseeConfig {
    /// Number of top-level statistical concepts (e.g. Population, Housing).
    pub concepts: usize,
    /// Code-list classes per concept (the *width*).
    pub codes_per_concept: usize,
    /// Observations per code.
    pub observations_per_code: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InseeConfig {
    fn default() -> Self {
        InseeConfig {
            concepts: 4,
            codes_per_concept: 30,
            observations_per_code: 15,
            seed: 0x1753,
        }
    }
}

/// A generated statistical dataset.
#[derive(Debug, Clone)]
pub struct InseeDataset {
    /// The graph.
    pub graph: Graph,
    /// The root `Observation` class.
    pub observation: TermId,
    /// Top-level concept classes (each with `codes_per_concept` subclasses).
    pub concept_classes: Vec<TermId>,
    /// The `measure` property (literal-valued).
    pub measure: TermId,
    /// The `refArea` property.
    pub ref_area: TermId,
}

/// Generate a dataset.
pub fn generate(config: &InseeConfig) -> InseeDataset {
    let mut b = GraphBuilder::new();
    let observation = b.ns(INSEE, "Observation");
    let measure = b.ns(INSEE, "measure");
    let ref_area = b.ns(INSEE, "refArea");
    let area = b.ns(INSEE, "Area");
    b.domain(measure, observation);
    b.domain(ref_area, observation);
    b.range(ref_area, area);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut concept_classes = Vec::with_capacity(config.concepts);
    let area_ids: Vec<TermId> = (0..50)
        .map(|i| {
            let id = b.iri(&format!("http://stat.example.org/area/{i}"));
            b.a(id, area);
            id
        })
        .collect();

    for ci in 0..config.concepts {
        let concept = b.ns(INSEE, &format!("Concept{ci}"));
        b.subclass(concept, observation);
        concept_classes.push(concept);
        for code in 0..config.codes_per_concept {
            let code_class = b.ns(INSEE, &format!("Concept{ci}Code{code}"));
            b.subclass(code_class, concept);
            for obs in 0..config.observations_per_code {
                let id = b.iri(&format!("http://stat.example.org/obs/c{ci}k{code}n{obs}"));
                b.a(id, code_class);
                let value = b.literal(&format!("{}", rng.gen_range(0..1_000_000)));
                b.triple(id, measure, value);
                let a = area_ids[rng.gen_range(0..area_ids.len())];
                b.triple(id, ref_area, a);
            }
        }
    }

    InseeDataset {
        graph: b.finish(),
        observation,
        concept_classes,
        measure,
        ref_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::Schema;

    #[test]
    fn width_matches_config() {
        let ds = generate(&InseeConfig {
            concepts: 2,
            codes_per_concept: 10,
            observations_per_code: 1,
            seed: 3,
        });
        let cl = Schema::from_graph(&ds.graph).closure();
        // Observation has 2 concepts + 20 codes = 22 strict subclasses.
        assert_eq!(cl.subclasses_of(ds.observation).count(), 22);
        // Each concept has exactly its codes.
        for &c in &ds.concept_classes {
            assert_eq!(cl.subclasses_of(c).count(), 10);
        }
    }

    #[test]
    fn observations_are_leaf_typed() {
        let ds = generate(&InseeConfig {
            concepts: 1,
            codes_per_concept: 3,
            observations_per_code: 2,
            seed: 4,
        });
        use rdfref_model::dictionary::ID_RDF_TYPE;
        let obs_types = ds
            .graph
            .iter()
            .filter(|t| t.p == ID_RDF_TYPE && t.o == ds.observation)
            .count();
        assert_eq!(obs_types, 0, "no explicit Observation typing");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(&InseeConfig::default()).graph,
            generate(&InseeConfig::default()).graph
        );
    }
}
