//! Parameterized synthetic ontologies for the constraint-impact sweeps
//! (experiment E4 — demo step 4: "propose modifications to the available
//! RDF data and constraints … constraints … may have a dramatic impact").
//!
//! The generator builds a class *tree* of configurable depth and fan-out
//! rooted at `Thing`, a parallel property hierarchy, and domain/range
//! attachments — the three knobs that govern UCQ reformulation size — plus
//! leaf-typed instance data of configurable size.

use crate::builder::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfref_model::{Graph, TermId};

/// The namespace.
pub const SWEEP: &str = "http://sweep.example.org/schema#";

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Depth of the class tree (0 = just the root).
    pub class_depth: usize,
    /// Fan-out of the class tree.
    pub class_fanout: usize,
    /// Depth of the property chain under the root property.
    pub property_depth: usize,
    /// Attach a domain (the root class) to every property?
    pub with_domains: bool,
    /// Attach a range (the root class) to every property?
    pub with_ranges: bool,
    /// Instances generated per leaf class.
    pub instances_per_leaf: usize,
    /// Property edges generated per instance.
    pub edges_per_instance: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            class_depth: 3,
            class_fanout: 3,
            property_depth: 3,
            with_domains: true,
            with_ranges: true,
            instances_per_leaf: 5,
            edges_per_instance: 2,
            seed: 0x53ee9,
        }
    }
}

/// A generated sweep dataset.
#[derive(Debug, Clone)]
pub struct SweepDataset {
    /// The graph.
    pub graph: Graph,
    /// The root class (`Thing`).
    pub root_class: TermId,
    /// The root property (`related`).
    pub root_property: TermId,
    /// All class ids, root first, in BFS order.
    pub classes: Vec<TermId>,
    /// All property ids, root first.
    pub properties: Vec<TermId>,
}

/// Generate a dataset.
pub fn generate(config: &SweepConfig) -> SweepDataset {
    let mut b = GraphBuilder::new();
    let root_class = b.ns(SWEEP, "Thing");
    let root_property = b.ns(SWEEP, "related");

    // Class tree, BFS.
    let mut classes = vec![root_class];
    let mut frontier = vec![root_class];
    let mut counter = 0usize;
    for _ in 0..config.class_depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..config.class_fanout {
                let class = b.ns(SWEEP, &format!("C{counter}"));
                counter += 1;
                b.subclass(class, parent);
                classes.push(class);
                next.push(class);
            }
        }
        frontier = next;
    }
    let leaves = if frontier.is_empty() {
        vec![root_class]
    } else {
        frontier
    };

    // Property chain.
    let mut properties = vec![root_property];
    let mut prev = root_property;
    for i in 0..config.property_depth {
        let p = b.ns(SWEEP, &format!("p{i}"));
        b.subproperty(p, prev);
        properties.push(p);
        prev = p;
    }
    for &p in &properties {
        if config.with_domains {
            b.domain(p, root_class);
        }
        if config.with_ranges {
            b.range(p, root_class);
        }
    }

    // Instances: leaf-typed, connected with the most specific property.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let leaf_prop = properties.last().copied().unwrap_or(root_property);
    let mut instances: Vec<TermId> = Vec::new();
    for (li, &leaf) in leaves.iter().enumerate() {
        for i in 0..config.instances_per_leaf {
            let id = b.iri(&format!("http://sweep.example.org/i/L{li}N{i}"));
            b.a(id, leaf);
            instances.push(id);
        }
    }
    for &i in &instances {
        for _ in 0..config.edges_per_instance {
            if instances.len() > 1 {
                let j = instances[rng.gen_range(0..instances.len())];
                b.triple(i, leaf_prop, j);
            }
        }
    }

    SweepDataset {
        graph: b.finish(),
        root_class,
        root_property,
        classes,
        properties,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::Schema;

    #[test]
    fn class_count_is_geometric() {
        let ds = generate(&SweepConfig {
            class_depth: 2,
            class_fanout: 3,
            instances_per_leaf: 0,
            edges_per_instance: 0,
            ..SweepConfig::default()
        });
        // 1 + 3 + 9 = 13 classes.
        assert_eq!(ds.classes.len(), 13);
        let cl = Schema::from_graph(&ds.graph).closure();
        assert_eq!(cl.subclasses_of(ds.root_class).count(), 12);
    }

    #[test]
    fn property_chain_links_to_root() {
        let ds = generate(&SweepConfig::default());
        let cl = Schema::from_graph(&ds.graph).closure();
        let leaf = *ds.properties.last().unwrap();
        assert!(cl.is_subproperty(leaf, ds.root_property));
        // Effective domains fold through the chain.
        assert!(cl.domains_of(leaf).any(|c| c == ds.root_class));
    }

    #[test]
    fn domains_and_ranges_togglable() {
        let ds = generate(&SweepConfig {
            with_domains: false,
            with_ranges: false,
            ..SweepConfig::default()
        });
        let schema = Schema::from_graph(&ds.graph);
        assert!(schema.domain.is_empty());
        assert!(schema.range.is_empty());
    }

    #[test]
    fn depth_zero_has_only_root() {
        let ds = generate(&SweepConfig {
            class_depth: 0,
            class_fanout: 5,
            instances_per_leaf: 2,
            ..SweepConfig::default()
        });
        assert_eq!(ds.classes.len(), 1);
        // Instances typed with the root itself.
        use rdfref_model::dictionary::ID_RDF_TYPE;
        assert!(ds
            .graph
            .iter()
            .any(|t| t.p == ID_RDF_TYPE && t.o == ds.root_class));
    }
}
