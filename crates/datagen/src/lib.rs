//! # rdfref-datagen — synthetic RDF workloads
//!
//! The demo runs "on real and synthetic RDF data sets, such as French
//! statistical (INSEE) and geographical (IGN) data, DBLP, and LUBM" (§5).
//! The real datasets are not redistributable; this crate generates synthetic
//! stand-ins with the same *shape* (see the substitution table in
//! `DESIGN.md`):
//!
//! * [`lubm`] — a parameterized LUBM-like university benchmark: the
//!   univ-bench class/property hierarchy (leaf-typed instances, so RDFS
//!   reasoning is required for completeness) and the degree/membership
//!   properties that the paper's Example 1 exercises;
//! * [`biblio`] — DBLP-like bibliographic data: publication type hierarchy,
//!   Zipf-skewed authorship;
//! * [`geo`] — IGN-like geographic data: a *deep* administrative-area
//!   subclass chain (reformulation depth stressor);
//! * [`insee`] — INSEE-like statistical data: *wide* flat code-list
//!   hierarchies (reformulation breadth stressor);
//! * [`onto_sweep`] — fully parameterized synthetic ontologies
//!   (depth × fan-out × property count) for the constraint-impact sweeps of
//!   experiment E4;
//! * [`queries`] — the query workload: the paper's Example 1 plus a mix of
//!   LUBM-style queries used by experiments E2/E3/E5/E8;
//! * [`wcoj`] — a wedge-heavy, triangle-light cyclic-join stressor for the
//!   worst-case-optimal join experiment E12.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]

pub mod biblio;
pub mod builder;
pub mod error;
pub mod geo;
pub mod insee;
pub mod lubm;
pub mod onto_sweep;
pub mod queries;
pub mod wcoj;

pub use builder::GraphBuilder;
pub use error::{DatagenError, Result};
pub use lubm::{LubmConfig, LubmDataset};
