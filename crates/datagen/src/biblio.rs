//! DBLP-like bibliographic data.
//!
//! The shape that matters (cf. the real DBLP dump the demo uses): a shallow
//! publication type hierarchy, a heavily *skewed* authorship distribution
//! (a few prolific authors, a long tail), and literal-valued metadata.
//! The skew is what differentiates cover choices on author-centric queries:
//! per-author selections are tiny, per-type scans are huge.

use crate::builder::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfref_model::{Graph, TermId};

/// The namespace of the bibliographic vocabulary.
pub const BIB: &str = "http://bib.example.org/schema#";

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct BiblioConfig {
    /// Number of publications.
    pub publications: usize,
    /// Number of authors (Zipf-distributed productivity).
    pub authors: usize,
    /// Zipf exponent of the author distribution (≈1 for DBLP-like skew).
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BiblioConfig {
    fn default() -> Self {
        BiblioConfig {
            publications: 2_000,
            authors: 400,
            zipf_exponent: 1.0,
            seed: 0xd81b,
        }
    }
}

/// Vocabulary ids.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub struct BiblioVocab {
    pub publication: TermId,
    pub article: TermId,
    pub journal_article: TermId,
    pub in_proceedings: TermId,
    pub book: TermId,
    pub phd_thesis: TermId,
    pub person: TermId,
    pub creator: TermId, // super-property
    pub author: TermId,  // ⊑ creator
    pub editor: TermId,  // ⊑ creator
    pub title: TermId,
    pub year: TermId,
    pub cites: TermId,
}

/// A generated bibliographic dataset.
#[derive(Debug, Clone)]
pub struct BiblioDataset {
    /// The graph.
    pub graph: Graph,
    /// Vocabulary ids.
    pub vocab: BiblioVocab,
}

/// Generate a dataset.
pub fn generate(config: &BiblioConfig) -> BiblioDataset {
    let mut b = GraphBuilder::new();
    let c = |b: &mut GraphBuilder, n: &str| b.ns(BIB, n);
    let vocab = BiblioVocab {
        publication: c(&mut b, "Publication"),
        article: c(&mut b, "Article"),
        journal_article: c(&mut b, "JournalArticle"),
        in_proceedings: c(&mut b, "InProceedings"),
        book: c(&mut b, "Book"),
        phd_thesis: c(&mut b, "PhdThesis"),
        person: c(&mut b, "Person"),
        creator: c(&mut b, "creator"),
        author: c(&mut b, "author"),
        editor: c(&mut b, "editor"),
        title: c(&mut b, "title"),
        year: c(&mut b, "year"),
        cites: c(&mut b, "cites"),
    };
    let v = &vocab;
    for (sub, sup) in [
        (v.article, v.publication),
        (v.journal_article, v.article),
        (v.in_proceedings, v.article),
        (v.book, v.publication),
        (v.phd_thesis, v.publication),
    ] {
        b.subclass(sub, sup);
    }
    b.subproperty(v.author, v.creator);
    b.subproperty(v.editor, v.creator);
    b.domain(v.creator, v.publication);
    b.range(v.creator, v.person);
    b.domain(v.cites, v.publication);
    b.range(v.cites, v.publication);

    let mut rng = StdRng::seed_from_u64(config.seed);

    // Precompute Zipf CDF over authors.
    let weights: Vec<f64> = (1..=config.authors.max(1))
        .map(|r| 1.0 / (r as f64).powf(config.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let pick_author = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.gen();
        cdf.partition_point(|&p| p < x).min(config.authors - 1)
    };

    let author_ids: Vec<TermId> = (0..config.authors)
        .map(|i| b.iri(&format!("http://bib.example.org/author/{i}")))
        .collect();
    let leaf_classes = [v.journal_article, v.in_proceedings, v.book, v.phd_thesis];
    let mut pub_ids: Vec<TermId> = Vec::with_capacity(config.publications);
    for i in 0..config.publications {
        let id = b.iri(&format!("http://bib.example.org/pub/{i}"));
        b.a(id, leaf_classes[rng.gen_range(0..leaf_classes.len())]);
        let title = b.literal(&format!("Title of publication {i}"));
        b.triple(id, v.title, title);
        let year = b.literal(&format!("{}", 1970 + rng.gen_range(0..45)));
        b.triple(id, v.year, year);
        for _ in 0..rng.gen_range(1..=3usize) {
            let a = author_ids[pick_author(&mut rng)];
            b.triple(id, v.author, a);
        }
        if i % 7 == 0 {
            let e = author_ids[pick_author(&mut rng)];
            b.triple(id, v.editor, e);
        }
        // Citations into the already-generated prefix.
        if !pub_ids.is_empty() {
            for _ in 0..rng.gen_range(0..=2usize) {
                let cited = pub_ids[rng.gen_range(0..pub_ids.len())];
                b.triple(id, v.cites, cited);
            }
        }
        pub_ids.push(id);
    }

    BiblioDataset {
        graph: b.finish(),
        vocab,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::dictionary::ID_RDF_TYPE;

    #[test]
    fn deterministic_and_sized() {
        let cfg = BiblioConfig {
            publications: 100,
            authors: 20,
            ..BiblioConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.graph, b.graph);
        assert!(a.graph.len() > 300);
    }

    #[test]
    fn authorship_is_skewed() {
        let ds = generate(&BiblioConfig::default());
        // Count per-author in-degree of `author` edges.
        let mut counts: std::collections::HashMap<TermId, usize> = Default::default();
        for t in ds.graph.iter() {
            if t.p == ds.vocab.author {
                *counts.entry(t.o).or_insert(0) += 1;
            }
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        // The busiest author dwarfs the median (Zipf).
        let median = v[v.len() / 2];
        assert!(v[0] >= 5 * median.max(1), "top {} median {}", v[0], median);
    }

    #[test]
    fn leaf_typing_only() {
        let ds = generate(&BiblioConfig {
            publications: 50,
            authors: 10,
            ..BiblioConfig::default()
        });
        for t in ds.graph.iter() {
            if t.p == ID_RDF_TYPE {
                assert_ne!(t.o, ds.vocab.publication);
                assert_ne!(t.o, ds.vocab.article);
            }
        }
    }
}
