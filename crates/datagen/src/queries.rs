//! The query workload: the paper's Example 1 and a LUBM-style query mix.

use crate::error::{DatagenError, Result};
use crate::lubm::LubmDataset;
use rdfref_model::dictionary::{ID_RDFS_SUBCLASSOF, ID_RDF_TYPE};
use rdfref_query::ast::{Atom, Cq};
use rdfref_query::Var;

fn v(n: &str) -> Var {
    Var::new(n)
}

/// The Example-1 query of §4 of the paper:
///
/// ```text
/// q(x, u, y, v, z) :- x rdf:type u,                      (t1)
///                     y rdf:type v,                      (t2)
///                     x ub:mastersDegreeFrom  <UnivK>,   (t3)
///                     y ub:doctoralDegreeFrom <UnivK>,   (t4)
///                     x ub:memberOf z,                   (t5)
///                     y ub:memberOf z                    (t6)
/// ```
///
/// `target_university` selects `<UnivK>` (the paper uses Univ532 of the
/// 100M-triple LUBM; any generated university index works here).
pub fn example1(ds: &LubmDataset, target_university: usize) -> Result<Cq> {
    let univ = ds
        .id_of(&LubmDataset::university_iri(target_university))
        .ok_or_else(|| DatagenError::MissingEntity(format!("university {target_university}")))?;
    let vb = &ds.vocab;
    let cq = Cq::new(
        vec![v("x"), v("u"), v("y"), v("v"), v("z")],
        vec![
            Atom::new(v("x"), ID_RDF_TYPE, v("u")),
            Atom::new(v("y"), ID_RDF_TYPE, v("v")),
            Atom::new(v("x"), vb.masters_degree_from, univ),
            Atom::new(v("y"), vb.doctoral_degree_from, univ),
            Atom::new(v("x"), vb.member_of, v("z")),
            Atom::new(v("y"), vb.member_of, v("z")),
        ],
    )?;
    Ok(cq)
}

/// The paper's winning cover for Example 1:
/// `{{t1,t3}, {t3,t5}, {t2,t4}, {t4,t6}}`.
pub fn example1_paper_cover() -> Result<rdfref_query::Cover> {
    let cover = rdfref_query::Cover::new(vec![vec![0, 2], vec![2, 4], vec![1, 3], vec![3, 5]], 6)?;
    Ok(cover)
}

/// A named query.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Short identifier used in experiment tables (e.g. `Q03`).
    pub name: &'static str,
    /// What the query asks.
    pub description: &'static str,
    /// The query.
    pub cq: Cq,
}

/// The LUBM-style mix used by experiments E2/E3/E5/E8. All queries are
/// answerable on any generated dataset (they reference university 0,
/// department 0 and professor 0, which always exist).
pub fn lubm_mix(ds: &LubmDataset) -> Result<Vec<NamedQuery>> {
    let vb = &ds.vocab;
    let dept0 = ds
        .id_of(&LubmDataset::department_iri(0, 0))
        .ok_or_else(|| DatagenError::MissingEntity("department 0".into()))?;
    let univ0 = ds
        .id_of(&LubmDataset::university_iri(0))
        .ok_or_else(|| DatagenError::MissingEntity("university 0".into()))?;
    let prof0 = ds
        .id_of(&LubmDataset::full_professor_iri(0, 0, 0))
        .ok_or_else(|| DatagenError::MissingEntity("professor 0".into()))?;
    let course0 = ds
        .id_of(&LubmDataset::graduate_course_iri(0, 0, 0))
        .ok_or_else(|| DatagenError::MissingEntity("graduate course 0".into()))?;

    Ok(vec![
        NamedQuery {
            name: "Q01",
            description: "graduate students taking a given graduate course",
            cq: Cq::new(
                vec![v("x")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.graduate_student),
                    Atom::new(v("x"), vb.takes_course, course0),
                ],
            )?,
        },
        NamedQuery {
            name: "Q02",
            description: "persons who are members of a given department (needs subclass + subproperty reasoning)",
            cq: Cq::new(
                vec![v("x")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.person),
                    Atom::new(v("x"), vb.member_of, dept0),
                ],
            )?,
        },
        NamedQuery {
            name: "Q03",
            description: "publications of a given professor (needs subclass reasoning over Publication)",
            cq: Cq::new(
                vec![v("x")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.publication),
                    Atom::new(v("x"), vb.publication_author, prof0),
                ],
            )?,
        },
        NamedQuery {
            name: "Q04",
            description: "professors working for a given department, with their names",
            cq: Cq::new(
                vec![v("x"), v("n")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.professor),
                    Atom::new(v("x"), vb.works_for, dept0),
                    Atom::new(v("x"), vb.name, v("n")),
                ],
            )?,
        },
        NamedQuery {
            name: "Q05",
            description: "all (person, organization) membership pairs",
            cq: Cq::new(
                vec![v("x"), v("z")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.person),
                    Atom::new(v("x"), vb.member_of, v("z")),
                ],
            )?,
        },
        NamedQuery {
            name: "Q06",
            description: "all students",
            cq: Cq::new(
                vec![v("x")],
                vec![Atom::new(v("x"), ID_RDF_TYPE, vb.student)],
            )?,
        },
        NamedQuery {
            name: "Q07",
            description: "students taking a course taught by a given professor",
            cq: Cq::new(
                vec![v("x"), v("y")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.student),
                    Atom::new(v("x"), vb.takes_course, v("y")),
                    Atom::new(prof0, vb.teacher_of, v("y")),
                ],
            )?,
        },
        NamedQuery {
            name: "Q08",
            description: "students member of a department of a given university, with email",
            cq: Cq::new(
                vec![v("x"), v("e")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.student),
                    Atom::new(v("x"), vb.member_of, v("y")),
                    Atom::new(v("y"), vb.sub_organization_of, univ0),
                    Atom::new(v("x"), vb.email_address, v("e")),
                ],
            )?,
        },
        NamedQuery {
            name: "Q09",
            description: "advisor triangle: student advised by the teacher of a course they take",
            cq: Cq::new(
                vec![v("x"), v("y"), v("z")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, vb.student),
                    Atom::new(v("y"), ID_RDF_TYPE, vb.faculty),
                    Atom::new(v("z"), ID_RDF_TYPE, vb.course),
                    Atom::new(v("x"), vb.advisor, v("y")),
                    Atom::new(v("y"), vb.teacher_of, v("z")),
                    Atom::new(v("x"), vb.takes_course, v("z")),
                ],
            )?,
        },
        NamedQuery {
            name: "Q10",
            description: "all classes of the members of a given department (variable class position)",
            cq: Cq::new(
                vec![v("x"), v("u")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, v("u")),
                    Atom::new(v("x"), vb.member_of, dept0),
                ],
            )?,
        },
        NamedQuery {
            name: "Q11",
            description: "schema query: all subclasses of Person (needs hierarchy unfolding)",
            cq: Cq::new(
                vec![v("c")],
                vec![Atom::new(v("c"), ID_RDFS_SUBCLASSOF, vb.person)],
            )?,
        },
        NamedQuery {
            name: "Q12",
            description: "everything known about a professor (variable property position)",
            cq: Cq::new(
                vec![v("p"), v("o")],
                vec![Atom::new(prof0, v("p"), v("o"))],
            )?,
        },
    ])
}

/// Query mix for the DBLP-like dataset: author-centric (skew-sensitive),
/// type-hierarchy and citation-join queries.
pub fn biblio_mix(ds: &crate::biblio::BiblioDataset) -> Result<Vec<NamedQuery>> {
    let vb = &ds.vocab;
    let author0 = ds
        .graph
        .dictionary()
        .id_of_iri("http://bib.example.org/author/0")
        .ok_or_else(|| DatagenError::MissingEntity("author 0".into()))?;
    Ok(vec![
        NamedQuery {
            name: "B01",
            description: "works created by the most prolific author (creator ⊒ author/editor)",
            cq: Cq::new(
                vec![v("p")],
                vec![
                    Atom::new(v("p"), ID_RDF_TYPE, vb.publication),
                    Atom::new(v("p"), vb.creator, author0),
                ],
            )?,
        },
        NamedQuery {
            name: "B02",
            description: "articles citing articles (double subclass reasoning)",
            cq: Cq::new(
                vec![v("a"), v("b")],
                vec![
                    Atom::new(v("a"), ID_RDF_TYPE, vb.article),
                    Atom::new(v("a"), vb.cites, v("b")),
                    Atom::new(v("b"), ID_RDF_TYPE, vb.article),
                ],
            )?,
        },
        NamedQuery {
            name: "B03",
            description: "publication kinds with their creators (class variable)",
            cq: Cq::new(
                vec![v("p"), v("t"), v("c")],
                vec![
                    Atom::new(v("p"), ID_RDF_TYPE, v("t")),
                    Atom::new(v("p"), vb.creator, v("c")),
                ],
            )?,
        },
        NamedQuery {
            name: "B04",
            description: "titles of books (leaf class, no reasoning needed)",
            cq: Cq::new(
                vec![v("p"), v("t")],
                vec![
                    Atom::new(v("p"), ID_RDF_TYPE, vb.book),
                    Atom::new(v("p"), vb.title, v("t")),
                ],
            )?,
        },
    ])
}

/// Query mix for the IGN-like dataset: depth stressors.
pub fn geo_mix(ds: &crate::geo::GeoDataset) -> Result<Vec<NamedQuery>> {
    Ok(vec![
        NamedQuery {
            name: "G01",
            description: "all administrative areas (deep subclass chain)",
            cq: Cq::new(
                vec![v("x")],
                vec![Atom::new(v("x"), ID_RDF_TYPE, ds.root_class)],
            )?,
        },
        NamedQuery {
            name: "G02",
            description: "areas with their parents (locatedIn ⊒ directlyLocatedIn)",
            cq: Cq::new(
                vec![v("x"), v("y")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, ds.root_class),
                    Atom::new(v("x"), ds.located_in, v("y")),
                ],
            )?,
        },
        NamedQuery {
            name: "G03",
            description: "schema: the subdivision levels below the root",
            cq: Cq::new(
                vec![v("c")],
                vec![Atom::new(v("c"), ID_RDFS_SUBCLASSOF, ds.root_class)],
            )?,
        },
    ])
}

/// Query mix for the INSEE-like dataset: width stressors.
pub fn insee_mix(ds: &crate::insee::InseeDataset) -> Result<Vec<NamedQuery>> {
    Ok(vec![
        NamedQuery {
            name: "I01",
            description: "all observations (wide flat union over every code list)",
            cq: Cq::new(
                vec![v("x")],
                vec![Atom::new(v("x"), ID_RDF_TYPE, ds.observation)],
            )?,
        },
        NamedQuery {
            name: "I02",
            description: "measures of observations under the first concept",
            cq: Cq::new(
                vec![v("x"), v("m")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, ds.concept_classes[0]),
                    Atom::new(v("x"), ds.measure, v("m")),
                ],
            )?,
        },
        NamedQuery {
            name: "I03",
            description: "observation classes per area (class variable × join)",
            cq: Cq::new(
                vec![v("t"), v("a")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, v("t")),
                    Atom::new(v("x"), ds.ref_area, v("a")),
                ],
            )?,
        },
    ])
}

/// A Zipfian-skewed query schedule: `n` draws over `k` query slots, where
/// slot `r` (0-based popularity rank) is drawn with probability
/// ∝ `1/(r+1)^skew`. `skew = 0` is uniform; `skew ≈ 1` matches the
/// head-heavy mixes real SPARQL endpoints log, which is what makes plan
/// caching and per-shard scatter-gather pay off — the serving benchmark
/// replays this schedule instead of round-robin.
///
/// Deterministic in `seed` (xorshift64*), so concurrent readers can slice
/// one schedule and benchmark runs stay reproducible.
pub fn zipfian_schedule(k: usize, n: usize, skew: f64, seed: u64) -> Vec<usize> {
    assert!(k > 0, "need at least one query slot");
    // Cumulative unnormalized mass per rank.
    let mut cumulative = Vec::with_capacity(k);
    let mut total = 0.0f64;
    for r in 0..k {
        total += 1.0 / ((r + 1) as f64).powf(skew);
        cumulative.push(total);
    }
    // Scramble the seed (splitmix64 step) so adjacent seeds diverge, and
    // keep the xorshift state nonzero.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    state ^= state >> 31;
    state |= 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..n)
        .map(|_| {
            // 53-bit uniform in [0, 1).
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let target = u * total;
            cumulative.partition_point(|&c| c <= target).min(k - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lubm::{generate, LubmConfig};

    #[test]
    fn zipfian_schedule_is_skewed_deterministic_and_in_range() {
        let k = 8;
        let n = 20_000;
        let a = zipfian_schedule(k, n, 1.0, 42);
        let b = zipfian_schedule(k, n, 1.0, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), n);
        assert!(a.iter().all(|&i| i < k));
        let mut counts = vec![0usize; k];
        for &i in &a {
            counts[i] += 1;
        }
        // Head-heavy: rank 0 strictly dominates the tail rank, and the
        // counts roughly follow 1/(r+1): rank0/rank7 ≈ 8 for skew 1.
        assert!(counts[0] > counts[k - 1] * 4, "{counts:?}");
        assert!(
            counts.iter().all(|&c| c > 0),
            "every rank drawn: {counts:?}"
        );
        // Skew 0 degenerates to uniform-ish: no rank dominates 2×.
        let u = zipfian_schedule(k, n, 0.0, 7);
        let mut uc = vec![0usize; k];
        for &i in &u {
            uc[i] += 1;
        }
        let (min, max) = (uc.iter().min().unwrap(), uc.iter().max().unwrap());
        assert!(max / min.max(&1) < 2, "{uc:?}");
        // Different seeds give different schedules.
        assert_ne!(a, zipfian_schedule(k, n, 1.0, 43));
    }

    #[test]
    fn example1_has_the_paper_shape() {
        let ds = generate(&LubmConfig::default());
        let q = example1(&ds, 0).unwrap();
        assert_eq!(q.size(), 6);
        assert_eq!(q.arity(), 5);
        // t1 and t2 have variable class positions.
        assert!(q.body[0].o.is_var() && q.body[1].o.is_var());
        // t3 and t4 share the constant university.
        assert_eq!(q.body[2].o, q.body[3].o);
        // the paper cover is valid for it.
        let cover = example1_paper_cover().unwrap();
        assert_eq!(cover.len(), 4);
    }

    #[test]
    fn mix_is_well_formed_and_diverse() {
        let ds = generate(&LubmConfig::default());
        let mix = lubm_mix(&ds).unwrap();
        assert_eq!(mix.len(), 12);
        let names: std::collections::HashSet<_> = mix.iter().map(|q| q.name).collect();
        assert_eq!(names.len(), 12);
        // At least one schema query and one variable-property query.
        assert!(mix.iter().any(|q| q.name == "Q11"));
        assert!(mix.iter().any(|q| q.cq.body.iter().any(|a| a.p.is_var())));
        // All queries non-empty bodies and valid arity.
        for q in &mix {
            assert!(q.cq.size() >= 1);
            assert!(q.cq.arity() >= 1);
        }
    }

    #[test]
    fn dataset_mixes_are_well_formed() {
        let b = crate::biblio::generate(&crate::biblio::BiblioConfig {
            publications: 30,
            authors: 10,
            ..crate::biblio::BiblioConfig::default()
        });
        assert_eq!(biblio_mix(&b).unwrap().len(), 4);
        let g = crate::geo::generate(&crate::geo::GeoConfig {
            hierarchy_depth: 3,
            areas_per_level: 5,
            seed: 1,
        });
        assert_eq!(geo_mix(&g).unwrap().len(), 3);
        let i = crate::insee::generate(&crate::insee::InseeConfig {
            concepts: 2,
            codes_per_concept: 4,
            observations_per_code: 2,
            seed: 1,
        });
        assert_eq!(insee_mix(&i).unwrap().len(), 3);
        for nq in biblio_mix(&b)
            .unwrap()
            .into_iter()
            .chain(geo_mix(&g).unwrap())
            .chain(insee_mix(&i).unwrap())
        {
            assert!(nq.cq.size() >= 1, "{}", nq.name);
            assert!(!nq.description.is_empty());
        }
    }

    #[test]
    fn example1_errors_on_missing_university() {
        let ds = generate(&LubmConfig::scale(1));
        let err = example1(&ds, 99).unwrap_err();
        assert!(matches!(err, crate::error::DatagenError::MissingEntity(_)));
    }
}
