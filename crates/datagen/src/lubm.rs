//! A parameterized LUBM-like university benchmark.
//!
//! Reproduces the structure of the Lehigh University Benchmark [Guo, Pan &
//! Heflin, 2005] that the paper's Example 1 runs on: the univ-bench
//! class/property hierarchy expressed in RDFS, and data generation per
//! university → department → faculty/students/courses/publications.
//!
//! Two properties matter for reproducing the paper's effects:
//!
//! * instances are typed **only with leaf classes** (a `FullProfessor` is
//!   never explicitly a `Professor`, `Faculty`, `Employee` or `Person`), so
//!   complete answers require reasoning;
//! * faculty are connected to organizations via `worksFor ⊑ memberOf` and to
//!   universities via `mastersDegreeFrom / doctoralDegreeFrom ⊑ degreeFrom`,
//!   the properties of the Example-1 query.

use crate::builder::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfref_model::{Graph, TermId};

/// The univ-bench namespace.
pub const UB: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

/// Generation parameters. Defaults mirror (scaled-down) LUBM densities.
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities (the LUBM scale factor).
    pub universities: usize,
    /// Departments per university.
    pub departments_per_university: usize,
    /// Full professors per department.
    pub full_professors: usize,
    /// Associate professors per department.
    pub associate_professors: usize,
    /// Assistant professors per department.
    pub assistant_professors: usize,
    /// Lecturers per department.
    pub lecturers: usize,
    /// Undergraduate students per department.
    pub undergraduate_students: usize,
    /// Graduate students per department.
    pub graduate_students: usize,
    /// Undergraduate-level courses per department.
    pub courses: usize,
    /// Graduate courses per department.
    pub graduate_courses: usize,
    /// Research groups per department.
    pub research_groups: usize,
    /// Publications per faculty member.
    pub publications_per_faculty: usize,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            universities: 1,
            departments_per_university: 3,
            full_professors: 3,
            associate_professors: 4,
            assistant_professors: 5,
            lecturers: 2,
            undergraduate_students: 40,
            graduate_students: 12,
            courses: 10,
            graduate_courses: 5,
            research_groups: 2,
            publications_per_faculty: 3,
            seed: 0x10b3,
        }
    }
}

impl LubmConfig {
    /// A config with `n` universities and default densities.
    pub fn scale(n: usize) -> Self {
        LubmConfig {
            universities: n.max(1),
            ..LubmConfig::default()
        }
    }
}

/// Dictionary ids of the univ-bench vocabulary.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field names mirror the ontology 1:1
pub struct LubmVocab {
    // Classes.
    pub person: TermId,
    pub employee: TermId,
    pub faculty: TermId,
    pub professor: TermId,
    pub full_professor: TermId,
    pub associate_professor: TermId,
    pub assistant_professor: TermId,
    pub lecturer: TermId,
    pub chair: TermId,
    pub student: TermId,
    pub undergraduate_student: TermId,
    pub graduate_student: TermId,
    pub teaching_assistant: TermId,
    pub research_assistant: TermId,
    pub organization: TermId,
    pub university: TermId,
    pub department: TermId,
    pub research_group: TermId,
    pub work: TermId,
    pub course: TermId,
    pub graduate_course: TermId,
    pub publication: TermId,
    pub article: TermId,
    pub journal_article: TermId,
    pub conference_paper: TermId,
    pub technical_report: TermId,
    pub book: TermId,
    pub software: TermId,
    // Properties.
    pub degree_from: TermId,
    pub masters_degree_from: TermId,
    pub doctoral_degree_from: TermId,
    pub undergraduate_degree_from: TermId,
    pub member_of: TermId,
    pub works_for: TermId,
    pub head_of: TermId,
    pub advisor: TermId,
    pub teacher_of: TermId,
    pub takes_course: TermId,
    pub teaching_assistant_of: TermId,
    pub publication_author: TermId,
    pub sub_organization_of: TermId,
    pub research_interest: TermId,
    pub name: TermId,
    pub email_address: TermId,
}

/// A generated dataset: graph + vocabulary ids + IRI schemes.
#[derive(Debug, Clone)]
pub struct LubmDataset {
    /// The generated graph (schema + data).
    pub graph: Graph,
    /// Vocabulary ids (valid in `graph`'s dictionary).
    pub vocab: LubmVocab,
    /// The config used.
    pub config: LubmConfig,
}

impl LubmDataset {
    /// IRI of university `u`.
    pub fn university_iri(u: usize) -> String {
        format!("http://www.Univ{u}.edu")
    }

    /// IRI of department `d` of university `u`.
    pub fn department_iri(u: usize, d: usize) -> String {
        format!("http://www.Department{d}.Univ{u}.edu")
    }

    /// IRI of full professor `i` of department `(u, d)`.
    pub fn full_professor_iri(u: usize, d: usize, i: usize) -> String {
        format!("{}/FullProfessor{i}", Self::department_iri(u, d))
    }

    /// IRI of graduate course `i` of department `(u, d)`.
    pub fn graduate_course_iri(u: usize, d: usize, i: usize) -> String {
        format!("{}/GraduateCourse{i}", Self::department_iri(u, d))
    }

    /// Resolve an IRI in this dataset's dictionary (if present).
    pub fn id_of(&self, iri: &str) -> Option<TermId> {
        self.graph.dictionary().id_of_iri(iri)
    }
}

/// The univ-bench RDFS ontology (classes, hierarchy, property constraints),
/// inserted into `b`; returns the vocabulary ids.
pub fn ontology(b: &mut GraphBuilder) -> LubmVocab {
    let c = |b: &mut GraphBuilder, n: &str| b.ns(UB, n);
    let vocab = LubmVocab {
        person: c(b, "Person"),
        employee: c(b, "Employee"),
        faculty: c(b, "Faculty"),
        professor: c(b, "Professor"),
        full_professor: c(b, "FullProfessor"),
        associate_professor: c(b, "AssociateProfessor"),
        assistant_professor: c(b, "AssistantProfessor"),
        lecturer: c(b, "Lecturer"),
        chair: c(b, "Chair"),
        student: c(b, "Student"),
        undergraduate_student: c(b, "UndergraduateStudent"),
        graduate_student: c(b, "GraduateStudent"),
        teaching_assistant: c(b, "TeachingAssistant"),
        research_assistant: c(b, "ResearchAssistant"),
        organization: c(b, "Organization"),
        university: c(b, "University"),
        department: c(b, "Department"),
        research_group: c(b, "ResearchGroup"),
        work: c(b, "Work"),
        course: c(b, "Course"),
        graduate_course: c(b, "GraduateCourse"),
        publication: c(b, "Publication"),
        article: c(b, "Article"),
        journal_article: c(b, "JournalArticle"),
        conference_paper: c(b, "ConferencePaper"),
        technical_report: c(b, "TechnicalReport"),
        book: c(b, "Book"),
        software: c(b, "Software"),
        degree_from: c(b, "degreeFrom"),
        masters_degree_from: c(b, "mastersDegreeFrom"),
        doctoral_degree_from: c(b, "doctoralDegreeFrom"),
        undergraduate_degree_from: c(b, "undergraduateDegreeFrom"),
        member_of: c(b, "memberOf"),
        works_for: c(b, "worksFor"),
        head_of: c(b, "headOf"),
        advisor: c(b, "advisor"),
        teacher_of: c(b, "teacherOf"),
        takes_course: c(b, "takesCourse"),
        teaching_assistant_of: c(b, "teachingAssistantOf"),
        publication_author: c(b, "publicationAuthor"),
        sub_organization_of: c(b, "subOrganizationOf"),
        research_interest: c(b, "researchInterest"),
        name: c(b, "name"),
        email_address: c(b, "emailAddress"),
    };
    let v = &vocab;
    // Class hierarchy.
    for (sub, sup) in [
        (v.employee, v.person),
        (v.faculty, v.employee),
        (v.professor, v.faculty),
        (v.full_professor, v.professor),
        (v.associate_professor, v.professor),
        (v.assistant_professor, v.professor),
        (v.chair, v.professor),
        (v.lecturer, v.faculty),
        (v.student, v.person),
        (v.undergraduate_student, v.student),
        (v.graduate_student, v.student),
        (v.teaching_assistant, v.person),
        (v.research_assistant, v.student),
        (v.university, v.organization),
        (v.department, v.organization),
        (v.research_group, v.organization),
        (v.course, v.work),
        (v.graduate_course, v.course),
        (v.article, v.publication),
        (v.journal_article, v.article),
        (v.conference_paper, v.article),
        (v.technical_report, v.publication),
        (v.book, v.publication),
        (v.software, v.publication),
    ] {
        b.subclass(sub, sup);
    }
    // Property hierarchy.
    for (sub, sup) in [
        (v.masters_degree_from, v.degree_from),
        (v.doctoral_degree_from, v.degree_from),
        (v.undergraduate_degree_from, v.degree_from),
        (v.works_for, v.member_of),
        (v.head_of, v.works_for),
    ] {
        b.subproperty(sub, sup);
    }
    // Domains and ranges.
    for (p, dom) in [
        (v.degree_from, v.person),
        (v.member_of, v.person),
        (v.advisor, v.person),
        (v.teacher_of, v.faculty),
        (v.takes_course, v.student),
        (v.teaching_assistant_of, v.teaching_assistant),
        (v.publication_author, v.publication),
        (v.sub_organization_of, v.organization),
        (v.research_interest, v.person),
    ] {
        b.domain(p, dom);
    }
    for (p, rng) in [
        (v.degree_from, v.university),
        (v.member_of, v.organization),
        (v.advisor, v.professor),
        (v.teacher_of, v.course),
        (v.takes_course, v.course),
        (v.teaching_assistant_of, v.course),
        (v.publication_author, v.person),
        (v.sub_organization_of, v.organization),
    ] {
        b.range(p, rng);
    }
    vocab
}

/// Generate a dataset.
pub fn generate(config: &LubmConfig) -> LubmDataset {
    let mut b = GraphBuilder::new();
    let v = ontology(&mut b);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_univ = config.universities;

    // Universities first so degree targets exist.
    let univ_ids: Vec<TermId> = (0..n_univ)
        .map(|u| {
            let id = b.iri(&LubmDataset::university_iri(u));
            b.a(id, v.university);
            id
        })
        .collect();
    let any_univ = |rng: &mut StdRng| univ_ids[rng.gen_range(0..n_univ)];

    for u in 0..n_univ {
        for d in 0..config.departments_per_university {
            let dept_iri = LubmDataset::department_iri(u, d);
            let dept = b.iri(&dept_iri);
            b.a(dept, v.department);
            b.triple(dept, v.sub_organization_of, univ_ids[u]);

            for g in 0..config.research_groups {
                let group = b.iri(&format!("{dept_iri}/ResearchGroup{g}"));
                b.a(group, v.research_group);
                b.triple(group, v.sub_organization_of, dept);
            }

            // Courses.
            let mut course_ids = Vec::new();
            for i in 0..config.courses {
                let id = b.iri(&format!("{dept_iri}/Course{i}"));
                b.a(id, v.course);
                course_ids.push(id);
            }
            let mut grad_course_ids = Vec::new();
            for i in 0..config.graduate_courses {
                let id = b.iri(&LubmDataset::graduate_course_iri(u, d, i));
                b.a(id, v.graduate_course);
                grad_course_ids.push(id);
            }
            let all_courses: Vec<TermId> =
                course_ids.iter().chain(&grad_course_ids).copied().collect();

            // Faculty.
            let mut faculty_ids: Vec<TermId> = Vec::new();
            let mk_faculty = |b: &mut GraphBuilder,
                              rng: &mut StdRng,
                              kind: &str,
                              class: TermId,
                              i: usize|
             -> TermId {
                let id = b.iri(&format!("{dept_iri}/{kind}{i}"));
                b.a(id, class);
                b.triple(id, v.works_for, dept);
                b.triple(
                    id,
                    v.undergraduate_degree_from,
                    univ_ids[rng.gen_range(0..n_univ)],
                );
                b.triple(
                    id,
                    v.masters_degree_from,
                    univ_ids[rng.gen_range(0..n_univ)],
                );
                b.triple(
                    id,
                    v.doctoral_degree_from,
                    univ_ids[rng.gen_range(0..n_univ)],
                );
                let name = b.literal(&format!("{kind}{i} of {dept_iri}"));
                b.triple(id, v.name, name);
                let email = b.literal(&format!("{kind}{i}@Department{d}.Univ{u}.edu"));
                b.triple(id, v.email_address, email);
                // Teach 1–2 courses.
                for _ in 0..rng.gen_range(1..=2usize) {
                    let c = all_courses[rng.gen_range(0..all_courses.len())];
                    b.triple(id, v.teacher_of, c);
                }
                id
            };
            for i in 0..config.full_professors {
                let id = mk_faculty(&mut b, &mut rng, "FullProfessor", v.full_professor, i);
                faculty_ids.push(id);
                if i == 0 {
                    // The chair: head of the department (headOf ⊑ worksFor).
                    b.triple(id, v.head_of, dept);
                }
            }
            for i in 0..config.associate_professors {
                faculty_ids.push(mk_faculty(
                    &mut b,
                    &mut rng,
                    "AssociateProfessor",
                    v.associate_professor,
                    i,
                ));
            }
            for i in 0..config.assistant_professors {
                faculty_ids.push(mk_faculty(
                    &mut b,
                    &mut rng,
                    "AssistantProfessor",
                    v.assistant_professor,
                    i,
                ));
            }
            for i in 0..config.lecturers {
                faculty_ids.push(mk_faculty(&mut b, &mut rng, "Lecturer", v.lecturer, i));
            }

            // Publications (leaf-typed).
            let pub_classes = [v.journal_article, v.conference_paper, v.technical_report];
            for (fi, &f) in faculty_ids.iter().enumerate() {
                for p in 0..config.publications_per_faculty {
                    let id = b.iri(&format!("{dept_iri}/Publication{fi}_{p}"));
                    b.a(id, pub_classes[rng.gen_range(0..pub_classes.len())]);
                    b.triple(id, v.publication_author, f);
                }
            }

            // Students.
            for i in 0..config.undergraduate_students {
                let id = b.iri(&format!("{dept_iri}/UndergraduateStudent{i}"));
                b.a(id, v.undergraduate_student);
                b.triple(id, v.member_of, dept);
                for _ in 0..rng.gen_range(2..=4usize) {
                    let c = course_ids[rng.gen_range(0..course_ids.len())];
                    b.triple(id, v.takes_course, c);
                }
                if rng.gen_bool(0.2) {
                    let a = faculty_ids[rng.gen_range(0..faculty_ids.len())];
                    b.triple(id, v.advisor, a);
                }
            }
            for i in 0..config.graduate_students {
                let id = b.iri(&format!("{dept_iri}/GraduateStudent{i}"));
                b.a(id, v.graduate_student);
                b.triple(id, v.member_of, dept);
                b.triple(id, v.undergraduate_degree_from, any_univ(&mut rng));
                for _ in 0..rng.gen_range(1..=3usize) {
                    let c = grad_course_ids[rng.gen_range(0..grad_course_ids.len())];
                    b.triple(id, v.takes_course, c);
                }
                let a = faculty_ids[rng.gen_range(0..faculty_ids.len())];
                b.triple(id, v.advisor, a);
                if i % 5 == 0 {
                    // Also a teaching assistant (multi-leaf-typed instance).
                    b.a(id, v.teaching_assistant);
                    let c = course_ids[rng.gen_range(0..course_ids.len())];
                    b.triple(id, v.teaching_assistant_of, c);
                } else if i % 7 == 0 {
                    b.a(id, v.research_assistant);
                }
            }
        }
    }

    LubmDataset {
        graph: b.finish(),
        vocab: v,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::Schema;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&LubmConfig::default());
        let b = generate(&LubmConfig::default());
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&LubmConfig::default());
        let b = generate(&LubmConfig {
            seed: 99,
            ..LubmConfig::default()
        });
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn scale_multiplies_size() {
        let one = generate(&LubmConfig::scale(1));
        let three = generate(&LubmConfig::scale(3));
        assert!(three.graph.len() > 2 * one.graph.len());
    }

    #[test]
    fn schema_matches_the_ontology() {
        let ds = generate(&LubmConfig::default());
        let schema = Schema::from_graph(&ds.graph);
        assert_eq!(schema.subclass.len(), 24);
        assert_eq!(schema.subproperty.len(), 5);
        assert_eq!(schema.domain.len(), 9);
        assert_eq!(schema.range.len(), 8);
        // Closure folds hierarchies: Full professor is transitively a Person.
        let cl = schema.closure();
        assert!(cl.is_subclass(ds.vocab.full_professor, ds.vocab.person));
        assert!(cl.is_subproperty(ds.vocab.head_of, ds.vocab.member_of));
    }

    #[test]
    fn instances_are_leaf_typed_only() {
        let ds = generate(&LubmConfig::default());
        // No explicit Person / Faculty / Student type assertions.
        use rdfref_model::dictionary::ID_RDF_TYPE;
        for t in ds.graph.iter() {
            if t.p == ID_RDF_TYPE {
                assert!(
                    t.o != ds.vocab.person
                        && t.o != ds.vocab.faculty
                        && t.o != ds.vocab.student
                        && t.o != ds.vocab.employee
                        && t.o != ds.vocab.professor,
                    "non-leaf explicit type found"
                );
            }
        }
    }

    #[test]
    fn example1_ingredients_exist() {
        let ds = generate(&LubmConfig::scale(2));
        // Some faculty member has a masters degree from university 0
        // (probabilistically certain with 2×3×14 faculty; the seed is fixed).
        let univ0 = ds.id_of(&LubmDataset::university_iri(0)).unwrap();
        let masters = ds.vocab.masters_degree_from;
        let has_masters_from_univ0 = ds.graph.iter().any(|t| t.p == masters && t.o == univ0);
        assert!(has_masters_from_univ0);
    }

    #[test]
    fn named_iri_schemes_resolve() {
        let ds = generate(&LubmConfig::default());
        assert!(ds.id_of(&LubmDataset::department_iri(0, 0)).is_some());
        assert!(ds
            .id_of(&LubmDataset::full_professor_iri(0, 0, 0))
            .is_some());
        assert!(ds
            .id_of(&LubmDataset::graduate_course_iri(0, 0, 0))
            .is_some());
        assert!(ds.id_of("http://nonexistent").is_none());
    }
}
