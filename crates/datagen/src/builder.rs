//! A small convenience layer for generating graphs programmatically.

use rdfref_model::dictionary::ID_RDF_TYPE;
use rdfref_model::vocab;
use rdfref_model::{EncodedTriple, Graph, Term, TermId};

/// A graph under construction: interning helpers + typed insertion.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Start an empty graph.
    pub fn new() -> Self {
        GraphBuilder {
            graph: Graph::new(),
        }
    }

    /// Intern an IRI.
    pub fn iri(&mut self, iri: &str) -> TermId {
        self.graph.dictionary_mut().intern(&Term::iri(iri))
    }

    /// Intern an IRI assembled from a namespace and local name.
    pub fn ns(&mut self, namespace: &str, local: &str) -> TermId {
        self.iri(&format!("{namespace}{local}"))
    }

    /// Intern a plain literal.
    pub fn literal(&mut self, lexical: &str) -> TermId {
        self.graph.dictionary_mut().intern(&Term::literal(lexical))
    }

    /// Insert a triple by ids. Returns `true` if new.
    pub fn triple(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        self.graph.insert_encoded(EncodedTriple::new(s, p, o))
    }

    /// Insert `s rdf:type c`.
    pub fn a(&mut self, s: TermId, c: TermId) -> bool {
        self.triple(s, ID_RDF_TYPE, c)
    }

    /// Insert `sub rdfs:subClassOf sup`.
    pub fn subclass(&mut self, sub: TermId, sup: TermId) {
        let p = self.iri(vocab::RDFS_SUBCLASSOF);
        self.triple(sub, p, sup);
    }

    /// Insert `sub rdfs:subPropertyOf sup`.
    pub fn subproperty(&mut self, sub: TermId, sup: TermId) {
        let p = self.iri(vocab::RDFS_SUBPROPERTYOF);
        self.triple(sub, p, sup);
    }

    /// Insert `prop rdfs:domain class`.
    pub fn domain(&mut self, prop: TermId, class: TermId) {
        let p = self.iri(vocab::RDFS_DOMAIN);
        self.triple(prop, p, class);
    }

    /// Insert `prop rdfs:range class`.
    pub fn range(&mut self, prop: TermId, class: TermId) {
        let p = self.iri(vocab::RDFS_RANGE);
        self.triple(prop, p, class);
    }

    /// Current triple count.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True iff no triples yet.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Finish, returning the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    /// Peek at the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_well_formed_graph() {
        let mut b = GraphBuilder::new();
        let book = b.iri("http://e/Book");
        let publication = b.iri("http://e/Publication");
        let doi = b.iri("http://e/doi1");
        b.subclass(book, publication);
        assert!(b.a(doi, book));
        assert!(!b.a(doi, book)); // duplicate
        let title = b.iri("http://e/title");
        let lit = b.literal("El Aleph");
        b.triple(doi, title, lit);
        let g = b.finish();
        assert_eq!(g.len(), 3);
        let schema = g.schema();
        assert_eq!(schema.subclass.len(), 1);
    }

    #[test]
    fn ns_helper_concatenates() {
        let mut b = GraphBuilder::new();
        let a = b.ns("http://e/", "X");
        let bb = b.iri("http://e/X");
        assert_eq!(a, bb);
    }
}
