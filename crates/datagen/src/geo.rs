//! IGN-like geographic data.
//!
//! The French IGN dataset's salient feature for reformulation is a **deep**
//! administrative subdivision hierarchy (territory → region → department →
//! arrondissement → canton → commune …): subclass chains make rule-1
//! unfolding *deep*, so UCQ sizes grow with depth rather than breadth.

use crate::builder::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfref_model::{Graph, TermId};

/// The namespace.
pub const GEO: &str = "http://geo.example.org/schema#";

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Depth of the administrative-area subclass chain.
    pub hierarchy_depth: usize,
    /// Areas generated per hierarchy level.
    pub areas_per_level: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            hierarchy_depth: 7,
            areas_per_level: 120,
            seed: 0x960,
        }
    }
}

/// A generated geographic dataset.
#[derive(Debug, Clone)]
pub struct GeoDataset {
    /// The graph.
    pub graph: Graph,
    /// The root class (`AdministrativeArea`).
    pub root_class: TermId,
    /// Classes per level, most specific last.
    pub level_classes: Vec<TermId>,
    /// The `locatedIn` property (domain/range `AdministrativeArea`).
    pub located_in: TermId,
    /// The `name` property.
    pub name: TermId,
}

/// Generate a dataset.
pub fn generate(config: &GeoConfig) -> GeoDataset {
    let mut b = GraphBuilder::new();
    let root = b.ns(GEO, "AdministrativeArea");
    let located_in = b.ns(GEO, "locatedIn");
    let contains = b.ns(GEO, "contains");
    let name = b.ns(GEO, "name");
    b.domain(located_in, root);
    b.range(located_in, root);
    // `contains` ⊑-style inverse is not expressible in RDFS; instead model a
    // finer property: directlyLocatedIn ⊑ locatedIn.
    let directly = b.ns(GEO, "directlyLocatedIn");
    b.subproperty(directly, located_in);
    let _ = contains;

    // Subclass chain: Level0 ⊒ Level1 ⊒ … (Level{i+1} ⊑ Level{i}).
    let mut level_classes = Vec::with_capacity(config.hierarchy_depth);
    let names = [
        "Territory",
        "Region",
        "Department",
        "Arrondissement",
        "Canton",
        "Commune",
        "District",
        "Quarter",
        "Block",
    ];
    let mut prev = root;
    for i in 0..config.hierarchy_depth {
        let label = names.get(i).copied().unwrap_or("Level");
        let class = b.ns(GEO, &format!("{label}{i}"));
        b.subclass(class, prev);
        level_classes.push(class);
        prev = class;
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut previous_level: Vec<TermId> = Vec::new();
    for (level, &class) in level_classes.iter().enumerate() {
        let mut this_level = Vec::with_capacity(config.areas_per_level);
        for i in 0..config.areas_per_level {
            let id = b.iri(&format!("http://geo.example.org/area/L{level}N{i}"));
            b.a(id, class);
            let label = b.literal(&format!("Area {level}-{i}"));
            b.triple(id, name, label);
            if !previous_level.is_empty() {
                let parent = previous_level[rng.gen_range(0..previous_level.len())];
                b.triple(id, directly, parent);
            }
            this_level.push(id);
        }
        previous_level = this_level;
    }

    GeoDataset {
        graph: b.finish(),
        root_class: root,
        level_classes,
        located_in,
        name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::Schema;

    #[test]
    fn chain_depth_matches_config() {
        let ds = generate(&GeoConfig {
            hierarchy_depth: 5,
            areas_per_level: 10,
            seed: 1,
        });
        let schema = Schema::from_graph(&ds.graph);
        let cl = schema.closure();
        // The most specific class is transitively a subclass of the root.
        let leaf = *ds.level_classes.last().unwrap();
        assert!(cl.is_subclass(leaf, ds.root_class));
        // Chain: root has exactly depth strict subclasses.
        assert_eq!(cl.subclasses_of(ds.root_class).count(), 5);
    }

    #[test]
    fn areas_connected_across_levels() {
        let ds = generate(&GeoConfig {
            hierarchy_depth: 3,
            areas_per_level: 5,
            seed: 2,
        });
        let directly = ds
            .graph
            .dictionary()
            .id_of_iri(&format!("{GEO}directlyLocatedIn"))
            .unwrap();
        let located_edges = ds.graph.iter().filter(|t| t.p == directly).count();
        // Levels 1 and 2 each connect up: 2 × 5 edges.
        assert_eq!(located_edges, 10);
    }

    #[test]
    fn deterministic() {
        let a = generate(&GeoConfig::default());
        let b = generate(&GeoConfig::default());
        assert_eq!(a.graph, b.graph);
    }
}
