//! Error type of the data-generation crate.

use rdfref_query::QueryError;
use std::fmt;

/// Result alias for the datagen crate.
pub type Result<T> = std::result::Result<T, DatagenError>;

/// Errors raised while assembling synthetic workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatagenError {
    /// A workload query references an entity the generated dataset does not
    /// contain (e.g. a university index beyond the configured scale).
    MissingEntity(String),
    /// A query-layer error while assembling a workload query.
    Query(QueryError),
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::MissingEntity(e) => {
                write!(f, "generated dataset does not contain {e}")
            }
            DatagenError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for DatagenError {}

impl From<QueryError> for DatagenError {
    fn from(e: QueryError) -> Self {
        DatagenError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = DatagenError::MissingEntity("university 99".into());
        assert!(e.to_string().contains("university 99"));
        let q: DatagenError = QueryError::UnboundHeadVar("x".into()).into();
        assert!(matches!(q, DatagenError::Query(_)));
    }
}
