//! Cyclic-join stressor for the WCOJ executor (experiment E12).
//!
//! A social-graph-shaped dataset engineered so the gap between bind join
//! and leapfrog triejoin is structural, not incidental:
//!
//! * **wedge-heavy, triangle-light** `knows` edges — each hub has many
//!   in-spokes and many out-spokes but no spoke↔spoke edges, so the
//!   triangle query's 2-path intermediate is `hubs × spokes²` rows while
//!   the final answer is only the few *planted* triangles. A bind join
//!   must materialize every wedge; LFJ intersects sorted runs and touches
//!   a bounded neighbourhood per answer;
//! * a small subclass chain (`Person ⊑ User ⊑ Agent`, leaf-typed
//!   instances) so the Ref strategies do real reformulation work on the
//!   typed star query.
//!
//! The edge property deliberately has **no** subproperty hierarchy: a
//! reformulable edge atom makes the cover-based strategies (SCQ/GCov)
//! evaluate the triangle as a join of unioned *fragments*, which never
//! reaches the single-CQ WCOJ operator — the cyclic stressor must arrive
//! at `eval_cq` whole for every Ref strategy.
//!
//! Deterministic: the shape is fully fixed by the config (no RNG).

use crate::builder::GraphBuilder;
use crate::error::Result;
use crate::queries::NamedQuery;
use rdfref_model::dictionary::ID_RDF_TYPE;
use rdfref_model::{Graph, TermId};
use rdfref_query::ast::{Atom, Cq};
use rdfref_query::Var;

/// The namespace.
pub const WCOJ: &str = "http://wcoj.example.org/schema#";

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct WcojConfig {
    /// Number of wedge hubs.
    pub hubs: usize,
    /// In-spokes *and* out-spokes per hub (the 2-path intermediate of the
    /// triangle query is `hubs × spokes²` rows).
    pub spokes: usize,
    /// Sparse `likes` out-edges per hub (bounds the star query's output).
    pub likes_per_hub: usize,
    /// Planted triangles — the triangle query's entire answer set.
    pub triangles: usize,
}

impl Default for WcojConfig {
    fn default() -> Self {
        WcojConfig {
            hubs: 16,
            spokes: 150,
            likes_per_hub: 10,
            triangles: 12,
        }
    }
}

/// A generated WCOJ stressor dataset.
#[derive(Debug, Clone)]
pub struct WcojDataset {
    /// The graph.
    pub graph: Graph,
    /// Root entity class (`Agent`); instances are typed with the leaf.
    pub agent: TermId,
    /// Middle class (`User ⊑ Agent`).
    pub user: TermId,
    /// Leaf entity class (`Person ⊑ User`).
    pub person: TermId,
    /// The dense edge property (`knows`) — wedges and triangles.
    pub knows: TermId,
    /// The sparse edge property (`likes`) — hub out-edges only.
    pub likes: TermId,
}

/// Generate a dataset.
pub fn generate(config: &WcojConfig) -> WcojDataset {
    let mut b = GraphBuilder::new();
    let agent = b.ns(WCOJ, "Agent");
    let user = b.ns(WCOJ, "User");
    let person = b.ns(WCOJ, "Person");
    b.subclass(user, agent);
    b.subclass(person, user);
    let knows = b.ns(WCOJ, "knows");
    let likes = b.ns(WCOJ, "likes");
    b.domain(knows, agent);
    b.range(knows, agent);
    b.domain(likes, agent);

    let node = |b: &mut GraphBuilder, name: String| {
        let id = b.iri(&format!("http://wcoj.example.org/node/{name}"));
        b.a(id, person);
        id
    };

    // Wedges: in-spoke → hub → out-spoke, never spoke → spoke, so no wedge
    // closes into a triangle. A sparse `likes` fan-out per hub bounds the
    // star query's output while keeping the hub in three atoms.
    for h in 0..config.hubs {
        let hub = node(&mut b, format!("hub{h}"));
        for s in 0..config.spokes {
            let src = node(&mut b, format!("in{h}x{s}"));
            let dst = node(&mut b, format!("out{h}x{s}"));
            b.triple(src, knows, hub);
            b.triple(hub, knows, dst);
            if s < config.likes_per_hub {
                b.triple(hub, likes, dst);
            }
        }
    }

    // Planted triangles on dedicated nodes — the triangle query's answers.
    for t in 0..config.triangles {
        let u = node(&mut b, format!("tri{t}a"));
        let v = node(&mut b, format!("tri{t}b"));
        let w = node(&mut b, format!("tri{t}c"));
        b.triple(u, knows, v);
        b.triple(v, knows, w);
        b.triple(u, knows, w);
    }

    WcojDataset {
        graph: b.finish(),
        agent,
        user,
        person,
        knows,
        likes,
    }
}

fn v(n: &str) -> Var {
    Var::new(n)
}

/// Query mix for the stressor: the cyclic triangle (WCOJ's home turf), a
/// typed star (cost-model hub rule + subclass reformulation), and an
/// acyclic 2-path control where bind join should stay the pick.
pub fn wcoj_mix(ds: &WcojDataset) -> Result<Vec<NamedQuery>> {
    Ok(vec![
        NamedQuery {
            name: "W01",
            description: "triangle: x knows y, y knows z, x knows z (cyclic; wedge-heavy)",
            cq: Cq::new(
                vec![v("x"), v("y"), v("z")],
                vec![
                    Atom::new(v("x"), ds.knows, v("y")),
                    Atom::new(v("y"), ds.knows, v("z")),
                    Atom::new(v("x"), ds.knows, v("z")),
                ],
            )?,
        },
        NamedQuery {
            name: "W02",
            description:
                "star: a typed hub knowing and liking (hub var in 3 atoms; subclass reformulation)",
            cq: Cq::new(
                vec![v("x"), v("a"), v("b")],
                vec![
                    Atom::new(v("x"), ID_RDF_TYPE, ds.agent),
                    Atom::new(v("x"), ds.knows, v("a")),
                    Atom::new(v("x"), ds.likes, v("b")),
                ],
            )?,
        },
        NamedQuery {
            name: "W03",
            description: "path: x knows y, y knows z (acyclic control — bind join territory)",
            cq: Cq::new(
                vec![v("x"), v("z")],
                vec![
                    Atom::new(v("x"), ds.knows, v("y")),
                    Atom::new(v("y"), ds.knows, v("z")),
                ],
            )?,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::Schema;

    #[test]
    fn triangle_answers_are_exactly_the_planted_ones() {
        let ds = generate(&WcojConfig {
            hubs: 4,
            spokes: 6,
            likes_per_hub: 2,
            triangles: 3,
        });
        let edges: std::collections::HashSet<(TermId, TermId)> = ds
            .graph
            .iter()
            .filter(|t| t.p == ds.knows)
            .map(|t| (t.s, t.o))
            .collect();
        let mut triangles = 0;
        for &(x, y) in &edges {
            for &(a, z) in &edges {
                if a == y && edges.contains(&(x, z)) {
                    triangles += 1;
                }
            }
        }
        assert_eq!(triangles, 3);
    }

    #[test]
    fn schema_layer_is_a_two_level_chain() {
        let ds = generate(&WcojConfig::default());
        let schema = Schema::from_graph(&ds.graph);
        assert_eq!(schema.subclass.len(), 2);
        // No property hierarchy — the triangle must stay a single CQ under
        // every Ref strategy (see the module docs).
        assert_eq!(schema.subproperty.len(), 0);
        let closure = schema.closure();
        assert!(closure.is_subclass(ds.person, ds.agent));
    }

    #[test]
    fn deterministic_and_sized_by_config() {
        let cfg = WcojConfig {
            hubs: 2,
            spokes: 3,
            likes_per_hub: 1,
            triangles: 1,
        };
        let a = generate(&cfg);
        assert_eq!(a.graph, generate(&cfg).graph);
        let knows_edges = a.graph.iter().filter(|t| t.p == a.knows).count();
        let likes_edges = a.graph.iter().filter(|t| t.p == a.likes).count();
        // 2 knows edges per spoke pair + 3 per planted triangle.
        assert_eq!(knows_edges, 2 * 2 * 3 + 3);
        assert_eq!(likes_edges, 2);
    }

    #[test]
    fn mix_is_well_formed() {
        let ds = generate(&WcojConfig::default());
        let mix = wcoj_mix(&ds).unwrap();
        assert_eq!(mix.len(), 3);
        // W01 is the cyclic stressor.
        assert_eq!(mix[0].cq.size(), 3);
    }
}
