//! The workspace's **sync facade**.
//!
//! Every sync primitive that participates in the snapshot/shard
//! publication protocol (and everything near it in `core`/`storage`) is
//! imported from here instead of from `std::sync`/`parking_lot`:
//!
//! * in normal builds this module is nothing but re-exports — zero cost,
//!   type-identical to the primitives it replaces (compile-tested below);
//! * with the `model-check` feature, the same names resolve to the
//!   instrumented shims from `rdfref-modelcheck`, making every atomic,
//!   lock, channel and spawn/join a deterministic-scheduler yield point.
//!
//! xtask lint **L015** (`raw-sync-primitive-outside-facade`) enforces that
//! `core`/`storage`/`obs` code reaches sync primitives only through this
//! facade (or a reviewed allowlist entry), so nothing the model checker
//! cannot see creeps back in.
//!
//! Deliberately *not* shimmed, in both modes: [`Arc`] (refcounts carry no
//! protocol state), [`OnceLock`] (init-once, no ordering choice to
//! explore), and [`thread::scope`]/[`thread::available_parallelism`]
//! (morsel worker pools are outside the modeled protocol — model
//! scenarios must not drive them).

#[cfg(not(feature = "model-check"))]
mod imp {
    pub use parking_lot::Mutex;

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    pub mod mpsc {
        pub use std::sync::mpsc::{channel, Receiver, RecvError, SendError, Sender, TryRecvError};
    }

    pub mod thread {
        pub use std::thread::{available_parallelism, scope, spawn, Builder, JoinHandle};
    }
}

#[cfg(feature = "model-check")]
mod imp {
    pub use rdfref_modelcheck::shim::Mutex;

    pub mod atomic {
        pub use rdfref_modelcheck::shim::{AtomicBool, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }

    pub use rdfref_modelcheck::shim::mpsc;

    pub mod thread {
        pub use rdfref_modelcheck::shim::thread::{spawn, Builder, JoinHandle};
        pub use std::thread::{available_parallelism, scope};
    }

    /// The checker itself, for `#[cfg(feature = "model-check")]` protocol
    /// models in dependent crates (they depend only on the facade).
    pub mod modelcheck {
        pub use rdfref_modelcheck::{explore, replay, BugReport, ExploreOptions, Outcome, Stats};
    }
}

pub use imp::*;
pub use std::sync::{Arc, OnceLock};

/// Compile-time pin: in normal builds the facade's types ARE the std /
/// parking_lot types, not lookalikes — a facade that quietly wrapped them
/// would change performance and `Send`/`Sync` fine print.
#[cfg(not(feature = "model-check"))]
mod zero_cost_identity {
    #[allow(dead_code)]
    fn atomic_u64(x: crate::atomic::AtomicU64) -> std::sync::atomic::AtomicU64 {
        x
    }
    #[allow(dead_code)]
    fn atomic_usize(x: crate::atomic::AtomicUsize) -> std::sync::atomic::AtomicUsize {
        x
    }
    #[allow(dead_code)]
    fn atomic_bool(x: crate::atomic::AtomicBool) -> std::sync::atomic::AtomicBool {
        x
    }
    #[allow(dead_code)]
    fn ordering(x: crate::atomic::Ordering) -> std::sync::atomic::Ordering {
        x
    }
    #[allow(dead_code)]
    fn arc(x: crate::Arc<u8>) -> std::sync::Arc<u8> {
        x
    }
    #[allow(dead_code)]
    fn once_lock(x: crate::OnceLock<u8>) -> std::sync::OnceLock<u8> {
        x
    }
    #[allow(dead_code)]
    fn mutex(x: crate::Mutex<u8>) -> parking_lot::Mutex<u8> {
        x
    }
    #[allow(dead_code)]
    fn sender(x: crate::mpsc::Sender<u8>) -> std::sync::mpsc::Sender<u8> {
        x
    }
    #[allow(dead_code)]
    fn receiver(x: crate::mpsc::Receiver<u8>) -> std::sync::mpsc::Receiver<u8> {
        x
    }
    #[allow(dead_code)]
    fn join_handle(x: crate::thread::JoinHandle<u8>) -> std::thread::JoinHandle<u8> {
        x
    }
}

#[cfg(test)]
mod tests {
    /// The facade behaves like the primitives it re-exports (both modes).
    #[test]
    fn facade_round_trip() {
        use crate::atomic::{AtomicU64, Ordering};
        let a = AtomicU64::new(1);
        a.store(2, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 2);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 2);

        let m = crate::Mutex::new(10u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 11);

        let (tx, rx) = crate::mpsc::channel();
        let h = crate::thread::spawn(move || tx.send(41u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 41);
        h.join().unwrap();
    }
}
