//! Robustness: the SPARQL parser never panics on arbitrary input.

use proptest::prelude::*;
use rdfref_model::Dictionary;
use rdfref_query::parse_select;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn sparql_never_panics(input in "[ -~\n\t]{0,200}") {
        let mut dict = Dictionary::new();
        let _ = parse_select(&input, &mut dict);
    }

    #[test]
    fn near_miss_queries_never_panic(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("WHERE".to_string()),
                Just("DISTINCT".to_string()),
                Just("PREFIX".to_string()),
                Just("?x".to_string()),
                Just("?".to_string()),
                Just("*".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(".".to_string()),
                Just("a".to_string()),
                Just("<http://e/p>".to_string()),
                Just("ex:p".to_string()),
                Just("\"lit".to_string()),
                Just("\"lit\"^^xsd:int".to_string()),
                Just("_:b".to_string()),
                Just("42".to_string()),
            ],
            0..20,
        ),
    ) {
        let doc = parts.join(" ");
        let mut dict = Dictionary::new();
        let _ = parse_select(&doc, &mut dict);
    }
}
