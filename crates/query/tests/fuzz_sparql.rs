//! Robustness: the SPARQL parser never panics on arbitrary input.

use proptest::prelude::*;
use rdfref_model::Dictionary;
use rdfref_query::parse_select;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn sparql_never_panics(input in "[ -~\n\t]{0,200}") {
        let mut dict = Dictionary::new();
        let _ = parse_select(&input, &mut dict);
    }

    #[test]
    fn near_miss_queries_never_panic(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("WHERE".to_string()),
                Just("DISTINCT".to_string()),
                Just("PREFIX".to_string()),
                Just("?x".to_string()),
                Just("?".to_string()),
                Just("*".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(".".to_string()),
                Just("a".to_string()),
                Just("<http://e/p>".to_string()),
                Just("ex:p".to_string()),
                Just("\"lit".to_string()),
                Just("\"lit\"^^xsd:int".to_string()),
                Just("_:b".to_string()),
                Just("42".to_string()),
            ],
            0..20,
        ),
    ) {
        let doc = parts.join(" ");
        let mut dict = Dictionary::new();
        let _ = parse_select(&doc, &mut dict);
    }

    /// Arbitrary raw bytes, lossily decoded — including control characters
    /// and replacement characters the printable strategy never produces.
    #[test]
    fn sparql_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let input = String::from_utf8_lossy(&bytes);
        let mut dict = Dictionary::new();
        let _ = parse_select(&input, &mut dict);
    }

    /// Raw bytes spliced into the middle of a well-formed query body.
    #[test]
    fn bytes_spliced_into_queries_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..32),
        pick in 0usize..4,
    ) {
        let noise = String::from_utf8_lossy(&bytes).into_owned();
        let templates = [
            format!("SELECT ?x WHERE {{ ?x <http://e/{noise}> ?y . }}"),
            format!("SELECT ?x WHERE {{ ?x a \"{noise}\" . }}"),
            format!("PREFIX ex: <http://e/{noise}> SELECT * WHERE {{ ?s ex:p ?o . }}"),
            format!("SELECT {noise} WHERE {{ ?s ?p ?o . }}"),
        ];
        let doc = &templates[pick % templates.len()];
        let mut dict = Dictionary::new();
        let _ = parse_select(doc, &mut dict);
    }
}
