//! Property tests of the query layer: canonicalization, covers,
//! containment laws, parser/display round trips.

use proptest::prelude::*;
use rdfref_model::{Dictionary, Term, TermId};
use rdfref_query::ast::{Atom, Cq, PTerm};
use rdfref_query::canonical::canonicalize;
use rdfref_query::containment::{equivalent, minimize, subsumes};
use rdfref_query::{parse_select, Cover, Var};

fn pterm_strategy() -> impl Strategy<Value = PTerm> {
    prop_oneof![
        (0u32..6).prop_map(|i| PTerm::Const(TermId(i + 50))),
        (0u8..4).prop_map(|i| PTerm::Var(Var::new(format!("v{i}")))),
        // Fresh vars exercise the canonical renaming path.
        (0usize..3).prop_map(|i| PTerm::Var(Var::fresh(i))),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (pterm_strategy(), pterm_strategy(), pterm_strategy()).prop_map(|(s, p, o)| Atom { s, p, o })
}

fn cq_strategy() -> impl Strategy<Value = Cq> {
    proptest::collection::vec(atom_strategy(), 1..4).prop_map(|body| {
        // Head: the named variables of the body, deduplicated.
        let mut head: Vec<PTerm> = Vec::new();
        for a in &body {
            for v in a.vars() {
                if !v.is_fresh() && !head.iter().any(|h| h.as_var() == Some(v)) {
                    head.push(PTerm::Var(v.clone()));
                }
            }
        }
        Cq::new_unchecked(head, body)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Canonicalization is idempotent and — when atom shapes are pairwise
    /// distinct (the documented contract) — invariant under body permutation
    /// and fresh-variable renumbering.
    #[test]
    fn canonicalize_laws(cq in cq_strategy(), seed in 0usize..6) {
        let c1 = canonicalize(&cq);
        prop_assert_eq!(&canonicalize(&c1), &c1, "idempotence");
        // Shape key: fresh variables anonymized. Permutation invariance is
        // only guaranteed when no two atoms share a shape (see module docs
        // of rdfref_query::canonical).
        let shape = |a: &Atom| {
            let pos = |t: &PTerm| match t {
                PTerm::Const(c) => format!("c{}", c.0),
                PTerm::Range(lo, hi) => format!("r{}-{}", lo.0, hi.0),
                PTerm::Var(v) if v.is_fresh() => "f".to_string(),
                PTerm::Var(v) => format!("v{}", v.name()),
            };
            (pos(&a.s), pos(&a.p), pos(&a.o))
        };
        let mut shapes: Vec<_> = cq.body.iter().map(shape).collect();
        shapes.sort();
        let distinct_shapes = shapes.windows(2).all(|w| w[0] != w[1]);
        // Rotate the body.
        let mut rotated = cq.body.clone();
        if !rotated.is_empty() {
            let k = seed % rotated.len();
            rotated.rotate_left(k);
        }
        let r = Cq::new_unchecked(cq.head.clone(), rotated);
        if distinct_shapes {
            prop_assert_eq!(&canonicalize(&r), &c1, "permutation invariance");
        } else {
            // Still deterministic and sound: same input, same output.
            prop_assert_eq!(&canonicalize(&r), &canonicalize(&r.clone()));
        }
        // Renumber fresh variables.
        let mut subst = rdfref_query::ast::Substitution::default();
        for a in &cq.body {
            for v in a.vars() {
                if v.is_fresh() {
                    let shifted = Var::fresh(
                        17 + v.name().trim_start_matches("_f").parse::<usize>().unwrap_or(0),
                    );
                    subst.insert(v.clone(), PTerm::Var(shifted));
                }
            }
        }
        let renamed = cq.apply(&subst);
        if distinct_shapes {
            prop_assert_eq!(&canonicalize(&renamed), &c1, "fresh renaming invariance");
        }
    }

    /// Subsumption is reflexive and transitive; equivalence is symmetric.
    #[test]
    fn containment_laws(a in cq_strategy(), b in cq_strategy(), c in cq_strategy()) {
        prop_assert!(subsumes(&a, &a));
        if subsumes(&a, &b) && subsumes(&b, &c) {
            prop_assert!(subsumes(&a, &c), "transitivity");
        }
        if equivalent(&a, &b) {
            prop_assert!(equivalent(&b, &a));
        }
    }

    /// Minimization produces an equivalent core and is idempotent.
    #[test]
    fn minimize_laws(cq in cq_strategy()) {
        let m = minimize(&cq);
        prop_assert!(m.size() <= cq.size());
        prop_assert!(subsumes(&m, &cq) && subsumes(&cq, &m), "equivalence");
        prop_assert_eq!(minimize(&m).size(), m.size(), "idempotence");
    }

    /// Covers: singleton and one-fragment covers are always valid; partition
    /// enumeration yields only valid covers; GCov moves preserve validity.
    #[test]
    fn cover_laws(n in 1usize..5, moves in proptest::collection::vec((0usize..8, 0usize..5), 0..6)) {
        let mut cover = Cover::singletons(n);
        prop_assert!(Cover::new(cover.fragments().to_vec(), n).is_ok());
        prop_assert!(Cover::new(Cover::one_fragment(n).fragments().to_vec(), n).is_ok());
        for c in Cover::enumerate_partitions(n) {
            prop_assert!(Cover::new(c.fragments().to_vec(), n).is_ok());
        }
        for &(fi, atom) in &moves {
            if atom < n {
                if let Some(next) = cover.with_atom_in_fragment(fi % cover.len(), atom) {
                    prop_assert!(Cover::new(next.fragments().to_vec(), n).is_ok());
                    cover = next;
                }
            }
        }
    }

    /// Fragment columns always cover the head variables and all join
    /// variables between fragments.
    #[test]
    fn fragment_columns_cover_joins(cq in cq_strategy()) {
        let n = cq.size();
        for cover in Cover::enumerate_partitions(n) {
            let columns = cover.fragment_columns(&cq);
            // Every head var appears in some fragment's columns.
            for hv in cq.head_vars() {
                prop_assert!(columns.iter().any(|c| c.contains(&hv)));
            }
            // Every variable shared between two fragments is exported by both.
            for (i, fa) in cover.fragments().iter().enumerate() {
                for (j, fb) in cover.fragments().iter().enumerate() {
                    if i >= j { continue; }
                    let vars_a: std::collections::HashSet<Var> = fa
                        .iter()
                        .flat_map(|&k| cq.body[k].var_set())
                        .collect();
                    let vars_b: std::collections::HashSet<Var> = fb
                        .iter()
                        .flat_map(|&k| cq.body[k].var_set())
                        .collect();
                    for shared in vars_a.intersection(&vars_b) {
                        prop_assert!(columns[i].contains(shared), "frag {i} misses {shared}");
                        prop_assert!(columns[j].contains(shared), "frag {j} misses {shared}");
                    }
                }
            }
        }
    }
}

/// Parser/display round trip on a corpus of queries: parse, render to
/// SPARQL, re-parse, compare canonical forms.
#[test]
fn parse_display_round_trip() {
    let queries = [
        "SELECT ?x WHERE { ?x <http://e/p> ?y }",
        "SELECT ?x ?y WHERE { ?x <http://e/p> ?y . ?y a <http://e/C> }",
        "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
        "SELECT ?x WHERE { ?x <http://e/q> \"lit\" . ?x <http://e/r> 42 }",
    ];
    for q in queries {
        let mut d1 = Dictionary::new();
        let cq1 = parse_select(q, &mut d1).unwrap();
        let rendered = rdfref_query::display::cq_to_sparql(&cq1, &d1);
        let mut d2 = Dictionary::new();
        let cq2 = parse_select(&rendered, &mut d2).unwrap();
        // Dictionaries are built in the same order, so ids align.
        assert_eq!(canonicalize(&cq1), canonicalize(&cq2), "{q} → {rendered}");
        let _ = Term::iri("keep-import");
    }
}
