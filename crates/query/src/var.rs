//! Query variables.

use std::fmt;
use std::sync::Arc;

/// A query variable, identified by name (without the SPARQL `?` sigil).
///
/// Cheap to clone (`Arc<str>`), totally ordered by name. Fresh variables
/// minted during reformulation use the reserved `_f` prefix, which the
/// parser rejects in user queries so freshness is guaranteed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Arc<str>);

impl Var {
    /// A named variable.
    pub fn new(name: impl Into<Arc<str>>) -> Var {
        Var(name.into())
    }

    /// The `n`-th fresh (reformulation-internal) variable.
    pub fn fresh(n: usize) -> Var {
        Var(Arc::from(format!("_f{n}")))
    }

    /// Is this a reformulation-internal fresh variable?
    pub fn is_fresh(&self) -> bool {
        self.0.starts_with("_f")
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

/// A generator of fresh variables, guaranteeing no collisions within one
/// reformulation run.
#[derive(Debug, Default, Clone)]
pub struct FreshVars {
    next: usize,
}

impl FreshVars {
    /// A fresh generator starting at `_f0`.
    pub fn new() -> Self {
        FreshVars::default()
    }

    /// Mint the next fresh variable.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, no item type ambiguity
    pub fn next(&mut self) -> Var {
        let v = Var::fresh(self.next);
        self.next += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_sigil() {
        assert_eq!(Var::new("x").to_string(), "?x");
    }

    #[test]
    fn fresh_vars_are_distinct_and_flagged() {
        let mut gen = FreshVars::new();
        let a = gen.next();
        let b = gen.next();
        assert_ne!(a, b);
        assert!(a.is_fresh() && b.is_fresh());
        assert!(!Var::new("x").is_fresh());
    }

    #[test]
    fn ordering_by_name() {
        assert!(Var::new("a") < Var::new("b"));
    }
}
