//! A SPARQL subset parser for BGP `SELECT` queries.
//!
//! Grammar (the conjunctive/BGP dialect the paper considers):
//!
//! ```text
//! query   := prefix* 'SELECT' ('DISTINCT')? (var+ | '*') 'WHERE' '{' bgp '}'
//! prefix  := ('PREFIX' | '@prefix') NAME ':' '<' IRI '>' '.'?
//! bgp     := pattern ('.' pattern)* '.'?
//! pattern := term term term
//! term    := '?'NAME | '<'IRI'>' | NAME ':' NAME | 'a' | literal | INTEGER
//! ```
//!
//! Blank nodes in patterns (`_:b`) are treated as non-distinguished
//! variables, per SPARQL semantics. Answers are sets (the `DISTINCT`
//! keyword is accepted and redundant). Constants are interned into the
//! provided dictionary so the parsed query can run against the graph that
//! dictionary belongs to.

use crate::ast::{Atom, Cq, PTerm};
use crate::error::{QueryError, Result};
use crate::var::Var;
use rdfref_model::vocab;
use rdfref_model::{Dictionary, Term};
use std::collections::HashMap;

/// Parse a `SELECT` query, interning constants into `dict`.
pub fn parse_select(input: &str, dict: &mut Dictionary) -> Result<Cq> {
    let mut lexer = Lexer::new(input);
    let tokens = lexer.run()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
        dict,
        blank_counter: 0,
    };
    p.query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Keyword(String), // SELECT / DISTINCT / WHERE / PREFIX (uppercased)
    Var(String),
    Iri(String),
    Prefixed(String, String),
    Blank(String),
    Literal {
        lexical: String,
        datatype: Option<String>, // full or "pfx:local" — resolved later
        prefixed_datatype: Option<(String, String)>,
        language: Option<String>,
    },
    Integer(String),
    A,
    Dot,
    LBrace,
    RBrace,
    Star,
}

struct Located {
    tok: Tok,
    line: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
        }
    }

    fn err(&self, m: &str) -> QueryError {
        QueryError::Syntax {
            line: self.line,
            message: m.to_string(),
        }
    }

    fn read_name(&mut self) -> String {
        let mut s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-') {
                s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        s
    }

    fn run(&mut self) -> Result<Vec<Located>> {
        let mut out = Vec::new();
        while let Some(&c) = self.chars.peek() {
            match c {
                '\n' => {
                    self.line += 1;
                    self.chars.next();
                }
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                '#' => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.chars.next();
                    }
                }
                '?' | '$' => {
                    self.chars.next();
                    let name = self.read_name();
                    if name.is_empty() {
                        return Err(self.err("empty variable name"));
                    }
                    out.push(Located {
                        tok: Tok::Var(name),
                        line: self.line,
                    });
                }
                '<' => {
                    self.chars.next();
                    let mut iri = String::new();
                    loop {
                        match self.chars.next() {
                            Some('>') => break,
                            Some('\n') | None => return Err(self.err("unterminated IRI")),
                            Some(c) => iri.push(c),
                        }
                    }
                    out.push(Located {
                        tok: Tok::Iri(iri),
                        line: self.line,
                    });
                }
                '_' => {
                    self.chars.next();
                    if self.chars.next() != Some(':') {
                        return Err(self.err("expected ':' after '_'"));
                    }
                    let label = self.read_name();
                    if label.is_empty() {
                        return Err(self.err("empty blank node label"));
                    }
                    out.push(Located {
                        tok: Tok::Blank(label),
                        line: self.line,
                    });
                }
                '"' => {
                    self.chars.next();
                    let mut lex = String::new();
                    loop {
                        match self.chars.next() {
                            Some('"') => break,
                            Some('\\') => match self.chars.next() {
                                Some('n') => lex.push('\n'),
                                Some('t') => lex.push('\t'),
                                Some('r') => lex.push('\r'),
                                Some('"') => lex.push('"'),
                                Some('\\') => lex.push('\\'),
                                _ => return Err(self.err("bad escape in literal")),
                            },
                            Some('\n') | None => return Err(self.err("unterminated literal")),
                            Some(c) => lex.push(c),
                        }
                    }
                    let mut datatype = None;
                    let mut prefixed_datatype = None;
                    let mut language = None;
                    if self.chars.peek() == Some(&'^') {
                        self.chars.next();
                        if self.chars.next() != Some('^') {
                            return Err(self.err("expected '^^'"));
                        }
                        if self.chars.peek() == Some(&'<') {
                            self.chars.next();
                            let mut iri = String::new();
                            loop {
                                match self.chars.next() {
                                    Some('>') => break,
                                    Some(c) => iri.push(c),
                                    None => return Err(self.err("unterminated datatype IRI")),
                                }
                            }
                            datatype = Some(iri);
                        } else {
                            let pfx = self.read_name();
                            if self.chars.next() != Some(':') {
                                return Err(self.err("expected prefixed datatype"));
                            }
                            let local = self.read_name();
                            prefixed_datatype = Some((pfx, local));
                        }
                    } else if self.chars.peek() == Some(&'@') {
                        self.chars.next();
                        let tag = self.read_name();
                        if tag.is_empty() {
                            return Err(self.err("empty language tag"));
                        }
                        language = Some(tag);
                    }
                    out.push(Located {
                        tok: Tok::Literal {
                            lexical: lex,
                            datatype,
                            prefixed_datatype,
                            language,
                        },
                        line: self.line,
                    });
                }
                '.' => {
                    self.chars.next();
                    out.push(Located {
                        tok: Tok::Dot,
                        line: self.line,
                    });
                }
                '{' => {
                    self.chars.next();
                    out.push(Located {
                        tok: Tok::LBrace,
                        line: self.line,
                    });
                }
                '}' => {
                    self.chars.next();
                    out.push(Located {
                        tok: Tok::RBrace,
                        line: self.line,
                    });
                }
                '*' => {
                    self.chars.next();
                    out.push(Located {
                        tok: Tok::Star,
                        line: self.line,
                    });
                }
                '@' => {
                    self.chars.next();
                    let word = self.read_name();
                    if word.eq_ignore_ascii_case("prefix") {
                        out.push(Located {
                            tok: Tok::Keyword("PREFIX".into()),
                            line: self.line,
                        });
                    } else {
                        return Err(self.err(&format!("unsupported directive '@{word}'")));
                    }
                }
                c if c.is_ascii_digit() || c == '-' || c == '+' => {
                    let mut num = String::new();
                    num.push(c);
                    self.chars.next();
                    while let Some(&d) = self.chars.peek() {
                        if d.is_ascii_digit() {
                            num.push(d);
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Located {
                        tok: Tok::Integer(num),
                        line: self.line,
                    });
                }
                _ => {
                    let name = self.read_name();
                    if name.is_empty() {
                        return Err(self.err(&format!("unexpected character '{c}'")));
                    }
                    // Prefixed name?
                    if self.chars.peek() == Some(&':') {
                        self.chars.next();
                        let local = self.read_name();
                        out.push(Located {
                            tok: Tok::Prefixed(name, local),
                            line: self.line,
                        });
                    } else if name == "a" {
                        out.push(Located {
                            tok: Tok::A,
                            line: self.line,
                        });
                    } else {
                        let upper = name.to_ascii_uppercase();
                        match upper.as_str() {
                            "SELECT" | "DISTINCT" | "WHERE" | "PREFIX" => out.push(Located {
                                tok: Tok::Keyword(upper),
                                line: self.line,
                            }),
                            _ => {
                                return Err(
                                    self.err(&format!("unexpected word '{name}' (keywords: SELECT, DISTINCT, WHERE, PREFIX; variables need '?')"))
                                )
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

struct Parser<'d> {
    tokens: Vec<Located>,
    pos: usize,
    prefixes: HashMap<String, String>,
    dict: &'d mut Dictionary,
    blank_counter: usize,
}

impl<'d> Parser<'d> {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, m: &str) -> QueryError {
        QueryError::Syntax {
            line: self.line(),
            message: m.to_string(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Keyword(k)) if k == kw => Ok(()),
            _ => Err(self.err(&format!("expected {kw}"))),
        }
    }

    fn resolve(&self, pfx: &str, local: &str) -> Result<String> {
        let base = self
            .prefixes
            .get(pfx)
            .ok_or_else(|| QueryError::UnknownPrefix {
                line: self.line(),
                prefix: pfx.to_string(),
            })?;
        Ok(format!("{base}{local}"))
    }

    fn query(&mut self) -> Result<Cq> {
        // Prefix declarations.
        while matches!(self.peek(), Some(Tok::Keyword(k)) if k == "PREFIX") {
            self.next();
            let (pfx, local) = match self.next() {
                Some(Tok::Prefixed(p, l)) => (p, l),
                _ => return Err(self.err("expected 'pfx:' after PREFIX")),
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must be 'pfx: <iri>'"));
            }
            let iri = match self.next() {
                Some(Tok::Iri(iri)) => iri,
                _ => return Err(self.err("expected <iri> in PREFIX")),
            };
            if matches!(self.peek(), Some(Tok::Dot)) {
                self.next();
            }
            self.prefixes.insert(pfx, iri);
        }

        self.expect_keyword("SELECT")?;
        if matches!(self.peek(), Some(Tok::Keyword(k)) if k == "DISTINCT") {
            self.next();
        }
        // Projection: '*' or one or more variables.
        let mut star = false;
        let mut head: Vec<Var> = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.next();
                    star = true;
                    break;
                }
                Some(Tok::Var(_)) => {
                    if let Some(Tok::Var(name)) = self.next() {
                        if name.starts_with("_f") {
                            return Err(QueryError::ReservedVariable(name));
                        }
                        head.push(Var::new(name));
                    }
                }
                _ => break,
            }
        }
        if !star && head.is_empty() {
            return Err(self.err("SELECT needs at least one variable or '*'"));
        }

        self.expect_keyword("WHERE")?;
        match self.next() {
            Some(Tok::LBrace) => {}
            _ => return Err(self.err("expected '{' after WHERE")),
        }

        // BGP.
        let mut body: Vec<Atom> = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    break;
                }
                None => return Err(self.err("unexpected end of query, expected '}'")),
                _ => {
                    let s = self.pattern_term()?;
                    let p = self.pattern_term()?;
                    let o = self.pattern_term()?;
                    body.push(Atom { s, p, o });
                    match self.peek() {
                        Some(Tok::Dot) => {
                            self.next();
                        }
                        Some(Tok::RBrace) => {}
                        _ => return Err(self.err("expected '.' or '}' after pattern")),
                    }
                }
            }
        }
        if body.is_empty() {
            return Err(self.err("empty WHERE clause"));
        }
        if self.peek().is_some() {
            return Err(self.err("trailing content after '}'"));
        }

        if star {
            // All named (non-blank-generated) variables, first occurrence order.
            let mut seen = std::collections::HashSet::new();
            for atom in &body {
                for v in atom.vars() {
                    if !v.name().starts_with("_blank") && seen.insert(v.clone()) {
                        head.push(v.clone());
                    }
                }
            }
            if head.is_empty() {
                return Err(self.err("'SELECT *' found no variables to project"));
            }
        }
        Cq::new(head, body)
    }

    fn pattern_term(&mut self) -> Result<PTerm> {
        let tok = self
            .next()
            .ok_or_else(|| self.err("unexpected end of query, expected a term"))?;
        match tok {
            Tok::Var(name) => {
                if name.starts_with("_f") {
                    return Err(QueryError::ReservedVariable(name));
                }
                Ok(PTerm::Var(Var::new(name)))
            }
            Tok::A => Ok(PTerm::Const(self.dict.intern(&Term::iri(vocab::RDF_TYPE)))),
            Tok::Iri(iri) => Ok(PTerm::Const(self.dict.intern(&Term::iri(iri)))),
            Tok::Prefixed(pfx, local) => {
                let iri = self.resolve(&pfx, &local)?;
                Ok(PTerm::Const(self.dict.intern(&Term::iri(iri))))
            }
            Tok::Blank(label) => {
                // SPARQL blank nodes are scoped non-distinguished variables.
                self.blank_counter += 1;
                Ok(PTerm::Var(Var::new(format!("_blank_{label}"))))
            }
            Tok::Integer(n) => Ok(PTerm::Const(
                self.dict
                    .intern(&Term::typed_literal(n, vocab::XSD_INTEGER)),
            )),
            Tok::Literal {
                lexical,
                datatype,
                prefixed_datatype,
                language,
            } => {
                let datatype = match (datatype, prefixed_datatype) {
                    (Some(iri), _) => Some(iri),
                    (None, Some((pfx, local))) => Some(self.resolve(&pfx, &local)?),
                    (None, None) => None,
                };
                let term = Term::Literal(rdfref_model::term::Literal {
                    lexical: lexical.into(),
                    datatype: datatype.map(Into::into),
                    language: language.map(|l| l.to_ascii_lowercase().into()),
                });
                Ok(PTerm::Const(self.dict.intern(&term)))
            }
            other => Err(self.err(&format!("expected a term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> (Cq, Dictionary) {
        let mut dict = Dictionary::new();
        let cq = parse_select(q, &mut dict).unwrap();
        (cq, dict)
    }

    #[test]
    fn parses_the_paper_example_1_query() {
        let q = r#"
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x ?u ?y ?v ?z WHERE {
  ?x a ?u .
  ?y a ?v .
  ?x ub:mastersDegreeFrom <http://www.Univ532.edu> .
  ?y ub:doctoralDegreeFrom <http://www.Univ532.edu> .
  ?x ub:memberOf ?z .
  ?y ub:memberOf ?z
}"#;
        let (cq, dict) = parse(q);
        assert_eq!(cq.arity(), 5);
        assert_eq!(cq.size(), 6);
        // 'a' became rdf:type.
        assert_eq!(
            cq.body[0].p,
            PTerm::Const(dict.id_of_iri(vocab::RDF_TYPE).unwrap())
        );
        // Class positions are variables.
        assert!(cq.body[0].o.is_var());
        assert_eq!(cq.head_vars().len(), 5);
    }

    #[test]
    fn select_star_projects_all_named_vars() {
        let (cq, _) = parse("SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> _:b }");
        assert_eq!(cq.head_vars(), vec![Var::new("x"), Var::new("y")]);
        // The blank became a variable in the body but not the head.
        assert_eq!(cq.var_set().len(), 3);
    }

    #[test]
    fn distinct_is_accepted() {
        let (cq, _) = parse("SELECT DISTINCT ?x WHERE { ?x <http://e/p> ?y }");
        assert_eq!(cq.arity(), 1);
    }

    #[test]
    fn literals_and_integers() {
        let (cq, dict) = parse(
            "SELECT ?x WHERE { ?x <http://e/published> 1949 . ?x <http://e/title> \"El Aleph\" }",
        );
        assert_eq!(
            cq.body[0].o,
            PTerm::Const(
                dict.id_of(&Term::typed_literal("1949", vocab::XSD_INTEGER))
                    .unwrap()
            )
        );
        assert_eq!(
            cq.body[1].o,
            PTerm::Const(dict.id_of(&Term::literal("El Aleph")).unwrap())
        );
    }

    #[test]
    fn head_var_must_occur_in_body() {
        let mut dict = Dictionary::new();
        let err = parse_select("SELECT ?z WHERE { ?x <http://e/p> ?y }", &mut dict).unwrap_err();
        assert!(matches!(err, QueryError::UnboundHeadVar(_)));
    }

    #[test]
    fn unknown_prefix_reported() {
        let mut dict = Dictionary::new();
        let err = parse_select("SELECT ?x WHERE { ?x ub:p ?y }", &mut dict).unwrap_err();
        assert!(matches!(err, QueryError::UnknownPrefix { .. }));
    }

    #[test]
    fn reserved_variable_rejected() {
        let mut dict = Dictionary::new();
        let err =
            parse_select("SELECT ?_f1 WHERE { ?_f1 <http://e/p> ?y }", &mut dict).unwrap_err();
        assert!(matches!(err, QueryError::ReservedVariable(_)));
    }

    #[test]
    fn syntax_errors_have_lines() {
        let mut dict = Dictionary::new();
        let err = parse_select("SELECT ?x\nWHERE { ?x <http://e/p> }", &mut dict).unwrap_err();
        match err {
            QueryError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_dot_and_no_dot_both_ok() {
        let (a, _) = parse("SELECT ?x WHERE { ?x <http://e/p> ?y . }");
        let (b, _) = parse("SELECT ?x WHERE { ?x <http://e/p> ?y }");
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn empty_where_rejected() {
        let mut dict = Dictionary::new();
        assert!(parse_select("SELECT ?x WHERE { }", &mut dict).is_err());
    }

    #[test]
    fn same_constant_interned_once() {
        let (_, dict) = parse("SELECT ?x ?y WHERE { ?x <http://e/p> ?y . ?y <http://e/p> ?x }");
        // 5 builtins + 1 property.
        assert_eq!(dict.len(), 6);
    }
}
