//! Variable-order selection helpers for worst-case-optimal join planning.
//!
//! A leapfrog-triejoin plan fixes one *global* variable order and requires
//! every atom to bind a permutation index whose sort order lists that atom's
//! variables compatibly. The helpers here are purely structural — they look
//! only at the query hypergraph, never at data — so they live in `query` and
//! are shared by the storage planner and the cost model:
//!
//! * [`is_cyclic`] — GYO ear-removal test for α-acyclicity of the body's
//!   variable hypergraph (a triangle is cyclic; chains and stars are not);
//! * [`hub`] — the most-shared variable, when it joins ≥ 3 atoms (the
//!   star-join signal the cost model uses);
//! * [`candidate_orders`] — deterministic candidate global variable orders:
//!   frequency-ranked heuristics first, then (for small queries) every
//!   permutation, so the planner can fall through to *any* feasible order.

use crate::ast::Atom;
use crate::var::Var;

/// Exhaustive-permutation cap: bodies with at most this many distinct
/// variables enumerate all orders (≤ 5! = 120 candidates); larger bodies
/// fall back to the heuristic orders alone.
pub const MAX_EXHAUSTIVE_VARS: usize = 5;

/// Distinct body variables in first-occurrence order, each with the number
/// of *atoms* it occurs in (an atom counts once even if the variable repeats
/// inside it).
pub fn occurrences(body: &[Atom]) -> Vec<(Var, usize)> {
    let mut out: Vec<(Var, usize)> = Vec::new();
    for atom in body {
        let mut seen_here: Vec<&Var> = Vec::new();
        for v in atom.vars() {
            if seen_here.contains(&v) {
                continue;
            }
            seen_here.push(v);
            match out.iter_mut().find(|(u, _)| u == v) {
                Some((_, n)) => *n += 1,
                None => out.push((v.clone(), 1)),
            }
        }
    }
    out
}

/// The *hub* variable of a star-shaped body: the variable occurring in the
/// most atoms, if it occurs in at least three. Ties break toward the first
/// occurrence, so the answer is deterministic.
pub fn hub(body: &[Atom]) -> Option<(Var, usize)> {
    occurrences(body)
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .filter(|&(_, n)| n >= 3)
}

/// GYO ear-removal α-acyclicity test over the body's variable hypergraph
/// (one hyperedge per atom: its variable set). Repeatedly:
///
/// 1. drop variables that occur in at most one remaining hyperedge
///    (they are "ears" — private to one atom);
/// 2. drop hyperedges that became empty or are contained in another.
///
/// The body is cyclic iff non-empty hyperedges survive the fixpoint. The
/// triangle `{x,y} {y,z} {x,z}` survives (cyclic); chains and stars reduce
/// to nothing (acyclic). Constant-only atoms contribute empty hyperedges
/// and never affect the outcome.
pub fn is_cyclic(body: &[Atom]) -> bool {
    let mut edges: Vec<Vec<Var>> = body
        .iter()
        .map(|a| {
            let mut vs: Vec<Var> = Vec::new();
            for v in a.vars() {
                if !vs.contains(v) {
                    vs.push(v.clone());
                }
            }
            vs
        })
        .filter(|vs| !vs.is_empty())
        .collect();
    loop {
        let before = (edges.len(), edges.iter().map(Vec::len).sum::<usize>());
        // 1. Remove variables private to a single hyperedge.
        let mut i = 0;
        while i < edges.len() {
            let mut j = 0;
            while j < edges[i].len() {
                let v = edges[i][j].clone();
                let elsewhere = edges
                    .iter()
                    .enumerate()
                    .any(|(k, e)| k != i && e.contains(&v));
                if elsewhere {
                    j += 1;
                } else {
                    edges[i].swap_remove(j);
                }
            }
            i += 1;
        }
        // 2. Remove empty hyperedges and hyperedges contained in another.
        edges.retain(|e| !e.is_empty());
        let mut keep: Vec<bool> = vec![true; edges.len()];
        for i in 0..edges.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..edges.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let contained = edges[i].iter().all(|v| edges[j].contains(v));
                let strictly = edges[i].len() < edges[j].len() || i > j;
                if contained && strictly {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        edges.retain(|_| *it.next().unwrap_or(&true));
        if (edges.len(), edges.iter().map(Vec::len).sum::<usize>()) == before {
            break;
        }
    }
    !edges.is_empty()
}

/// Deterministic candidate global variable orders for the body, best guess
/// first:
///
/// 1. atom-frequency descending (hub first), first occurrence breaking ties;
/// 2. plain first-occurrence order;
/// 3. when the body has at most [`MAX_EXHAUSTIVE_VARS`] distinct variables,
///    every remaining permutation in lexicographic rank order.
///
/// Duplicates are removed; the list is never empty unless the body has no
/// variables at all.
pub fn candidate_orders(body: &[Atom]) -> Vec<Vec<Var>> {
    let occ = occurrences(body);
    if occ.is_empty() {
        return Vec::new();
    }
    let first_occurrence: Vec<Var> = occ.iter().map(|(v, _)| v.clone()).collect();
    let mut by_freq = occ.clone();
    // Stable sort keeps first-occurrence order among equal frequencies.
    by_freq.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let freq_desc: Vec<Var> = by_freq.into_iter().map(|(v, _)| v).collect();

    let mut out: Vec<Vec<Var>> = Vec::new();
    let push = |order: Vec<Var>, out: &mut Vec<Vec<Var>>| {
        if !out.contains(&order) {
            out.push(order);
        }
    };
    push(freq_desc, &mut out);
    push(first_occurrence.clone(), &mut out);
    if first_occurrence.len() <= MAX_EXHAUSTIVE_VARS {
        permute(&first_occurrence, &mut Vec::new(), &mut out);
    }
    out
}

/// Append every permutation of `rest` (prefixed by `prefix`) to `out`,
/// skipping duplicates, in lexicographic rank order over `rest`'s indices.
fn permute(rest: &[Var], prefix: &mut Vec<Var>, out: &mut Vec<Vec<Var>>) {
    if rest.is_empty() {
        if !out.contains(prefix) {
            out.push(prefix.clone());
        }
        return;
    }
    for i in 0..rest.len() {
        let mut remaining = rest.to_vec();
        let v = remaining.remove(i);
        prefix.push(v);
        permute(&remaining, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::TermId;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    fn triangle() -> Vec<Atom> {
        let p = TermId(7);
        vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("x"), p, v("z")),
        ]
    }

    fn chain() -> Vec<Atom> {
        let p = TermId(7);
        vec![
            Atom::new(v("x"), p, v("y")),
            Atom::new(v("y"), p, v("z")),
            Atom::new(v("z"), p, v("w")),
        ]
    }

    fn star() -> Vec<Atom> {
        let p = TermId(7);
        vec![
            Atom::new(v("h"), p, v("a")),
            Atom::new(v("h"), p, v("b")),
            Atom::new(v("h"), p, v("c")),
        ]
    }

    #[test]
    fn triangle_is_cyclic() {
        assert!(is_cyclic(&triangle()));
    }

    #[test]
    fn chain_and_star_are_acyclic() {
        assert!(!is_cyclic(&chain()));
        assert!(!is_cyclic(&star()));
    }

    #[test]
    fn single_atom_and_empty_are_acyclic() {
        let p = TermId(7);
        assert!(!is_cyclic(&[]));
        assert!(!is_cyclic(&[Atom::new(v("x"), p, v("y"))]));
        // Constant-only atoms contribute nothing.
        assert!(!is_cyclic(&[Atom::new(TermId(1), p, TermId(2))]));
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let p = TermId(7);
        let body = vec![
            Atom::new(v("a"), p, v("b")),
            Atom::new(v("b"), p, v("c")),
            Atom::new(v("c"), p, v("d")),
            Atom::new(v("d"), p, v("a")),
        ];
        assert!(is_cyclic(&body));
    }

    #[test]
    fn hub_found_only_with_three_atoms() {
        assert_eq!(hub(&star()), Some((v("h"), 3)));
        assert_eq!(hub(&chain()), None);
        // Triangle: every variable is in exactly 2 atoms — no hub.
        assert_eq!(hub(&triangle()), None);
    }

    #[test]
    fn occurrences_count_atoms_not_positions() {
        let p = TermId(7);
        // x appears twice inside one atom: counts once for that atom.
        let body = vec![Atom::new(v("x"), p, v("x")), Atom::new(v("x"), p, v("y"))];
        assert_eq!(occurrences(&body), vec![(v("x"), 2), (v("y"), 1)]);
    }

    #[test]
    fn candidate_orders_start_with_frequency_heuristic() {
        let orders = candidate_orders(&star());
        assert_eq!(orders[0][0], v("h"), "hub leads the frequency order");
        // 4 distinct vars ≤ cap: all 24 permutations present (deduped).
        assert_eq!(orders.len(), 24);
        let occ = occurrences(&star());
        for o in &orders {
            assert_eq!(o.len(), occ.len());
        }
    }

    #[test]
    fn candidate_orders_empty_for_constant_body() {
        let body = vec![Atom::new(TermId(1), TermId(2), TermId(3))];
        assert!(candidate_orders(&body).is_empty());
    }
}
