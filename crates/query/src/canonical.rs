//! Canonical forms for CQ deduplication.
//!
//! The reformulation fixpoint generates the same CQ along many derivation
//! paths, differing only in (a) atom order and (b) the numbering of *fresh*
//! variables minted by rules 2/3/10/11. Named (user) variables are never
//! renamed by any rule, so two generated CQs are duplicates iff they are
//! equal modulo atom order and fresh-variable renaming.
//!
//! [`canonicalize`] normalizes exactly those two degrees of freedom:
//! 1. sort atoms by a *shape key* that treats every fresh variable as an
//!    anonymous placeholder;
//! 2. rename fresh variables in first-occurrence order over the sorted body;
//! 3. sort atoms again (now fully concrete) and deduplicate.
//!
//! The result is a sound, deterministic dedup key: equal canonical forms are
//! equivalent queries. It is *not* a complete isomorphism test (that is
//! graph-isomorphism hard and unnecessary here): in particular, when two
//! atoms share an identical shape key and cross-reference fresh variables,
//! permutations of them may canonicalize differently — the fixpoint then
//! keeps both variants, costing a slightly larger union but never a wrong
//! answer.

use crate::ast::{Atom, Cq, PTerm, Substitution};
use crate::var::{FreshVars, Var};
use rdfref_model::fxhash::FxHashSet;
use rdfref_model::TermId;

/// A variable-numbering-independent key for one pattern position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ShapeKey {
    Const(TermId),
    NamedVar(Var),
    FreshVar,
}

fn shape_of(t: &PTerm) -> ShapeKey {
    match t {
        PTerm::Const(c) => ShapeKey::Const(*c),
        PTerm::Var(v) if v.is_fresh() => ShapeKey::FreshVar,
        PTerm::Var(v) => ShapeKey::NamedVar(v.clone()),
    }
}

fn atom_shape(a: &Atom) -> [ShapeKey; 3] {
    [shape_of(&a.s), shape_of(&a.p), shape_of(&a.o)]
}

/// Canonicalize a CQ for deduplication (see module docs).
pub fn canonicalize(cq: &Cq) -> Cq {
    // 1. Sort by shape.
    let mut body = cq.body.clone();
    body.sort_by_key(atom_shape);

    // 2. Rename fresh variables by first occurrence (head first, then body).
    let mut renaming = Substitution::default();
    let mut gen = FreshVars::new();
    let visit = |t: &PTerm, renaming: &mut Substitution, gen: &mut FreshVars| {
        if let PTerm::Var(v) = t {
            if v.is_fresh() && !renaming.contains_key(v) {
                renaming.insert(v.clone(), PTerm::Var(gen.next()));
            }
        }
    };
    for t in &cq.head {
        visit(t, &mut renaming, &mut gen);
    }
    for a in &body {
        visit(&a.s, &mut renaming, &mut gen);
        visit(&a.p, &mut renaming, &mut gen);
        visit(&a.o, &mut renaming, &mut gen);
    }
    let head: Vec<PTerm> = cq
        .head
        .iter()
        .map(|t| crate::ast::substitute(t, &renaming))
        .collect();
    let mut body: Vec<Atom> = body.iter().map(|a| a.apply(&renaming)).collect();

    // 3. Final concrete sort + dedup of repeated atoms.
    body.sort();
    body.dedup();
    Cq::new_unchecked(head, body)
}

/// A set of CQs keyed by canonical form — the working set of the
/// reformulation fixpoint.
#[derive(Debug, Default)]
pub struct CanonicalSet {
    seen: FxHashSet<Cq>,
}

impl CanonicalSet {
    /// An empty set.
    pub fn new() -> Self {
        CanonicalSet::default()
    }

    /// Insert a CQ; returns `true` if it was new (up to canonical form).
    pub fn insert(&mut self, cq: &Cq) -> bool {
        self.seen.insert(canonicalize(cq))
    }

    /// Has an equivalent CQ been inserted?
    pub fn contains(&self, cq: &Cq) -> bool {
        self.seen.contains(&canonicalize(cq))
    }

    /// Number of distinct canonical CQs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn c(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn atom_order_is_normalized() {
        let a = Atom::new(v("x"), c(1), v("y"));
        let b = Atom::new(v("y"), c(2), v("z"));
        let q1 = Cq::new_unchecked(vec![v("x").into()], vec![a.clone(), b.clone()]);
        let q2 = Cq::new_unchecked(vec![v("x").into()], vec![b, a]);
        assert_eq!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn fresh_var_numbering_is_normalized() {
        let q1 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![Atom::new(v("x"), c(1), Var::fresh(17))],
        );
        let q2 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![Atom::new(v("x"), c(1), Var::fresh(23))],
        );
        assert_eq!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn named_vars_are_not_conflated() {
        let q1 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), v("y"))]);
        let q2 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), v("z"))]);
        assert_ne!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn repeated_atoms_deduplicated() {
        let a = Atom::new(v("x"), c(1), v("y"));
        let q = Cq::new_unchecked(vec![v("x").into()], vec![a.clone(), a]);
        assert_eq!(canonicalize(&q).size(), 1);
    }

    #[test]
    fn different_constants_stay_distinct() {
        let q1 = Cq::new_unchecked(vec![], vec![Atom::new(v("x"), c(1), c(5))]);
        let q2 = Cq::new_unchecked(vec![], vec![Atom::new(v("x"), c(1), c(6))]);
        assert_ne!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn canonical_set_dedups() {
        let mut set = CanonicalSet::new();
        let q1 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![
                Atom::new(v("x"), c(1), Var::fresh(3)),
                Atom::new(v("x"), c(2), v("y")),
            ],
        );
        let q2 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![
                Atom::new(v("x"), c(2), v("y")),
                Atom::new(v("x"), c(1), Var::fresh(99)),
            ],
        );
        assert!(set.insert(&q1));
        assert!(!set.insert(&q2));
        assert_eq!(set.len(), 1);
        assert!(set.contains(&q2));
    }

    #[test]
    fn two_fresh_vars_in_one_atom() {
        // (f1 p f2) vs (f2 p f1): both canonicalize to (_f0 p _f1).
        let q1 = Cq::new_unchecked(vec![], vec![Atom::new(Var::fresh(1), c(1), Var::fresh(2))]);
        let q2 = Cq::new_unchecked(vec![], vec![Atom::new(Var::fresh(2), c(1), Var::fresh(1))]);
        assert_eq!(canonicalize(&q1), canonicalize(&q2));
    }
}
