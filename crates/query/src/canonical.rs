//! Canonical forms for CQ deduplication.
//!
//! The reformulation fixpoint generates the same CQ along many derivation
//! paths, differing only in (a) atom order and (b) the numbering of *fresh*
//! variables minted by rules 2/3/10/11. Named (user) variables are never
//! renamed by any rule, so two generated CQs are duplicates iff they are
//! equal modulo atom order and fresh-variable renaming.
//!
//! [`canonicalize`] normalizes exactly those two degrees of freedom:
//! 1. sort atoms by a *shape key* that treats every fresh variable as an
//!    anonymous placeholder;
//! 2. rename fresh variables in first-occurrence order over the sorted body;
//! 3. sort atoms again (now fully concrete) and deduplicate.
//!
//! The result is a sound, deterministic dedup key: equal canonical forms are
//! equivalent queries. It is *not* a complete isomorphism test (that is
//! graph-isomorphism hard and unnecessary here): in particular, when two
//! atoms share an identical shape key and cross-reference fresh variables,
//! permutations of them may canonicalize differently — the fixpoint then
//! keeps both variants, costing a slightly larger union but never a wrong
//! answer.

use crate::ast::{Atom, Cq, PTerm, Substitution};
use crate::var::{FreshVars, Var};
use rdfref_model::fxhash::FxHashSet;
use rdfref_model::TermId;

/// A variable-numbering-independent key for one pattern position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ShapeKey {
    Const(TermId),
    Range(TermId, TermId),
    NamedVar(Var),
    FreshVar,
}

fn shape_of(t: &PTerm) -> ShapeKey {
    match t {
        PTerm::Const(c) => ShapeKey::Const(*c),
        PTerm::Range(lo, hi) => ShapeKey::Range(*lo, *hi),
        PTerm::Var(v) if v.is_fresh() => ShapeKey::FreshVar,
        PTerm::Var(v) => ShapeKey::NamedVar(v.clone()),
    }
}

fn atom_shape(a: &Atom) -> [ShapeKey; 3] {
    [shape_of(&a.s), shape_of(&a.p), shape_of(&a.o)]
}

/// Canonicalize a CQ for deduplication (see module docs).
pub fn canonicalize(cq: &Cq) -> Cq {
    // 1. Sort by shape.
    let mut body = cq.body.clone();
    body.sort_by_key(atom_shape);

    // 2. Rename fresh variables by first occurrence (head first, then body).
    let mut renaming = Substitution::default();
    let mut gen = FreshVars::new();
    let visit = |t: &PTerm, renaming: &mut Substitution, gen: &mut FreshVars| {
        if let PTerm::Var(v) = t {
            if v.is_fresh() && !renaming.contains_key(v) {
                renaming.insert(v.clone(), PTerm::Var(gen.next()));
            }
        }
    };
    for t in &cq.head {
        visit(t, &mut renaming, &mut gen);
    }
    for a in &body {
        visit(&a.s, &mut renaming, &mut gen);
        visit(&a.p, &mut renaming, &mut gen);
        visit(&a.o, &mut renaming, &mut gen);
    }
    let head: Vec<PTerm> = cq
        .head
        .iter()
        .map(|t| crate::ast::substitute(t, &renaming))
        .collect();
    let mut body: Vec<Atom> = body.iter().map(|a| a.apply(&renaming)).collect();

    // 3. Final concrete sort + dedup of repeated atoms.
    body.sort();
    body.dedup();
    Cq::new_unchecked(head, body)
}

/// An α-canonical form: the fully variable-renamed query plus what is
/// needed to transport plans computed for it back to the original query.
///
/// Produced by [`alpha_canonicalize`]; consumed by the plan cache in
/// `rdfref-core`.
#[derive(Debug, Clone)]
pub struct AlphaCanonical {
    /// The canonical query: atoms shape-sorted, *every* variable renamed
    /// positionally (named variables to `cv0, cv1, …`; fresh variables to
    /// `_f0, _f1, …`), duplicate atoms removed.
    pub query: Cq,
    /// Maps each canonical variable back to the original term it replaced.
    /// Applying it to a plan computed for `query` (whose variables are the
    /// canonical ones, plus any fresh variables minted during planning)
    /// yields the equivalent plan for the original query.
    pub inverse: Substitution,
    /// For each atom position in the *original* body, its position in the
    /// canonical body (after sorting and deduplication). Used to transport
    /// atom-indexed structures such as covers.
    pub atom_map: Vec<usize>,
}

/// A shape key that anonymizes *every* variable, named or fresh.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum AnonKey {
    Const(TermId),
    Range(TermId, TermId),
    AnyVar,
}

fn anon_shape_of(t: &PTerm) -> AnonKey {
    match t {
        PTerm::Const(c) => AnonKey::Const(*c),
        PTerm::Range(lo, hi) => AnonKey::Range(*lo, *hi),
        PTerm::Var(_) => AnonKey::AnyVar,
    }
}

fn anon_atom_shape(a: &Atom) -> [AnonKey; 3] {
    [
        anon_shape_of(&a.s),
        anon_shape_of(&a.p),
        anon_shape_of(&a.o),
    ]
}

/// α-canonicalize a CQ: like [`canonicalize`], but rename **all** variables
/// — named ones too — so that two queries differing only by a variable
/// renaming (and atom order) map to the same canonical form. This is the
/// cache key used by the plan cache: `canonicalize` alone is too weak there
/// because it treats user variable names as significant.
///
/// Soundness: the renaming is a bijection on the query's variables, so equal
/// canonical forms imply the queries are isomorphic, and a plan for one
/// becomes a plan for the other by applying `inverse`. Like `canonicalize`,
/// this is not a *complete* isomorphism test: atoms with identical
/// anonymous shapes are tie-broken by input order, so some isomorphic pairs
/// canonicalize differently — costing a missed cache hit, never a wrong
/// answer.
pub fn alpha_canonicalize(cq: &Cq) -> AlphaCanonical {
    // 1. Sort atom positions by fully anonymous shape.
    let mut order: Vec<usize> = (0..cq.body.len()).collect();
    order.sort_by(|&i, &j| anon_atom_shape(&cq.body[i]).cmp(&anon_atom_shape(&cq.body[j])));

    // 2. Rename every variable in first-occurrence order (head first, then
    //    the shape-sorted body). Fresh variables keep fresh identity (the
    //    reformulation rules treat them as existential); named variables
    //    become cv0, cv1, …
    let mut renaming = Substitution::default();
    let mut inverse = Substitution::default();
    let mut gen = FreshVars::new();
    let mut named = 0usize;
    let mut visit = |t: &PTerm| {
        if let PTerm::Var(v) = t {
            if !renaming.contains_key(v) {
                let canonical = if v.is_fresh() {
                    gen.next()
                } else {
                    let c = Var::new(format!("cv{named}"));
                    named += 1;
                    c
                };
                renaming.insert(v.clone(), PTerm::Var(canonical.clone()));
                inverse.insert(canonical, PTerm::Var(v.clone()));
            }
        }
    };
    for t in &cq.head {
        visit(t);
    }
    for &i in &order {
        let a = &cq.body[i];
        visit(&a.s);
        visit(&a.p);
        visit(&a.o);
    }

    let head: Vec<PTerm> = cq
        .head
        .iter()
        .map(|t| crate::ast::substitute(t, &renaming))
        .collect();
    let renamed: Vec<Atom> = order.iter().map(|&i| cq.body[i].apply(&renaming)).collect();

    // 3. Final concrete sort + dedup, tracking where each original atom
    //    lands so covers can be transported.
    let mut idx: Vec<usize> = (0..renamed.len()).collect();
    idx.sort_by(|&a, &b| renamed[a].cmp(&renamed[b]));
    let mut body: Vec<Atom> = Vec::with_capacity(renamed.len());
    let mut atom_map = vec![0usize; cq.body.len()];
    for &j in &idx {
        if body.last() != Some(&renamed[j]) {
            body.push(renamed[j].clone());
        }
        atom_map[order[j]] = body.len() - 1;
    }

    AlphaCanonical {
        query: Cq::new_unchecked(head, body),
        inverse,
        atom_map,
    }
}

/// A set of CQs keyed by canonical form — the working set of the
/// reformulation fixpoint.
#[derive(Debug, Default)]
pub struct CanonicalSet {
    seen: FxHashSet<Cq>,
}

impl CanonicalSet {
    /// An empty set.
    pub fn new() -> Self {
        CanonicalSet::default()
    }

    /// Insert a CQ; returns `true` if it was new (up to canonical form).
    pub fn insert(&mut self, cq: &Cq) -> bool {
        self.seen.insert(canonicalize(cq))
    }

    /// Has an equivalent CQ been inserted?
    pub fn contains(&self, cq: &Cq) -> bool {
        self.seen.contains(&canonicalize(cq))
    }

    /// Number of distinct canonical CQs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn c(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn atom_order_is_normalized() {
        let a = Atom::new(v("x"), c(1), v("y"));
        let b = Atom::new(v("y"), c(2), v("z"));
        let q1 = Cq::new_unchecked(vec![v("x").into()], vec![a.clone(), b.clone()]);
        let q2 = Cq::new_unchecked(vec![v("x").into()], vec![b, a]);
        assert_eq!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn fresh_var_numbering_is_normalized() {
        let q1 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![Atom::new(v("x"), c(1), Var::fresh(17))],
        );
        let q2 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![Atom::new(v("x"), c(1), Var::fresh(23))],
        );
        assert_eq!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn named_vars_are_not_conflated() {
        let q1 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), v("y"))]);
        let q2 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), v("z"))]);
        assert_ne!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn repeated_atoms_deduplicated() {
        let a = Atom::new(v("x"), c(1), v("y"));
        let q = Cq::new_unchecked(vec![v("x").into()], vec![a.clone(), a]);
        assert_eq!(canonicalize(&q).size(), 1);
    }

    #[test]
    fn different_constants_stay_distinct() {
        let q1 = Cq::new_unchecked(vec![], vec![Atom::new(v("x"), c(1), c(5))]);
        let q2 = Cq::new_unchecked(vec![], vec![Atom::new(v("x"), c(1), c(6))]);
        assert_ne!(canonicalize(&q1), canonicalize(&q2));
    }

    #[test]
    fn canonical_set_dedups() {
        let mut set = CanonicalSet::new();
        let q1 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![
                Atom::new(v("x"), c(1), Var::fresh(3)),
                Atom::new(v("x"), c(2), v("y")),
            ],
        );
        let q2 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![
                Atom::new(v("x"), c(2), v("y")),
                Atom::new(v("x"), c(1), Var::fresh(99)),
            ],
        );
        assert!(set.insert(&q1));
        assert!(!set.insert(&q2));
        assert_eq!(set.len(), 1);
        assert!(set.contains(&q2));
    }

    #[test]
    fn alpha_identifies_renamed_queries() {
        // { ?x :1 ?y . ?y :2 ?z } and { ?a :1 ?b . ?b :2 ?c } with atoms
        // reordered are α-equivalent; `canonicalize` keeps them distinct,
        // `alpha_canonicalize` does not.
        let q1 = Cq::new_unchecked(
            vec![v("x").into()],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("y"), c(2), v("z")),
            ],
        );
        let q2 = Cq::new_unchecked(
            vec![v("a").into()],
            vec![
                Atom::new(v("b"), c(2), v("c")),
                Atom::new(v("a"), c(1), v("b")),
            ],
        );
        assert_ne!(canonicalize(&q1), canonicalize(&q2));
        assert_eq!(alpha_canonicalize(&q1).query, alpha_canonicalize(&q2).query);
    }

    #[test]
    fn alpha_keeps_different_queries_distinct() {
        let q1 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), c(5))]);
        let q2 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), c(6))]);
        assert_ne!(alpha_canonicalize(&q1).query, alpha_canonicalize(&q2).query);
        // Join structure matters: x–x join vs x–y cross.
        let j1 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), v("x"))]);
        let j2 = Cq::new_unchecked(vec![v("x").into()], vec![Atom::new(v("x"), c(1), v("y"))]);
        assert_ne!(alpha_canonicalize(&j1).query, alpha_canonicalize(&j2).query);
    }

    #[test]
    fn alpha_inverse_restores_original_vars() {
        let q = Cq::new_unchecked(
            vec![v("x").into(), v("n").into()],
            vec![
                Atom::new(v("x"), c(1), v("a")),
                Atom::new(v("a"), c(2), v("n")),
            ],
        );
        let canon = alpha_canonicalize(&q);
        // Head round-trips exactly.
        let restored_head: Vec<PTerm> = canon
            .query
            .head
            .iter()
            .map(|t| crate::ast::substitute(t, &canon.inverse))
            .collect();
        assert_eq!(restored_head, q.head);
        // Each original atom is found at its mapped canonical position.
        for (i, a) in q.body.iter().enumerate() {
            let there = canon.query.body[canon.atom_map[i]].apply(&canon.inverse);
            assert_eq!(&there, a);
        }
    }

    #[test]
    fn alpha_atom_map_handles_dedup() {
        // Two α-identical copies of one atom collapse; both map to slot 0.
        let q = Cq::new_unchecked(
            vec![v("x").into()],
            vec![
                Atom::new(v("x"), c(1), v("x")),
                Atom::new(v("x"), c(1), v("x")),
            ],
        );
        let canon = alpha_canonicalize(&q);
        assert_eq!(canon.query.size(), 1);
        assert_eq!(canon.atom_map, vec![0, 0]);
    }

    #[test]
    fn two_fresh_vars_in_one_atom() {
        // (f1 p f2) vs (f2 p f1): both canonicalize to (_f0 p _f1).
        let q1 = Cq::new_unchecked(vec![], vec![Atom::new(Var::fresh(1), c(1), Var::fresh(2))]);
        let q2 = Cq::new_unchecked(vec![], vec![Atom::new(Var::fresh(2), c(1), Var::fresh(1))]);
        assert_eq!(canonicalize(&q1), canonicalize(&q2));
    }
}
