//! CQ containment, UCQ subsumption pruning, and CQ minimization.
//!
//! The EDBT'13 reformulation work prunes the UCQ it produces: a disjunct
//! whose answers are always contained in another disjunct's answers is
//! redundant. Containment of conjunctive queries is decided by the classic
//! homomorphism theorem [Chandra & Merlin 1977]: `q2 ⊑ q1` iff there is a
//! homomorphism from `q1`'s body into `q2`'s body mapping `q1`'s head onto
//! `q2`'s head. Our CQs are tiny (a handful of atoms), so a direct
//! backtracking search is exact and fast.
//!
//! The same machinery minimizes a single CQ (drop atoms whose removal leaves
//! an equivalent query — its *core*), another standard cleanup that shrinks
//! reformulations.

use crate::ast::{Atom, Cq, PTerm, Ucq};
use crate::var::Var;
use rdfref_model::fxhash::FxHashMap;

/// A partial homomorphism: query variables of the *general* CQ mapped to
/// pattern terms of the *specific* CQ.
type Hom = FxHashMap<Var, PTerm>;

/// Try to extend `hom` by mapping `from` onto `to`.
fn unify(from: &PTerm, to: &PTerm, hom: &mut Hom) -> bool {
    match from {
        PTerm::Const(c) => matches!(to, PTerm::Const(d) if c == d),
        // Intervals act as opaque constant symbols: only an identical
        // interval unifies. This is conservative (fewer subsumption prunes),
        // never unsound.
        PTerm::Range(lo, hi) => matches!(to, PTerm::Range(l, h) if lo == l && hi == h),
        PTerm::Var(v) => match hom.get(v) {
            Some(bound) => bound == to,
            None => {
                hom.insert(v.clone(), to.clone());
                true
            }
        },
    }
}

fn unify_atom(from: &Atom, to: &Atom, hom: &Hom) -> Option<Hom> {
    let mut candidate = hom.clone();
    if unify(&from.s, &to.s, &mut candidate)
        && unify(&from.p, &to.p, &mut candidate)
        && unify(&from.o, &to.o, &mut candidate)
    {
        Some(candidate)
    } else {
        None
    }
}

/// Backtracking search for a homomorphism from `body` (the general CQ's
/// remaining atoms) into `target` atoms, extending `hom`.
fn search(body: &[Atom], target: &[Atom], hom: &Hom) -> bool {
    let Some((first, rest)) = body.split_first() else {
        return true;
    };
    for atom in target {
        if let Some(extended) = unify_atom(first, atom, hom) {
            if search(rest, target, &extended) {
                return true;
            }
        }
    }
    false
}

/// Is there a homomorphism from `general` into `specific` that maps the head
/// positionally? If so, every answer of `specific` is an answer of
/// `general`: `specific ⊑ general`.
pub fn subsumes(general: &Cq, specific: &Cq) -> bool {
    if general.arity() != specific.arity() {
        return false;
    }
    // Seed the homomorphism from the heads.
    let mut hom = Hom::default();
    for (g, s) in general.head.iter().zip(&specific.head) {
        if !unify(g, s, &mut hom) {
            return false;
        }
    }
    search(&general.body, &specific.body, &hom)
}

/// Are the two CQs equivalent (mutual containment)?
pub fn equivalent(a: &Cq, b: &Cq) -> bool {
    subsumes(a, b) && subsumes(b, a)
}

/// Remove disjuncts subsumed by other disjuncts. Exact but quadratic in the
/// number of disjuncts; callers guard with a size threshold. Keeps the first
/// representative of each equivalence class (in increasing body-size order,
/// so the syntactically smallest survives).
pub fn prune_subsumed(ucq: Ucq) -> Ucq {
    let mut cqs = ucq.cqs;
    // Smaller bodies are more general more often; checking them first makes
    // the kept set shrink quickly.
    cqs.sort_by_key(|c| c.size());
    let mut kept: Vec<Cq> = Vec::with_capacity(cqs.len());
    'outer: for cq in cqs {
        for k in &kept {
            if subsumes(k, &cq) {
                continue 'outer; // redundant
            }
        }
        // The new disjunct may subsume previously kept (larger…no: kept are
        // smaller-or-equal in size, but subsumption is not size-monotone for
        // equal sizes), so sweep the kept set too.
        kept.retain(|k| !subsumes(&cq, k));
        kept.push(cq);
    }
    Ucq { cqs: kept }
}

/// Minimize one CQ: repeatedly drop an atom if the reduced query is still
/// equivalent (the reduced query always subsumes the original; the check is
/// the converse). Computes the core for these small CQs.
pub fn minimize(cq: &Cq) -> Cq {
    let mut current = cq.clone();
    loop {
        let mut reduced_any = false;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut body = current.body.clone();
            body.remove(i);
            let candidate = Cq::new_unchecked(current.head.clone(), body);
            // Head variables must stay bound by the body.
            let body_vars = candidate.var_set();
            let head_ok = candidate
                .head
                .iter()
                .all(|t| t.as_var().map(|v| body_vars.contains(v)).unwrap_or(true));
            if head_ok && subsumes(&candidate, &current) && subsumes(&current, &candidate) {
                current = candidate;
                reduced_any = true;
                break;
            }
        }
        if !reduced_any {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfref_model::TermId;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn c(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn identical_queries_subsume_both_ways() {
        let q = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("y"))]).unwrap();
        assert!(subsumes(&q, &q));
        assert!(equivalent(&q, &q));
    }

    #[test]
    fn adding_atoms_specializes() {
        let gen = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("y"))]).unwrap();
        let spec = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("x"), c(2), c(9)),
            ],
        )
        .unwrap();
        assert!(subsumes(&gen, &spec));
        assert!(!subsumes(&spec, &gen));
    }

    #[test]
    fn constants_must_match() {
        let a = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), c(5))]).unwrap();
        let b = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), c(6))]).unwrap();
        assert!(!subsumes(&a, &b));
        assert!(!subsumes(&b, &a));
        // A variable generalizes a constant.
        let g = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("z"))]).unwrap();
        assert!(subsumes(&g, &a));
        assert!(!subsumes(&a, &g));
    }

    #[test]
    fn heads_constrain_the_homomorphism() {
        // Same body shape, different projected variable.
        let a = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("y"))]).unwrap();
        let b = Cq::new(vec![v("y")], vec![Atom::new(v("x"), c(1), v("y"))]).unwrap();
        assert!(!subsumes(&a, &b));
        // Bound-constant heads must agree.
        let ha = Cq::new_unchecked(
            vec![PTerm::Const(c(7))],
            vec![Atom::new(v("x"), c(1), v("y"))],
        );
        let hb = Cq::new_unchecked(
            vec![PTerm::Const(c(8))],
            vec![Atom::new(v("x"), c(1), v("y"))],
        );
        assert!(!subsumes(&ha, &hb));
        assert!(subsumes(&ha, &ha));
    }

    #[test]
    fn nontrivial_homomorphism_found() {
        // gen: (x p y), (y p z) — a path of 2.
        // spec: (a p a) — a self-loop; hom x,y,z ↦ a.
        let gen = Cq::new_unchecked(
            vec![],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("y"), c(1), v("z")),
            ],
        );
        let spec = Cq::new_unchecked(vec![], vec![Atom::new(v("a"), c(1), v("a"))]);
        assert!(subsumes(&gen, &spec));
        assert!(!subsumes(&spec, &gen));
    }

    #[test]
    fn prune_removes_redundant_disjuncts() {
        let general = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("y"))]).unwrap();
        let specific = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("x"), c(2), v("z")),
            ],
        )
        .unwrap();
        let other = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(3), v("y"))]).unwrap();
        let pruned =
            prune_subsumed(Ucq::new(vec![specific, general.clone(), other.clone()]).unwrap());
        assert_eq!(pruned.len(), 2);
        assert!(pruned.cqs.contains(&general));
        assert!(pruned.cqs.contains(&other));
    }

    #[test]
    fn prune_keeps_one_of_equivalent_pair() {
        let a = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("y"))]).unwrap();
        // Same query with a renamed non-distinguished variable.
        let b = Cq::new(vec![v("x")], vec![Atom::new(v("x"), c(1), v("w"))]).unwrap();
        let pruned = prune_subsumed(Ucq::new(vec![a, b]).unwrap());
        assert_eq!(pruned.len(), 1);
    }

    #[test]
    fn minimize_drops_redundant_atoms() {
        // (x p y), (x p z): the second atom is a homomorphic duplicate of
        // the first (z ↦ y), so the core is one atom.
        let q = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("x"), c(1), v("z")),
            ],
        )
        .unwrap();
        let m = minimize(&q);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn minimize_keeps_necessary_atoms() {
        // A genuine path query cannot be shrunk when the middle variable is
        // projected.
        let q = Cq::new(
            vec![v("x"), v("y"), v("z")],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("y"), c(1), v("z")),
            ],
        )
        .unwrap();
        assert_eq!(minimize(&q).size(), 2);
        // (x p y) folds onto (x p w) (y is unprojected), so the core is the
        // 2-atom chain; the chain itself is irreducible.
        let q2 = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("x"), c(1), v("w")),
                Atom::new(v("w"), c(2), v("u")),
            ],
        )
        .unwrap();
        let m = minimize(&q2);
        assert_eq!(m.size(), 2);
        assert!(m.body.iter().any(|a| a.p == PTerm::Const(c(2))));
    }

    #[test]
    fn minimize_never_unbinds_head_vars() {
        let q = Cq::new(
            vec![v("y")],
            vec![
                Atom::new(v("x"), c(1), v("y")),
                Atom::new(v("x"), c(1), v("z")),
            ],
        )
        .unwrap();
        let m = minimize(&q);
        // The kept atom must contain y.
        assert!(m.body.iter().any(|a| a.var_set().contains(&v("y"))));
    }
}
