//! Query covers — the search space of JUCQ reformulations.
//!
//! A *cover* of a CQ `q` with atoms `t1, …, tn` is a set of non-empty,
//! possibly overlapping fragments (atom groups) whose union is all of
//! `{t1, …, tn}` (§4 of the paper, "Query covering"). Every cover yields an
//! equivalent query answering strategy: reformulate each fragment CQ into a
//! UCQ and join the results.
//!
//! Two distinguished covers correspond to the prior reformulation languages:
//! * [`Cover::one_fragment`] — the whole query in a single fragment ⇒ the
//!   classic UCQ reformulation;
//! * [`Cover::singletons`] — one fragment per atom ⇒ the SCQ reformulation
//!   of Thomazo [IJCAI'13].

use crate::ast::Cq;
use crate::error::{QueryError, Result};
use crate::var::Var;
use rdfref_model::fxhash::FxHashSet;
use std::fmt;

/// A cover: fragments of atom indices into the covered query's body.
///
/// Fragments are kept sorted (both internally and between each other) so
/// covers have a canonical representation: two equal covers compare equal.
///
/// ```
/// use rdfref_query::Cover;
/// // The paper's winning cover for its 6-atom Example 1.
/// let cover = Cover::new(vec![vec![0,2], vec![2,4], vec![1,3], vec![3,5]], 6).unwrap();
/// assert_eq!(cover.to_string(), "{{t1,t3}, {t2,t4}, {t3,t5}, {t4,t6}}");
/// assert!(!cover.is_scq());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cover {
    fragments: Vec<Vec<usize>>,
}

impl Cover {
    /// Build a cover over a query with `n_atoms` atoms, validating:
    /// fragments non-empty, indices in range, union = all atoms.
    pub fn new(mut fragments: Vec<Vec<usize>>, n_atoms: usize) -> Result<Cover> {
        if n_atoms == 0 {
            return Err(QueryError::InvalidCover {
                reason: "cannot cover an empty query".into(),
            });
        }
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        for frag in &mut fragments {
            if frag.is_empty() {
                return Err(QueryError::InvalidCover {
                    reason: "empty fragment".into(),
                });
            }
            frag.sort_unstable();
            frag.dedup();
            for &i in frag.iter() {
                if i >= n_atoms {
                    return Err(QueryError::InvalidCover {
                        reason: format!("atom index {i} out of range (query has {n_atoms} atoms)"),
                    });
                }
                seen.insert(i);
            }
        }
        if seen.len() != n_atoms {
            let missing: Vec<usize> = (0..n_atoms).filter(|i| !seen.contains(i)).collect();
            return Err(QueryError::InvalidCover {
                reason: format!("atoms {missing:?} not covered"),
            });
        }
        fragments.sort();
        fragments.dedup();
        Ok(Cover { fragments })
    }

    /// The singleton cover `{{t1}, …, {tn}}` (⇒ SCQ reformulation). This is
    /// also GCov's starting point.
    pub fn singletons(n_atoms: usize) -> Cover {
        Cover {
            fragments: (0..n_atoms).map(|i| vec![i]).collect(),
        }
    }

    /// The one-fragment cover `{{t1, …, tn}}` (⇒ UCQ reformulation).
    pub fn one_fragment(n_atoms: usize) -> Cover {
        Cover {
            fragments: vec![(0..n_atoms).collect()],
        }
    }

    /// The fragments (sorted atom-index lists).
    pub fn fragments(&self) -> &[Vec<usize>] {
        &self.fragments
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True iff there are no fragments (never the case for a valid cover).
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Is this the one-fragment (UCQ) cover for an `n`-atom query?
    pub fn is_ucq(&self, n_atoms: usize) -> bool {
        self.fragments.len() == 1 && self.fragments[0].len() == n_atoms
    }

    /// Is this the singleton (SCQ) cover?
    pub fn is_scq(&self) -> bool {
        self.fragments.iter().all(|f| f.len() == 1)
    }

    /// A new cover with atom `atom_idx` added to fragment `frag_idx` —
    /// GCov's move. Fragments that become subsumed (subset of another
    /// fragment) are dropped: they only re-check atoms the bigger fragment
    /// already constrains. Overlapping covers still arise whenever the
    /// enlarged fragment does not fully contain its neighbours (e.g. the
    /// paper's `{{t1,t3},{t3,t5},…}`). Returns `None` if the atom is already
    /// in that fragment.
    pub fn with_atom_in_fragment(&self, frag_idx: usize, atom_idx: usize) -> Option<Cover> {
        let frag = self.fragments.get(frag_idx)?;
        if frag.binary_search(&atom_idx).is_ok() {
            return None;
        }
        let mut fragments = self.fragments.clone();
        fragments[frag_idx].push(atom_idx);
        fragments[frag_idx].sort_unstable();
        fragments = drop_subsumed(fragments);
        fragments.sort();
        fragments.dedup();
        Some(Cover { fragments })
    }

    /// A new cover with fragments `a` and `b` merged — the other GCov move.
    /// Drops fragments that become subsumed (subset of another fragment),
    /// keeping the cover canonical. Returns `None` if `a == b` or out of
    /// range.
    pub fn with_fragments_merged(&self, a: usize, b: usize) -> Option<Cover> {
        if a == b || a >= self.fragments.len() || b >= self.fragments.len() {
            return None;
        }
        let mut merged: Vec<usize> = self.fragments[a]
            .iter()
            .chain(self.fragments[b].iter())
            .copied()
            .collect();
        merged.sort_unstable();
        merged.dedup();
        let mut fragments: Vec<Vec<usize>> = self
            .fragments
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != a && i != b)
            .map(|(_, f)| f.clone())
            .collect();
        fragments.push(merged);
        // Drop strictly subsumed fragments.
        fragments = drop_subsumed(fragments);
        fragments.sort();
        fragments.dedup();
        Some(Cover { fragments })
    }

    /// The columns each fragment must export when the cover is applied to
    /// `cq`: a fragment exports a variable iff it occurs in the fragment and
    /// is either a head variable of `cq` or occurs in *another* fragment
    /// (a join variable). Columns are returned in a deterministic
    /// (first-occurrence within the fragment) order.
    pub fn fragment_columns(&self, cq: &Cq) -> Vec<Vec<Var>> {
        let head: FxHashSet<Var> = cq.head_vars().into_iter().collect();
        let frag_vars: Vec<FxHashSet<Var>> = self
            .fragments
            .iter()
            .map(|frag| {
                frag.iter()
                    .flat_map(|&i| cq.body[i].var_set())
                    .collect::<FxHashSet<Var>>()
            })
            .collect();
        self.fragments
            .iter()
            .enumerate()
            .map(|(fi, frag)| {
                let mut cols = Vec::new();
                let mut seen = FxHashSet::default();
                for &i in frag {
                    for v in cq.body[i].vars() {
                        if seen.contains(v) {
                            continue;
                        }
                        let exported = head.contains(v)
                            || frag_vars
                                .iter()
                                .enumerate()
                                .any(|(fj, vs)| fj != fi && vs.contains(v));
                        if exported {
                            seen.insert(v.clone());
                            cols.push(v.clone());
                        }
                    }
                }
                cols
            })
            .collect()
    }

    /// Enumerate all *partition* covers of an `n`-atom query (set partitions
    /// of `{0..n}`). Exponential — only used by the exhaustive-search
    /// ablation (A4) on small queries. Overlapping covers are not
    /// enumerated; GCov's moves can still reach them.
    pub fn enumerate_partitions(n_atoms: usize) -> Vec<Cover> {
        fn rec(i: usize, n: usize, current: &mut Vec<Vec<usize>>, out: &mut Vec<Cover>) {
            if i == n {
                let mut fragments = current.clone();
                fragments.sort();
                out.push(Cover { fragments });
                return;
            }
            for f in 0..current.len() {
                current[f].push(i);
                rec(i + 1, n, current, out);
                current[f].pop();
            }
            current.push(vec![i]);
            rec(i + 1, n, current, out);
            current.pop();
        }
        let mut out = Vec::new();
        if n_atoms > 0 {
            rec(0, n_atoms, &mut Vec::new(), &mut out);
        }
        out
    }
}

fn drop_subsumed(fragments: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    let mut keep = vec![true; fragments.len()];
    for i in 0..fragments.len() {
        for j in 0..fragments.len() {
            if i != j
                && keep[i]
                && keep[j]
                && is_subset(&fragments[i], &fragments[j])
                && (fragments[i].len() < fragments[j].len() || i > j)
            {
                keep[i] = false;
            }
        }
    }
    fragments
        .into_iter()
        .zip(keep)
        .filter(|&(_, k)| k)
        .map(|(f, _)| f)
        .collect()
}

fn is_subset(a: &[usize], b: &[usize]) -> bool {
    a.iter().all(|x| b.binary_search(x).is_ok())
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, frag) in self.fragments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, atom) in frag.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "t{}", atom + 1)?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use rdfref_model::TermId;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn validation_rejects_bad_covers() {
        assert!(Cover::new(vec![vec![0], vec![1]], 2).is_ok());
        assert!(Cover::new(vec![vec![0]], 2).is_err()); // atom 1 uncovered
        assert!(Cover::new(vec![vec![0], vec![]], 1).is_err()); // empty fragment
        assert!(Cover::new(vec![vec![0, 5]], 2).is_err()); // out of range
        assert!(Cover::new(vec![], 0).is_err()); // empty query
    }

    #[test]
    fn overlapping_covers_allowed() {
        // The paper's winning cover for Example 1 overlaps on t3 and t4.
        let cover = Cover::new(vec![vec![0, 2], vec![2, 4], vec![1, 3], vec![3, 5]], 6).unwrap();
        assert_eq!(cover.len(), 4);
        assert_eq!(cover.to_string(), "{{t1,t3}, {t2,t4}, {t3,t5}, {t4,t6}}");
    }

    #[test]
    fn distinguished_covers() {
        let scq = Cover::singletons(3);
        assert!(scq.is_scq() && !scq.is_ucq(3));
        let ucq = Cover::one_fragment(3);
        assert!(ucq.is_ucq(3) && !ucq.is_scq());
    }

    #[test]
    fn canonical_representation() {
        let a = Cover::new(vec![vec![1, 0], vec![2]], 3).unwrap();
        let b = Cover::new(vec![vec![2], vec![0, 1]], 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gcov_moves() {
        let c = Cover::singletons(3);
        let moved = c.with_atom_in_fragment(0, 1).unwrap();
        // {{0,1},{2}} — the subsumed singleton {1} is dropped.
        assert_eq!(moved.len(), 2);
        assert!(moved.fragments().contains(&vec![0, 1]));
        // Overlap arises when fragments are not subsumed: grow {2} with 1.
        let overlapping = moved.with_atom_in_fragment(1, 1).unwrap();
        assert_eq!(overlapping.fragments(), &[vec![0, 1], vec![1, 2]]);
        // Adding an atom already present is a no-op.
        assert!(c.with_atom_in_fragment(0, 0).is_none());

        let merged = c.with_fragments_merged(0, 1).unwrap();
        assert_eq!(merged.len(), 2);
        assert!(merged.fragments().contains(&vec![0, 1]));
        assert!(c.with_fragments_merged(1, 1).is_none());
    }

    #[test]
    fn merge_drops_subsumed_fragments() {
        // {{0,1},{1},{2}}: merging {0,1} with {2} leaves {1} subsumed? No —
        // {1} ⊄ {0,1,2}? It is a subset, so it gets dropped.
        let c = Cover::new(vec![vec![0, 1], vec![1], vec![2]], 3).unwrap();
        let m = c.with_fragments_merged(0, 2).unwrap();
        assert_eq!(m.fragments(), &[vec![0, 1, 2]]);
    }

    #[test]
    fn fragment_columns_export_head_and_join_vars() {
        // q(x) :- (x p y), (y p z), (z p w): head {x}; cover {{0},{1,2}}.
        let p = TermId(9);
        let cq = Cq::new(
            vec![v("x")],
            vec![
                Atom::new(v("x"), p, v("y")),
                Atom::new(v("y"), p, v("z")),
                Atom::new(v("z"), p, v("w")),
            ],
        )
        .unwrap();
        let cover = Cover::new(vec![vec![0], vec![1, 2]], 3).unwrap();
        let cols = cover.fragment_columns(&cq);
        // Fragment {t1}: x (head) and y (join). Fragment {t2,t3}: y (join);
        // z and w are local and not head vars, so not exported.
        assert_eq!(cols[0], vec![v("x"), v("y")]);
        assert_eq!(cols[1], vec![v("y")]);
    }

    #[test]
    fn partition_enumeration_counts_bell_numbers() {
        // Bell numbers: B(1)=1, B(2)=2, B(3)=5, B(4)=15.
        assert_eq!(Cover::enumerate_partitions(1).len(), 1);
        assert_eq!(Cover::enumerate_partitions(2).len(), 2);
        assert_eq!(Cover::enumerate_partitions(3).len(), 5);
        assert_eq!(Cover::enumerate_partitions(4).len(), 15);
    }
}
