//! Error types of the query layer.

use std::fmt;

/// Result alias for the query crate.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Errors raised by query construction, parsing and cover validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// SPARQL parse error with 1-based line.
    Syntax {
        /// Line of the error.
        line: usize,
        /// Description.
        message: String,
    },
    /// A head (distinguished) variable does not occur in the query body.
    UnboundHeadVar(String),
    /// A user query used the reserved fresh-variable prefix `_f`.
    ReservedVariable(String),
    /// A cover is invalid for a query of the given size.
    InvalidCover {
        /// Why the cover is invalid.
        reason: String,
    },
    /// UCQs combined into a union/JUCQ disagree on head arity.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// An undeclared prefix was used.
    UnknownPrefix {
        /// Line of the usage.
        line: usize,
        /// The prefix label.
        prefix: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax { line, message } => {
                write!(f, "query syntax error at line {line}: {message}")
            }
            QueryError::UnboundHeadVar(v) => {
                write!(f, "head variable ?{v} does not occur in the query body")
            }
            QueryError::ReservedVariable(v) => {
                write!(f, "variable ?{v} uses the reserved '_f' prefix")
            }
            QueryError::InvalidCover { reason } => write!(f, "invalid cover: {reason}"),
            QueryError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            QueryError::UnknownPrefix { line, prefix } => {
                write!(f, "unknown prefix '{prefix}:' at line {line}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(QueryError::UnboundHeadVar("x".into())
            .to_string()
            .contains("?x"));
        assert!(QueryError::ArityMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("expected 2"));
    }
}
