//! The query AST: triple patterns, CQs, UCQs and JUCQs.

use crate::error::{QueryError, Result};
use crate::var::Var;
use rdfref_model::fxhash::{FxHashMap, FxHashSet};
use rdfref_model::TermId;

/// A position of a triple pattern: a variable or a dictionary-encoded
/// constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PTerm {
    /// A query variable.
    Var(Var),
    /// A constant (IRI, blank node or literal), dictionary-encoded.
    Const(TermId),
    /// A half-open id interval `[lo, hi)` in *encoded* (interval-dictionary)
    /// id space: matches any constant whose encoded id falls in the range.
    /// Produced only by interval-aware reformulation, never by the parser.
    Range(TermId, TermId),
}

impl PTerm {
    /// The variable, if this position holds one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            PTerm::Var(v) => Some(v),
            PTerm::Const(_) | PTerm::Range(..) => None,
        }
    }

    /// The constant, if this position holds one.
    pub fn as_const(&self) -> Option<TermId> {
        match self {
            PTerm::Var(_) | PTerm::Range(..) => None,
            PTerm::Const(c) => Some(*c),
        }
    }

    /// The id interval, if this position holds one.
    pub fn as_range(&self) -> Option<(TermId, TermId)> {
        match self {
            PTerm::Range(lo, hi) => Some((*lo, *hi)),
            PTerm::Var(_) | PTerm::Const(_) => None,
        }
    }

    /// Is this position a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, PTerm::Var(_))
    }

    /// Is this position an id interval?
    pub fn is_range(&self) -> bool {
        matches!(self, PTerm::Range(..))
    }

    /// Map the constant through `f`, leaving variables and id intervals
    /// (which already live in encoded space) untouched. Used to transport a
    /// plan between base and encoded id spaces.
    pub fn map_consts(&self, f: &mut impl FnMut(TermId) -> TermId) -> PTerm {
        match self {
            PTerm::Const(c) => PTerm::Const(f(*c)),
            PTerm::Var(_) | PTerm::Range(..) => self.clone(),
        }
    }
}

impl From<Var> for PTerm {
    fn from(v: Var) -> PTerm {
        PTerm::Var(v)
    }
}

impl From<TermId> for PTerm {
    fn from(c: TermId) -> PTerm {
        PTerm::Const(c)
    }
}

/// A substitution of variables by pattern terms (variables or constants).
pub type Substitution = FxHashMap<Var, PTerm>;

/// Apply a substitution to one position.
pub fn substitute(t: &PTerm, subst: &Substitution) -> PTerm {
    match t {
        PTerm::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
        PTerm::Const(_) | PTerm::Range(..) => t.clone(),
    }
}

/// A triple pattern (atom) `s p o`, any position possibly a variable —
/// including the property and the class position of `rdf:type` atoms, which
/// is what makes reformulation explode (§4, Example 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Subject position.
    pub s: PTerm,
    /// Property position.
    pub p: PTerm,
    /// Object position.
    pub o: PTerm,
}

impl Atom {
    /// Build an atom.
    pub fn new(s: impl Into<PTerm>, p: impl Into<PTerm>, o: impl Into<PTerm>) -> Atom {
        Atom {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// The positions as an array `[s, p, o]`.
    pub fn positions(&self) -> [&PTerm; 3] {
        [&self.s, &self.p, &self.o]
    }

    /// Iterate over the variables of this atom (with duplicates).
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.positions()
            .into_iter()
            .filter_map(|t| t.as_var())
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The set of variables of this atom.
    pub fn var_set(&self) -> FxHashSet<Var> {
        self.vars().cloned().collect()
    }

    /// Number of constant positions (a crude selectivity hint).
    pub fn const_count(&self) -> usize {
        self.positions().iter().filter(|t| !t.is_var()).count()
    }

    /// Does any position hold an id interval?
    pub fn has_range(&self) -> bool {
        self.positions().iter().any(|t| t.is_range())
    }

    /// Apply a substitution.
    pub fn apply(&self, subst: &Substitution) -> Atom {
        Atom {
            s: substitute(&self.s, subst),
            p: substitute(&self.p, subst),
            o: substitute(&self.o, subst),
        }
    }

    /// Do two atoms share at least one variable? (The connectivity relation
    /// used by covers and by the greedy search.)
    pub fn shares_var(&self, other: &Atom) -> bool {
        let mine = self.var_set();
        other.vars().any(|v| mine.contains(v))
    }

    /// Map every constant position through `f` (see [`PTerm::map_consts`]).
    pub fn map_consts(&self, f: &mut impl FnMut(TermId) -> TermId) -> Atom {
        Atom {
            s: self.s.map_consts(f),
            p: self.p.map_consts(f),
            o: self.o.map_consts(f),
        }
    }
}

/// A conjunctive query `q(x̄) :- t1, …, tα`.
///
/// The head is a vector of [`PTerm`]s rather than variables: reformulation
/// rules 9–13 *bind* head variables to schema constants, turning head
/// positions into constants while preserving arity (the bound value is
/// emitted for every result row).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cq {
    /// Head (output) positions; `x̄` in the paper's notation.
    pub head: Vec<PTerm>,
    /// Body: the BGP.
    pub body: Vec<Atom>,
}

impl Cq {
    /// Build a CQ with a variable head, checking that every head variable
    /// occurs in the body (safety) and no variable uses the reserved fresh
    /// prefix.
    pub fn new(head: Vec<Var>, body: Vec<Atom>) -> Result<Cq> {
        let body_vars: FxHashSet<&Var> = body.iter().flat_map(|a| a.vars()).collect();
        for v in &head {
            if !body_vars.contains(v) {
                return Err(QueryError::UnboundHeadVar(v.name().to_string()));
            }
        }
        for v in &body_vars {
            if v.is_fresh() {
                return Err(QueryError::ReservedVariable(v.name().to_string()));
            }
        }
        Ok(Cq {
            head: head.into_iter().map(PTerm::Var).collect(),
            body,
        })
    }

    /// Build a CQ without safety checks (reformulation-internal: bound heads,
    /// fresh variables).
    pub fn new_unchecked(head: Vec<PTerm>, body: Vec<Atom>) -> Cq {
        Cq { head, body }
    }

    /// A boolean CQ (empty head).
    pub fn boolean(body: Vec<Atom>) -> Cq {
        Cq {
            head: Vec::new(),
            body,
        }
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Number of atoms.
    pub fn size(&self) -> usize {
        self.body.len()
    }

    /// The head variables (skipping bound-constant positions), in head order.
    pub fn head_vars(&self) -> Vec<Var> {
        self.head
            .iter()
            .filter_map(|t| t.as_var())
            .cloned()
            .collect()
    }

    /// All variables of the body, in first-occurrence order, deduplicated.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for atom in &self.body {
            for v in atom.vars() {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// The set of body variables.
    pub fn var_set(&self) -> FxHashSet<Var> {
        self.body.iter().flat_map(|a| a.var_set()).collect()
    }

    /// Apply a substitution to head and body.
    pub fn apply(&self, subst: &Substitution) -> Cq {
        Cq {
            head: self.head.iter().map(|t| substitute(t, subst)).collect(),
            body: self.body.iter().map(|a| a.apply(subst)).collect(),
        }
    }

    /// Replace the atom at `idx` with `atom` (reformulation rule step).
    pub fn with_atom(&self, idx: usize, atom: Atom) -> Cq {
        let mut body = self.body.clone();
        body[idx] = atom;
        Cq {
            head: self.head.clone(),
            body,
        }
    }

    /// The sub-CQ induced by a set of atom indices: body restricted to the
    /// fragment, head = `columns` (used when slicing a query along a cover).
    pub fn project_fragment(&self, atom_indices: &[usize], columns: &[Var]) -> Cq {
        Cq {
            head: columns.iter().cloned().map(PTerm::Var).collect(),
            body: atom_indices.iter().map(|&i| self.body[i].clone()).collect(),
        }
    }

    /// Map every constant of head and body through `f` (see
    /// [`PTerm::map_consts`]).
    pub fn map_consts(&self, f: &mut impl FnMut(TermId) -> TermId) -> Cq {
        Cq {
            head: self.head.iter().map(|t| t.map_consts(f)).collect(),
            body: self.body.iter().map(|a| a.map_consts(f)).collect(),
        }
    }

    /// Is the query *connected* (its atoms form one connected component under
    /// the shared-variable relation)? Disconnected queries evaluate as cross
    /// products; the cost model penalizes them.
    pub fn is_connected(&self) -> bool {
        if self.body.len() <= 1 {
            return true;
        }
        let mut visited = vec![false; self.body.len()];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for (j, seen) in visited.iter_mut().enumerate() {
                if !*seen && self.body[i].shares_var(&self.body[j]) {
                    *seen = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == self.body.len()
    }
}

/// A union of conjunctive queries. Invariant: all members share the head
/// arity (checked by [`Ucq::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    /// The disjuncts.
    pub cqs: Vec<Cq>,
}

impl Ucq {
    /// Build a UCQ, checking arity consistency.
    pub fn new(cqs: Vec<Cq>) -> Result<Ucq> {
        if let Some(first) = cqs.first() {
            let arity = first.arity();
            for cq in &cqs {
                if cq.arity() != arity {
                    return Err(QueryError::ArityMismatch {
                        expected: arity,
                        found: cq.arity(),
                    });
                }
            }
        }
        Ok(Ucq { cqs })
    }

    /// A single-CQ union.
    pub fn single(cq: Cq) -> Ucq {
        Ucq { cqs: vec![cq] }
    }

    /// Number of disjuncts — the "size of the reformulation" the paper
    /// reports (318,096 for Example 1).
    pub fn len(&self) -> usize {
        self.cqs.len()
    }

    /// True iff the union is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.cqs.is_empty()
    }

    /// Head arity (0 for an empty union).
    pub fn arity(&self) -> usize {
        self.cqs.first().map(|c| c.arity()).unwrap_or(0)
    }

    /// Total number of atoms across disjuncts (a size measure for the
    /// "syntactically huge query" effect).
    pub fn total_atoms(&self) -> usize {
        self.cqs.iter().map(|c| c.size()).sum()
    }

    /// Map every constant of every disjunct through `f` (see
    /// [`PTerm::map_consts`]).
    pub fn map_consts(&self, f: &mut impl FnMut(TermId) -> TermId) -> Ucq {
        Ucq {
            cqs: self.cqs.iter().map(|c| c.map_consts(f)).collect(),
        }
    }
}

/// One fragment of a JUCQ: a UCQ whose columns are named by variables of the
/// original query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Column names: the fragment's exported variables, aligned with the
    /// heads of `ucq`'s members.
    pub columns: Vec<Var>,
    /// The fragment query.
    pub ucq: Ucq,
}

impl Fragment {
    /// Build a fragment, checking that the UCQ's arity matches the columns.
    pub fn new(columns: Vec<Var>, ucq: Ucq) -> Result<Fragment> {
        if !ucq.is_empty() && ucq.arity() != columns.len() {
            return Err(QueryError::ArityMismatch {
                expected: columns.len(),
                found: ucq.arity(),
            });
        }
        Ok(Fragment { columns, ucq })
    }
}

/// A *join of unions of conjunctive queries*: the reformulation language of
/// the demonstrated system. Semantics: natural join of the fragments on
/// their shared column names, projected on `head`.
///
/// * a JUCQ with one fragment covering all atoms ≡ the UCQ reformulation;
/// * a JUCQ whose fragments are the single atoms ≡ the SCQ reformulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Jucq {
    /// Output variables (the original query's distinguished variables).
    pub head: Vec<Var>,
    /// The fragments to join.
    pub fragments: Vec<Fragment>,
}

impl Jucq {
    /// Build a JUCQ, checking that every head variable is exported by some
    /// fragment.
    pub fn new(head: Vec<Var>, fragments: Vec<Fragment>) -> Result<Jucq> {
        let exported: FxHashSet<&Var> = fragments.iter().flat_map(|f| f.columns.iter()).collect();
        for v in &head {
            if !exported.contains(v) {
                return Err(QueryError::UnboundHeadVar(v.name().to_string()));
            }
        }
        Ok(Jucq { head, fragments })
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True iff the JUCQ has no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Total number of CQ disjuncts across fragments.
    pub fn total_cqs(&self) -> usize {
        self.fragments.iter().map(|f| f.ucq.len()).sum()
    }

    /// Map every constant of every fragment through `f` (see
    /// [`PTerm::map_consts`]). Column names and head variables are
    /// untouched.
    pub fn map_consts(&self, f: &mut impl FnMut(TermId) -> TermId) -> Jucq {
        Jucq {
            head: self.head.clone(),
            fragments: self
                .fragments
                .iter()
                .map(|frag| Fragment {
                    columns: frag.columns.clone(),
                    ucq: frag.ucq.map_consts(f),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn c(n: u32) -> TermId {
        TermId(n)
    }

    fn atom(s: &str, p: u32, o: &str) -> Atom {
        Atom::new(v(s), c(p), v(o))
    }

    #[test]
    fn cq_safety_checked() {
        let body = vec![atom("x", 10, "y")];
        assert!(Cq::new(vec![v("x")], body.clone()).is_ok());
        let err = Cq::new(vec![v("z")], body).unwrap_err();
        assert!(matches!(err, QueryError::UnboundHeadVar(_)));
    }

    #[test]
    fn reserved_prefix_rejected() {
        let body = vec![Atom::new(v("_f0"), c(1), v("y"))];
        let err = Cq::new(vec![v("y")], body).unwrap_err();
        assert!(matches!(err, QueryError::ReservedVariable(_)));
    }

    #[test]
    fn substitution_binds_head_and_body() {
        let cq = Cq::new(vec![v("x"), v("u")], vec![Atom::new(v("x"), c(0), v("u"))]).unwrap();
        let mut subst = Substitution::default();
        subst.insert(v("u"), PTerm::Const(c(42)));
        let bound = cq.apply(&subst);
        assert_eq!(bound.head[1], PTerm::Const(c(42)));
        assert_eq!(bound.body[0].o, PTerm::Const(c(42)));
        // x untouched.
        assert_eq!(bound.head[0], PTerm::Var(v("x")));
    }

    #[test]
    fn body_vars_first_occurrence_order() {
        let cq = Cq::new(
            vec![v("x")],
            vec![atom("x", 1, "y"), atom("y", 2, "z"), atom("x", 3, "z")],
        )
        .unwrap();
        assert_eq!(cq.body_vars(), vec![v("x"), v("y"), v("z")]);
    }

    #[test]
    fn connectivity() {
        let connected = Cq::new(vec![v("x")], vec![atom("x", 1, "y"), atom("y", 2, "z")]).unwrap();
        assert!(connected.is_connected());
        let disconnected =
            Cq::new(vec![v("x")], vec![atom("x", 1, "y"), atom("a", 2, "b")]).unwrap();
        assert!(!disconnected.is_connected());
        let singleton = Cq::new(vec![v("x")], vec![atom("x", 1, "y")]).unwrap();
        assert!(singleton.is_connected());
    }

    #[test]
    fn ucq_arity_enforced() {
        let q1 = Cq::new(vec![v("x")], vec![atom("x", 1, "y")]).unwrap();
        let q2 = Cq::new(vec![v("x"), v("y")], vec![atom("x", 1, "y")]).unwrap();
        assert!(Ucq::new(vec![q1.clone(), q1.clone()]).is_ok());
        assert!(matches!(
            Ucq::new(vec![q1, q2]),
            Err(QueryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn jucq_head_must_be_exported() {
        let q = Cq::new(vec![v("x")], vec![atom("x", 1, "y")]).unwrap();
        let frag = Fragment::new(vec![v("x")], Ucq::single(q)).unwrap();
        assert!(Jucq::new(vec![v("x")], vec![frag.clone()]).is_ok());
        assert!(matches!(
            Jucq::new(vec![v("missing")], vec![frag]),
            Err(QueryError::UnboundHeadVar(_))
        ));
    }

    #[test]
    fn fragment_arity_checked() {
        let q = Cq::new(vec![v("x")], vec![atom("x", 1, "y")]).unwrap();
        assert!(Fragment::new(vec![v("x"), v("y")], Ucq::single(q)).is_err());
    }

    #[test]
    fn project_fragment_slices_body() {
        let cq = Cq::new(
            vec![v("x")],
            vec![atom("x", 1, "y"), atom("y", 2, "z"), atom("z", 3, "w")],
        )
        .unwrap();
        let frag = cq.project_fragment(&[0, 2], &[v("y"), v("z")]);
        assert_eq!(frag.size(), 2);
        assert_eq!(frag.head_vars(), vec![v("y"), v("z")]);
        assert_eq!(frag.body[1], atom("z", 3, "w"));
    }

    #[test]
    fn atom_helpers() {
        let a = Atom::new(v("x"), c(5), v("y"));
        assert_eq!(a.const_count(), 1);
        assert_eq!(a.var_set().len(), 2);
        let b = Atom::new(v("y"), c(6), c(7));
        assert!(a.shares_var(&b));
        let d = Atom::new(v("z"), c(6), c(7));
        assert!(!a.shares_var(&d));
    }
}
